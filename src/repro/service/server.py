"""The Eugene back-end service (Sec. II's service suite, wired together)."""

from __future__ import annotations

import functools
import threading
from collections import OrderedDict
from typing import Callable, Dict, Optional, Tuple, TypeVar

import numpy as np

from scipy.stats import norm

from .. import faults, telemetry
from ..admission import AdmissionController
from ..calibration.entropy_reg import EntropyCalibrator
from ..calibration.rdeepsense import fit_gaussian_regressor, interval_coverage
from ..compression.pruning import shrink_staged_resnet
from ..labeling.semi_supervised import SenseGANConfig, SenseGANLabeler, self_training_labels
from ..nn.data import Dataset
from ..nn.deepsense import DeepSense, DeepSenseConfig
from ..nn.losses import cross_entropy
from ..nn.optim import Adam
from ..nn.resnet import StagedResNet, StagedResNetConfig
from ..nn.tensor import Tensor
from ..profiling.cost_model import MobileDeviceCostModel
from ..profiling.stage_costs import stage_execution_times
from ..scheduler.confidence import GPConfidencePredictor
from ..scheduler.policies import RTDeepIoTPolicy
from ..scheduler.runtime import RuntimeConfig, StagedInferenceRuntime
from ..nn.training import (
    collect_stage_outputs,
    evaluate_stage_accuracy,
    train_staged_model,
)
from .messages import (
    CalibrateRequest,
    CalibrateResponse,
    ClassifyRequest,
    ClassifyResponse,
    DeepSenseTrainRequest,
    DeepSenseTrainResponse,
    DeleteRequest,
    DeleteResponse,
    EstimateRequest,
    EstimateResponse,
    EstimatorTrainRequest,
    EstimatorTrainResponse,
    InferRequest,
    InferResponse,
    LabelRequest,
    LabelResponse,
    ProfileRequest,
    ProfileResponse,
    ReduceRequest,
    ReduceResponse,
    RejectedResponse,
    TrainRequest,
    TrainResponse,
)
from .model_registry import ModelRegistry

_F = TypeVar("_F", bound=Callable)


def _admission_gate(endpoint: str) -> Callable[[_F], _F]:
    """Per-endpoint admission check, applied *outermost* on the endpoint.

    With no controller installed (the default) the gate is one attribute
    read and a ``None`` check — the same disabled-cost contract as
    :mod:`repro.telemetry` and :mod:`repro.faults`.  With a controller, a
    rejected call short-circuits into a typed :class:`RejectedResponse`
    before any endpoint work (or fault/telemetry accounting) happens, and
    an admitted call releases its concurrency slot on every exit path.
    """

    def decorate(fn: _F) -> _F:
        @functools.wraps(fn)
        def wrapper(self, request, *args, **kwargs):
            controller = self.admission
            if controller is None:
                return fn(self, request, *args, **kwargs)
            model_id = getattr(request, "model_id", None)
            tenant = getattr(request, "tenant", None)
            decision = controller.admit(endpoint, model_id=model_id, tenant=tenant)
            if not decision.admitted:
                return RejectedResponse(
                    endpoint=endpoint,
                    reason=decision.reason,
                    retry_after_s=decision.retry_after_s,
                    message=(
                        f"{endpoint!r} rejected ({decision.reason} on "
                        f"{decision.key!r}); retry after "
                        f"{decision.retry_after_s:.3g}s"
                    ),
                )
            try:
                return fn(self, request, *args, **kwargs)
            finally:
                controller.release(endpoint, model_id=model_id, tenant=tenant)

        return wrapper  # type: ignore[return-value]

    return decorate


class IdempotencyCache:
    """Bounded dedup window of executed non-idempotent requests.

    Keyed by ``(endpoint, idempotency_key)``; holds the response the first
    execution produced, so a redelivery (a client retry after a lost
    response, or a router replaying a request on another attempt) returns
    the original outcome instead of re-running side effects.  The window
    is LRU-bounded: the service cannot remember every key forever, so a
    key replayed after :attr:`capacity` newer keys will re-execute — the
    standard at-least-once-with-dedup-window contract.
    """

    def __init__(self, capacity: int = 512) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: "OrderedDict[Tuple[str, str], object]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, endpoint: str, key: str) -> Optional[object]:
        with self._lock:
            response = self._entries.get((endpoint, key))
            if response is not None:
                self._entries.move_to_end((endpoint, key))
            return response

    def put(self, endpoint: str, key: str, response: object) -> None:
        with self._lock:
            self._entries[(endpoint, key)] = response
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def _idempotent(endpoint: str) -> Callable[[_F], _F]:
    """Innermost endpoint layer: dedup redelivered mutating requests.

    Sits *under* the fault-injection site, so an injected endpoint error
    happens before execution and leaves no dedup record (the retry then
    executes for real), while a response lost *after* execution is caught
    here on redelivery.  Requests without a key (the default) bypass the
    cache entirely.
    """

    def decorate(fn: _F) -> _F:
        @functools.wraps(fn)
        def wrapper(self, request, *args, **kwargs):
            key = getattr(request, "idempotency_key", None)
            if key is None:
                return fn(self, request, *args, **kwargs)
            cached = self.idempotency.get(endpoint, key)
            if cached is not None:
                tel = telemetry.active()
                if tel is not None:
                    tel.registry.counter(
                        f"service.deduplicated.{endpoint}"
                    ).inc()
                return cached
            response = fn(self, request, *args, **kwargs)
            self.idempotency.put(endpoint, key, response)
            return response

        return wrapper  # type: ignore[return-value]

    return decorate


def _serving_metrics(**extra: object) -> Optional[Dict[str, object]]:
    """Summary attached to serving responses when telemetry is enabled.

    ``None`` (and no registry reads at all) when telemetry is off, so the
    fast path stays untouched.  The histogram/counter summaries are
    cumulative over the telemetry session — per-request numbers come from
    the ``extra`` fields the endpoint computed for this call.
    """
    tel = telemetry.active()
    if tel is None:
        return None
    snapshot = tel.registry.snapshot()
    metrics: Dict[str, object] = {
        "stage_latency_ms": {
            name.rsplit(".", 1)[-1]: summary
            for name, summary in snapshot["histograms"].items()
            if name.startswith("runtime.stage_latency_ms.")
        },
        "batch_occupancy": snapshot["histograms"].get("runtime.batch_occupancy"),
        "deadline_misses": snapshot["counters"].get("runtime.deadline_misses", 0.0),
        "requests": {
            name.rsplit(".", 1)[-1]: value
            for name, value in snapshot["counters"].items()
            if name.startswith("service.requests.")
        },
    }
    metrics.update(extra)
    return metrics


class EugeneService:
    """In-process implementation of the Eugene service endpoints.

    Every endpoint takes one request dataclass and returns one response
    dataclass — see :mod:`repro.service.messages` for the schema.
    """

    def __init__(
        self,
        device: Optional[MobileDeviceCostModel] = None,
        seed: int = 0,
        admission: Optional[AdmissionController] = None,
    ) -> None:
        self.registry = ModelRegistry()
        self.device = device or MobileDeviceCostModel()
        self.seed = seed
        #: admission control / overload management; ``None`` (default)
        #: admits everything at zero cost.  See :mod:`repro.admission`.
        self.admission = admission
        #: dedup window for redelivered non-idempotent requests (train,
        #: reduce, delete, …); see :class:`IdempotencyCache`.
        self.idempotency = IdempotencyCache()

    # ------------------------------------------------------------------
    # Training (Sec. II-A)
    # ------------------------------------------------------------------
    @_admission_gate("train")
    @telemetry.timed("train")
    @faults.endpoint("service.train")
    @_idempotent("train")
    def train(self, request: TrainRequest) -> TrainResponse:
        """Train a staged model on client data; fit its confidence curves."""
        config = request.model_config or StagedResNetConfig(
            num_classes=int(np.max(request.labels)) + 1,
            in_channels=request.inputs.shape[1],
            image_size=request.inputs.shape[2],
        )
        model = StagedResNet(config)
        train_set = Dataset(request.inputs, request.labels)
        report = train_staged_model(
            model,
            train_set,
            epochs=request.epochs,
            batch_size=request.batch_size,
            lr=request.learning_rate,
            seed=self.seed,
        )
        outputs = collect_stage_outputs(model, train_set)
        predictor = GPConfidencePredictor(
            num_classes=config.num_classes, seed=self.seed
        ).fit(outputs["confidences"])
        entry = self.registry.register(
            name=request.name,
            model=model,
            train_set=train_set,
            predictor=predictor,
        )
        accuracies = evaluate_stage_accuracy(model, train_set)
        return TrainResponse(
            model_id=entry.model_id,
            epochs=request.epochs,
            final_loss=report.final_loss,
            stage_accuracies=tuple(float(a) for a in accuracies),
        )

    @_admission_gate("train_deepsense")
    @telemetry.timed("train_deepsense")
    @faults.endpoint("service.train_deepsense")
    @_idempotent("train_deepsense")
    def train_deepsense(self, request: DeepSenseTrainRequest) -> DeepSenseTrainResponse:
        """Train the DeepSense sensor-fusion architecture on time series."""
        inputs = np.asarray(request.inputs, dtype=np.float64)
        labels = np.asarray(request.labels, dtype=np.int64)
        _, channels, intervals, samples = inputs.shape
        config = request.model_config or DeepSenseConfig(
            num_sensors=1,
            channels_per_sensor=channels,
            num_intervals=intervals,
            samples_per_interval=samples,
            output_dim=int(labels.max()) + 1,
            seed=self.seed,
        )
        model = DeepSense(config)
        optimizer = Adam(model.parameters(), lr=request.learning_rate)
        rng = np.random.default_rng(self.seed)
        for _ in range(request.steps):
            idx = rng.choice(len(inputs), size=min(request.batch_size, len(inputs)),
                             replace=False)
            loss = cross_entropy(model(Tensor(inputs[idx])), labels[idx])
            optimizer.zero_grad()
            loss.backward()
            optimizer.step()
        model.eval()
        entry = self.registry.register(name=request.name, model=model,
                                       kind="deepsense")
        accuracy = float((model.predict(inputs) == labels).mean())
        return DeepSenseTrainResponse(
            model_id=entry.model_id,
            train_accuracy=accuracy,
            steps=request.steps,
        )

    @_admission_gate("classify")
    @telemetry.timed("classify")
    @faults.endpoint("service.classify")
    def classify(self, request: ClassifyRequest) -> ClassifyResponse:
        """Single-shot classification by any registered classifier model."""
        entry = self.registry.get(request.model_id)
        inputs = np.asarray(request.inputs, dtype=np.float64)
        if entry.kind == "estimator":
            raise ValueError("estimator models serve estimate(), not classify()")
        entry.model.eval()  # serving always takes the no-grad fast path

        def final_probs(chunk: np.ndarray) -> np.ndarray:
            probs = entry.model.predict_proba(chunk)
            return probs if isinstance(entry.model, DeepSense) else probs[-1]

        size = request.micro_batch
        if size is None or size >= len(inputs):
            probs = final_probs(inputs)
            num_chunks = 1
        else:
            probs = np.concatenate(
                [final_probs(inputs[i : i + size]) for i in range(0, len(inputs), size)],
                axis=0,
            )
            num_chunks = -(-len(inputs) // size)
        return ClassifyResponse(
            predictions=probs.argmax(axis=-1),
            confidences=probs.max(axis=-1),
            metrics=_serving_metrics(
                num_inputs=len(inputs), num_chunks=num_chunks
            ),
        )

    # ------------------------------------------------------------------
    # Labeling (Sec. II-A)
    # ------------------------------------------------------------------
    @_admission_gate("label")
    @telemetry.timed("label")
    @faults.endpoint("service.label")
    def label(self, request: LabelRequest) -> LabelResponse:
        labeled = Dataset(request.labeled_inputs, request.labeled_targets)
        if request.method == "sensegan":
            labeler = SenseGANLabeler(
                num_classes=request.num_classes,
                input_dim=int(np.prod(request.labeled_inputs.shape[1:])),
                config=SenseGANConfig(rounds=request.rounds, seed=self.seed),
            )
            labeler.fit(labeled, request.unlabeled_inputs)
            labels, confidences = labeler.propose_labels(request.unlabeled_inputs)
        else:
            labels, confidences = self_training_labels(
                labeled,
                request.unlabeled_inputs,
                num_classes=request.num_classes,
                seed=self.seed,
            )
        return LabelResponse(labels=labels, confidences=confidences, method=request.method)

    # ------------------------------------------------------------------
    # Model reduction (Sec. II-B)
    # ------------------------------------------------------------------
    @_admission_gate("reduce")
    @telemetry.timed("reduce")
    @faults.endpoint("service.reduce")
    @_idempotent("reduce")
    def reduce(self, request: ReduceRequest) -> ReduceResponse:
        entry = self.registry.get(request.model_id)
        if entry.train_set is None:
            raise ValueError("model was registered without training data")
        width = request.width_fraction
        if width is None:
            if request.max_parameters is not None:
                ratio = request.max_parameters / entry.model.num_parameters()
                width = float(np.clip(np.sqrt(ratio), 0.1, 1.0))
            else:
                width = 0.5
        reduced, class_map = shrink_staged_resnet(
            entry.model,
            entry.train_set,
            width_fraction=width,
            class_subset=request.class_subset,
            epochs=request.epochs,
            seed=self.seed,
        )
        child = self.registry.register(
            name=f"{entry.name}-reduced",
            model=reduced,
            kind="reduced",
            class_map=class_map,
            parent_id=entry.model_id,
        )
        return ReduceResponse(
            model_id=child.model_id,
            parameters=reduced.num_parameters(),
            original_parameters=entry.model.num_parameters(),
            class_map=class_map,
        )

    # ------------------------------------------------------------------
    # Model management
    # ------------------------------------------------------------------
    @_admission_gate("delete")
    @telemetry.timed("delete")
    @faults.endpoint("service.delete")
    @_idempotent("delete")
    def delete(self, request: DeleteRequest) -> DeleteResponse:
        """Remove a registered model (and, with cascade, its reductions).

        Deleting a parent that still has reduced children is refused
        unless ``cascade`` is set — a cached reduced model must never be
        left pointing at a vanished parent.
        """
        deleted = self.registry.delete(request.model_id, cascade=request.cascade)
        return DeleteResponse(deleted=tuple(deleted))

    # ------------------------------------------------------------------
    # Profiling (Sec. II-C)
    # ------------------------------------------------------------------
    @_admission_gate("profile")
    @telemetry.timed("profile")
    @faults.endpoint("service.profile")
    def profile(self, request: ProfileRequest) -> ProfileResponse:
        entry = self.registry.get(request.model_id)
        times = stage_execution_times(
            entry.model, self.device, normalize=request.normalize
        )
        return ProfileResponse(
            stage_times_ms=tuple(times), total_time_ms=float(sum(times))
        )

    # ------------------------------------------------------------------
    # Result-quality calibration (Sec. II-D / III-A)
    # ------------------------------------------------------------------
    @_admission_gate("calibrate")
    @telemetry.timed("calibrate")
    @faults.endpoint("service.calibrate")
    def calibrate(self, request: CalibrateRequest) -> CalibrateResponse:
        entry = self.registry.get(request.model_id)
        calibrator = EntropyCalibrator(epochs=request.epochs, seed=self.seed)
        results = calibrator.calibrate(
            entry.model, Dataset(request.inputs, request.labels)
        )
        # Confidence curves changed; refit the scheduler's predictor.
        if entry.train_set is not None:
            outputs = collect_stage_outputs(entry.model, entry.train_set)
            entry.predictor = GPConfidencePredictor(
                num_classes=entry.model.config.num_classes, seed=self.seed
            ).fit(outputs["confidences"])
        return CalibrateResponse(
            alphas=tuple(r.alpha for r in results),
            ece_before=tuple(r.ece_before for r in results),
            ece_after=tuple(r.ece_after for r in results),
        )

    # ------------------------------------------------------------------
    # Estimation service (Sec. II: the continuous-output task family)
    # ------------------------------------------------------------------
    @_admission_gate("train_estimator")
    @telemetry.timed("train_estimator")
    @faults.endpoint("service.train_estimator")
    @_idempotent("train_estimator")
    def train_estimator(self, request: EstimatorTrainRequest) -> EstimatorTrainResponse:
        """Train a Gaussian regressor under the RDeepSense weighted loss."""
        x = np.asarray(request.inputs, dtype=np.float64).reshape(len(request.inputs), -1)
        y = np.asarray(request.targets, dtype=np.float64)
        if y.ndim == 1:
            y = y[:, None]
        model = fit_gaussian_regressor(
            x, y, weight=request.loss_weight, hidden=request.hidden,
            steps=request.steps, seed=self.seed,
        )
        entry = self.registry.register(name=request.name, model=model,
                                       kind="estimator")
        mean, std = model.predict(x)
        return EstimatorTrainResponse(
            model_id=entry.model_id,
            train_mae=float(np.abs(mean - y).mean()),
            coverage_90=interval_coverage(mean, std, y, 0.9),
        )

    @_admission_gate("estimate")
    @telemetry.timed("estimate")
    @faults.endpoint("service.estimate")
    def estimate(self, request: EstimateRequest) -> EstimateResponse:
        """Point estimates + predictive intervals from a trained estimator."""
        entry = self.registry.get(request.model_id)
        if entry.kind != "estimator":
            raise ValueError(
                f"model {request.model_id!r} is a {entry.kind!r} model, "
                "not an estimator"
            )
        x = np.asarray(request.inputs, dtype=np.float64).reshape(len(request.inputs), -1)
        mean, std = entry.model.predict(x)
        z = float(norm.ppf(0.5 + request.confidence_level / 2.0))
        return EstimateResponse(
            means=mean,
            stds=std,
            lower=mean - z * std,
            upper=mean + z * std,
            confidence_level=request.confidence_level,
        )

    # ------------------------------------------------------------------
    # Run-time inference (Sec. II-E / III)
    # ------------------------------------------------------------------
    @_admission_gate("infer")
    @telemetry.timed("infer")
    @faults.endpoint("service.infer")
    def infer(self, request: InferRequest) -> InferResponse:
        entry = self.registry.get(request.model_id)
        if entry.predictor is None:
            raise ValueError(
                "model has no confidence predictor; train() registers one"
            )
        policy = RTDeepIoTPolicy(entry.predictor, k=request.lookahead)
        runtime = StagedInferenceRuntime(
            entry.model,
            policy,
            RuntimeConfig(
                num_workers=request.num_workers,
                latency_constraint=request.latency_constraint_s,
                max_batch=request.max_batch,
                drain_window=request.drain_window_s,
                # An item outstanding past the deadline can never help its
                # tasks, so lost-item detection need not wait longer than
                # the constraint — this bounds quiesce time under faults.
                item_timeout=min(5.0, request.latency_constraint_s),
                admission=request.admission,
                anytime=request.anytime,
            ),
        )
        runtime.submit(request.inputs)
        results = runtime.run_until_complete()
        # Graceful degradation (Sec. III's anytime contract): a task whose
        # later stages never finished inside the budget — deadline or fault
        # — is still served from its best completed early exit, flagged so
        # the client can distinguish a weaker answer from a full one.
        tel = telemetry.active()
        if tel is not None:
            for r in results:
                if r.degraded:
                    tel.registry.counter("service.degraded_responses").inc()
                    # Stamped at the task's episode-relative finish time,
                    # not a hard-coded t=0.
                    tel.trace.degraded(r.elapsed, r.task_id, r.served_stage)
        return InferResponse(
            predictions=[r.prediction for r in results],
            confidences=[r.confidence for r in results],
            stages_executed=[len(r.outcomes) for r in results],
            evicted=[r.evicted for r in results],
            metrics=_serving_metrics(
                num_tasks=len(results),
                num_evicted=sum(1 for r in results if r.evicted),
                num_shed=sum(1 for r in results if r.shed),
                batch_sizes=[len(tids) for _, tids in runtime.batch_log],
            ),
            degraded=[r.degraded for r in results],
            served_stage=[r.served_stage for r in results],
            shed=[r.shed for r in results],
            anytime_served=[r.anytime_served for r in results],
        )
