"""The Eugene service layer (Sec. II): deep intelligence as a service.

A single in-process facade, :class:`EugeneService`, exposes the paper's
service taxonomy over the substrates of this package:

- ``train`` — DeepSense-style model generation from client data (S3, S4)
- ``label`` — SenseGAN-style automatic labeling (S10)
- ``reduce`` — DeepIoT-style model reduction for caching (S9)
- ``profile`` — FastDeepIoT-style execution profiling (S8)
- ``calibrate`` — entropy-based confidence calibration (S5)
- ``infer`` — run-time inference under the RTDeepIoT scheduler (S6, S7)

:class:`EugeneClient` is the client stub an IoT device would hold;
:class:`repro.service.client.EdgeDevice` adds client-side model caching.
"""

from .messages import (
    CalibrateRequest,
    CalibrateResponse,
    ClassifyRequest,
    ClassifyResponse,
    DeepSenseTrainRequest,
    DeepSenseTrainResponse,
    DeleteRequest,
    DeleteResponse,
    EstimateRequest,
    EstimateResponse,
    EstimatorTrainRequest,
    EstimatorTrainResponse,
    InferRequest,
    InferResponse,
    LabelRequest,
    LabelResponse,
    ProfileRequest,
    ProfileResponse,
    ReduceRequest,
    ReduceResponse,
    RejectedResponse,
    TrainRequest,
    TrainResponse,
)
from .model_registry import ModelEntry, ModelRegistry
from .pools import (
    AuditReport,
    Contribution,
    ContributorAuditor,
    DataPool,
    PoolAuthorizationError,
)
from .server import EugeneService
from .client import EdgeDevice, EugeneClient

__all__ = [
    "EugeneService",
    "EugeneClient",
    "EdgeDevice",
    "ModelRegistry",
    "ModelEntry",
    "TrainRequest",
    "TrainResponse",
    "LabelRequest",
    "LabelResponse",
    "ReduceRequest",
    "ReduceResponse",
    "ProfileRequest",
    "ProfileResponse",
    "CalibrateRequest",
    "CalibrateResponse",
    "InferRequest",
    "InferResponse",
    "DeleteRequest",
    "DeleteResponse",
    "RejectedResponse",
    "EstimatorTrainRequest",
    "EstimatorTrainResponse",
    "EstimateRequest",
    "EstimateResponse",
    "DeepSenseTrainRequest",
    "DeepSenseTrainResponse",
    "ClassifyRequest",
    "ClassifyResponse",
    "DataPool",
    "Contribution",
    "ContributorAuditor",
    "AuditReport",
    "PoolAuthorizationError",
]
