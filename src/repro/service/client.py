"""Client-side stubs: the service handle an IoT device holds.

:class:`EugeneClient` is a thin convenience wrapper over the service
endpoints, hardened with the client half of the resilience contract
(:mod:`repro.faults`): every call runs under a per-endpoint circuit
breaker and a bounded exponential-backoff retry policy, and passes a
``client.<endpoint>`` fault-injection site standing in for the network
leg a real deployment would have.  :class:`EdgeDevice` models the paper's
caching client: it asks the service for a reduced model sized to its own
:class:`DeviceProfile`, serves frequent classes locally, and offloads
cache misses.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

import numpy as np

from .. import faults, telemetry
from ..compression.cache import DeviceProfile, FrequencyTracker, ReducedClassModel
from ..faults import (
    CLOSED,
    OPEN,
    BackpressureError,
    CircuitBreaker,
    ResilienceError,
    RetriesExhaustedError,
    RetryPolicy,
)
from .messages import (
    CalibrateRequest,
    CalibrateResponse,
    ClassifyRequest,
    ClassifyResponse,
    DeepSenseTrainRequest,
    DeepSenseTrainResponse,
    DeleteRequest,
    DeleteResponse,
    EstimateRequest,
    EstimateResponse,
    EstimatorTrainRequest,
    EstimatorTrainResponse,
    InferRequest,
    InferResponse,
    LabelRequest,
    LabelResponse,
    ProfileRequest,
    ProfileResponse,
    ReduceRequest,
    ReduceResponse,
    RejectedResponse,
    TrainRequest,
    TrainResponse,
)
from .server import EugeneService

T = TypeVar("T")


class EugeneClient:
    """Method-per-endpoint client stub with client-side resilience.

    Each endpoint call passes three layers, outermost first:

    1. a lazily-created per-endpoint :class:`CircuitBreaker` — when an
       endpoint keeps failing, further calls fast-fail with
       :class:`~repro.faults.CircuitOpenError` without touching the
       service until the cooldown elapses;
    2. the :class:`RetryPolicy` — only
       :class:`~repro.faults.TransientServiceError` and
       :class:`~repro.faults.BackpressureError` (a typed admission
       rejection, whose retry-after hint floors the backoff sleep) are
       retried, with bounded exponential backoff and an optional
       per-request ``timeout_s`` budget;
    3. two fault-injection sites modelling the network's two legs, each
       consulted once per *attempt*: ``client.<endpoint>`` before the
       call (the request leg) and ``client.<endpoint>.response`` after it
       (the response leg).  A response-leg fault is the classic
       at-least-once hazard — the service *executed* but the caller never
       learned — so the retry redelivers an already-executed request.

    Non-idempotent endpoints (train, reduce, delete, …) are protected
    against that redelivery: the client stamps each logical request with
    a fresh idempotency key, reused across every retry attempt, and the
    service dedups on it (see :class:`~repro.service.server.
    IdempotencyCache`), so a double delivery returns the original
    response instead of duplicating side effects.

    With no fault plan armed and a healthy service, all layers are
    pass-throughs: behaviour is identical to the plain stub.

    The ``service`` argument accepts anything exposing the endpoint
    surface — a plain :class:`EugeneService` or a
    :class:`~repro.cluster.ServiceRouter` fronting N replicas (the
    router-backed mode: per-replica breakers, failover and placement
    happen inside the router, underneath this client's per-endpoint
    breaker and retry policy).
    """

    def __init__(
        self,
        service: EugeneService,
        retry_policy: Optional[RetryPolicy] = None,
        breaker_factory: Callable[[], CircuitBreaker] = CircuitBreaker,
        tenant: Optional[str] = None,
    ) -> None:
        self.service = service
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self._breaker_factory = breaker_factory
        self._breakers: Dict[str, CircuitBreaker] = {}
        #: default tenant id stamped on every request this client builds
        #: (an explicit ``tenant=`` on a call still wins); ``None`` leaves
        #: requests un-tenanted.
        self.tenant = tenant

    # ------------------------------------------------------------------
    # Resilience plumbing
    # ------------------------------------------------------------------
    def breaker(self, endpoint: str) -> CircuitBreaker:
        """The circuit breaker guarding ``endpoint`` (created on first use)."""
        breaker = self._breakers.get(endpoint)
        if breaker is None:
            breaker = self._breakers[endpoint] = self._breaker_factory()
        return breaker

    def _call(self, endpoint: str, fn: Callable[[], T]) -> T:
        breaker = self.breaker(endpoint)
        state_before = breaker.state
        breaker.guard(endpoint)

        def attempt() -> T:
            faults.perform(faults.inject(f"client.{endpoint}"))
            result = fn()
            # The response leg: the service has already executed; a fault
            # here loses the answer in transit, and the retry redelivers
            # the request (idempotency keys make that safe).
            faults.perform(faults.inject(f"client.{endpoint}.response"))
            if isinstance(result, RejectedResponse):
                # Typed backpressure from the service's admission layer:
                # surface it as an exception so the retry policy can back
                # off by at least the service's retry-after hint.
                tel = telemetry.active()
                if tel is not None:
                    tel.registry.counter(f"client.rejected.{endpoint}").inc()
                raise BackpressureError(
                    result.message or f"{endpoint!r} rejected: {result.reason}",
                    retry_after_s=result.retry_after_s,
                    reason=result.reason,
                    endpoint=endpoint,
                )
            return result

        def on_retry(attempt_no: int, _error: Exception) -> None:
            tel = telemetry.active()
            if tel is not None:
                tel.registry.counter(f"client.retries.{endpoint}").inc()
                tel.trace.retry(0.0, endpoint, attempt_no)

        try:
            result = self.retry_policy.call(attempt, on_retry=on_retry)
        except ResilienceError as error:
            # Only exhausted retries / blown budgets count against the
            # breaker — a ValueError from request validation is the
            # caller's bug, not the endpoint's health.
            breaker.record_failure()
            tel = telemetry.active()
            if tel is not None and breaker.state == OPEN:
                tel.registry.counter(f"client.breaker_open.{endpoint}").inc()
                tel.trace.breaker_open(0.0, endpoint)
            if isinstance(error, RetriesExhaustedError) and isinstance(
                error.last_error, BackpressureError
            ):
                # Every attempt ended in an admission rejection: surface
                # the typed backpressure (with its retry-after hint) so
                # callers can shed or reschedule, not just "retries failed".
                raise error.last_error from error
            raise
        breaker.record_success()
        if state_before != CLOSED:
            tel = telemetry.active()
            if tel is not None:
                tel.trace.breaker_close(0.0, endpoint)
        return result

    @staticmethod
    def _keyed(request: T) -> T:
        """Stamp a non-idempotent request with a fresh idempotency key.

        One key per *logical* request: the key is set once, before the
        first attempt, so every retry redelivers under the same key and
        the service's dedup window can recognise it.  A caller-supplied
        key is left untouched.
        """
        if request.idempotency_key is None:
            request.idempotency_key = uuid.uuid4().hex
        return request

    def _tenanted(self, kwargs: dict) -> dict:
        """Stamp the client's default tenant onto a request's kwargs."""
        if self.tenant is not None and "tenant" not in kwargs:
            kwargs["tenant"] = self.tenant
        return kwargs

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def train(self, inputs: np.ndarray, labels: np.ndarray, **kwargs) -> TrainResponse:
        request = self._keyed(
            TrainRequest(inputs=inputs, labels=labels, **self._tenanted(kwargs))
        )
        return self._call("train", lambda: self.service.train(request))

    def label(
        self,
        labeled_inputs: np.ndarray,
        labeled_targets: np.ndarray,
        unlabeled_inputs: np.ndarray,
        num_classes: int,
        **kwargs,
    ) -> LabelResponse:
        request = LabelRequest(
            labeled_inputs=labeled_inputs,
            labeled_targets=labeled_targets,
            unlabeled_inputs=unlabeled_inputs,
            num_classes=num_classes,
            **self._tenanted(kwargs),
        )
        return self._call("label", lambda: self.service.label(request))

    def reduce(self, model_id: str, **kwargs) -> ReduceResponse:
        request = self._keyed(
            ReduceRequest(model_id=model_id, **self._tenanted(kwargs))
        )
        return self._call("reduce", lambda: self.service.reduce(request))

    def profile(self, model_id: str, **kwargs) -> ProfileResponse:
        request = ProfileRequest(model_id=model_id, **self._tenanted(kwargs))
        return self._call("profile", lambda: self.service.profile(request))

    def delete(self, model_id: str, cascade: bool = False, **kwargs) -> DeleteResponse:
        request = self._keyed(
            DeleteRequest(
                model_id=model_id, cascade=cascade, **self._tenanted(kwargs)
            )
        )
        return self._call("delete", lambda: self.service.delete(request))

    def calibrate(
        self, model_id: str, inputs: np.ndarray, labels: np.ndarray, **kwargs
    ) -> CalibrateResponse:
        request = CalibrateRequest(
            model_id=model_id, inputs=inputs, labels=labels,
            **self._tenanted(kwargs),
        )
        return self._call("calibrate", lambda: self.service.calibrate(request))

    def infer(self, model_id: str, inputs: np.ndarray, **kwargs) -> InferResponse:
        request = InferRequest(
            model_id=model_id, inputs=inputs, **self._tenanted(kwargs)
        )
        return self._call("infer", lambda: self.service.infer(request))

    def train_deepsense(
        self, inputs: np.ndarray, labels: np.ndarray, **kwargs
    ) -> DeepSenseTrainResponse:
        request = self._keyed(
            DeepSenseTrainRequest(
                inputs=inputs, labels=labels, **self._tenanted(kwargs)
            )
        )
        return self._call(
            "train_deepsense", lambda: self.service.train_deepsense(request)
        )

    def classify(self, model_id: str, inputs: np.ndarray, **kwargs) -> ClassifyResponse:
        request = ClassifyRequest(
            model_id=model_id, inputs=inputs, **self._tenanted(kwargs)
        )
        return self._call("classify", lambda: self.service.classify(request))

    def train_estimator(
        self, inputs: np.ndarray, targets: np.ndarray, **kwargs
    ) -> EstimatorTrainResponse:
        request = self._keyed(
            EstimatorTrainRequest(
                inputs=inputs, targets=targets, **self._tenanted(kwargs)
            )
        )
        return self._call(
            "train_estimator", lambda: self.service.train_estimator(request)
        )

    def estimate(self, model_id: str, inputs: np.ndarray, **kwargs) -> EstimateResponse:
        request = EstimateRequest(
            model_id=model_id, inputs=inputs, **self._tenanted(kwargs)
        )
        return self._call("estimate", lambda: self.service.estimate(request))


class EdgeDevice:
    """An IoT client that caches a reduced model for its frequent classes."""

    def __init__(
        self,
        client: EugeneClient,
        model_id: str,
        profile: Optional[DeviceProfile] = None,
        tracker: Optional[FrequencyTracker] = None,
        confidence_threshold: float = 0.5,
    ) -> None:
        self.client = client
        self.model_id = model_id
        self.profile = profile or DeviceProfile()
        self.tracker = tracker or FrequencyTracker(window=60, coverage_target=0.7)
        self.confidence_threshold = confidence_threshold
        self.cached: Optional[ReducedClassModel] = None
        self.cached_model_id: Optional[str] = None
        self.queries_local = 0
        self.queries_offloaded = 0

    # ------------------------------------------------------------------
    def _offload(self, x: np.ndarray) -> Dict[str, object]:
        response = self.client.infer(self.model_id, x[None] if x.ndim == 3 else x)
        self.queries_offloaded += 1
        prediction = response.predictions[0]
        if prediction is not None:
            self.tracker.observe(prediction)
        self._maybe_fetch_cache()
        return {
            "prediction": prediction,
            "confidence": response.confidences[0],
            "source": "server",
        }

    def _maybe_fetch_cache(self) -> None:
        if self.cached is not None:
            return
        frequent = self.tracker.frequent_classes()
        if frequent is None:
            return
        response = self.client.reduce(
            self.model_id,
            class_subset=frequent,
            max_parameters=self.profile.max_parameters,
        )
        entry = self.client.service.registry.get(response.model_id)
        self.cached = ReducedClassModel(
            model=entry.model,
            class_map=response.class_map,
            confidence_threshold=self.confidence_threshold,
        )
        self.cached_model_id = response.model_id

    def query(self, x: np.ndarray) -> Dict[str, object]:
        """Classify one input, locally when the cached model is confident."""
        if self.cached is not None:
            prediction, confidence = self.cached.predict(x)
            if prediction is not None:
                self.queries_local += 1
                self.tracker.observe(prediction)
                return {
                    "prediction": prediction,
                    "confidence": confidence,
                    "source": "cache",
                }
        return self._offload(x)

    @property
    def local_fraction(self) -> float:
        total = self.queries_local + self.queries_offloaded
        return self.queries_local / total if total else 0.0
