"""Client-side stubs: the service handle an IoT device holds.

:class:`EugeneClient` is a thin convenience wrapper over the service
endpoints.  :class:`EdgeDevice` models the paper's caching client: it asks
the service for a reduced model sized to its own :class:`DeviceProfile`,
serves frequent classes locally, and offloads cache misses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..compression.cache import DeviceProfile, FrequencyTracker, ReducedClassModel
from .messages import (
    CalibrateRequest,
    CalibrateResponse,
    ClassifyRequest,
    ClassifyResponse,
    DeepSenseTrainRequest,
    DeepSenseTrainResponse,
    EstimateRequest,
    EstimateResponse,
    EstimatorTrainRequest,
    EstimatorTrainResponse,
    InferRequest,
    InferResponse,
    LabelRequest,
    LabelResponse,
    ProfileRequest,
    ProfileResponse,
    ReduceRequest,
    ReduceResponse,
    TrainRequest,
    TrainResponse,
)
from .server import EugeneService


class EugeneClient:
    """Method-per-endpoint client stub."""

    def __init__(self, service: EugeneService) -> None:
        self.service = service

    def train(self, inputs: np.ndarray, labels: np.ndarray, **kwargs) -> TrainResponse:
        return self.service.train(TrainRequest(inputs=inputs, labels=labels, **kwargs))

    def label(
        self,
        labeled_inputs: np.ndarray,
        labeled_targets: np.ndarray,
        unlabeled_inputs: np.ndarray,
        num_classes: int,
        **kwargs,
    ) -> LabelResponse:
        return self.service.label(
            LabelRequest(
                labeled_inputs=labeled_inputs,
                labeled_targets=labeled_targets,
                unlabeled_inputs=unlabeled_inputs,
                num_classes=num_classes,
                **kwargs,
            )
        )

    def reduce(self, model_id: str, **kwargs) -> ReduceResponse:
        return self.service.reduce(ReduceRequest(model_id=model_id, **kwargs))

    def profile(self, model_id: str, **kwargs) -> ProfileResponse:
        return self.service.profile(ProfileRequest(model_id=model_id, **kwargs))

    def calibrate(
        self, model_id: str, inputs: np.ndarray, labels: np.ndarray, **kwargs
    ) -> CalibrateResponse:
        return self.service.calibrate(
            CalibrateRequest(model_id=model_id, inputs=inputs, labels=labels, **kwargs)
        )

    def infer(self, model_id: str, inputs: np.ndarray, **kwargs) -> InferResponse:
        return self.service.infer(InferRequest(model_id=model_id, inputs=inputs, **kwargs))

    def train_deepsense(
        self, inputs: np.ndarray, labels: np.ndarray, **kwargs
    ) -> DeepSenseTrainResponse:
        return self.service.train_deepsense(
            DeepSenseTrainRequest(inputs=inputs, labels=labels, **kwargs)
        )

    def classify(self, model_id: str, inputs: np.ndarray) -> ClassifyResponse:
        return self.service.classify(
            ClassifyRequest(model_id=model_id, inputs=inputs)
        )

    def train_estimator(
        self, inputs: np.ndarray, targets: np.ndarray, **kwargs
    ) -> EstimatorTrainResponse:
        return self.service.train_estimator(
            EstimatorTrainRequest(inputs=inputs, targets=targets, **kwargs)
        )

    def estimate(self, model_id: str, inputs: np.ndarray, **kwargs) -> EstimateResponse:
        return self.service.estimate(
            EstimateRequest(model_id=model_id, inputs=inputs, **kwargs)
        )


class EdgeDevice:
    """An IoT client that caches a reduced model for its frequent classes."""

    def __init__(
        self,
        client: EugeneClient,
        model_id: str,
        profile: Optional[DeviceProfile] = None,
        tracker: Optional[FrequencyTracker] = None,
        confidence_threshold: float = 0.5,
    ) -> None:
        self.client = client
        self.model_id = model_id
        self.profile = profile or DeviceProfile()
        self.tracker = tracker or FrequencyTracker(window=60, coverage_target=0.7)
        self.confidence_threshold = confidence_threshold
        self.cached: Optional[ReducedClassModel] = None
        self.cached_model_id: Optional[str] = None
        self.queries_local = 0
        self.queries_offloaded = 0

    # ------------------------------------------------------------------
    def _offload(self, x: np.ndarray) -> Dict[str, object]:
        response = self.client.infer(self.model_id, x[None] if x.ndim == 3 else x)
        self.queries_offloaded += 1
        prediction = response.predictions[0]
        if prediction is not None:
            self.tracker.observe(prediction)
        self._maybe_fetch_cache()
        return {
            "prediction": prediction,
            "confidence": response.confidences[0],
            "source": "server",
        }

    def _maybe_fetch_cache(self) -> None:
        if self.cached is not None:
            return
        frequent = self.tracker.frequent_classes()
        if frequent is None:
            return
        response = self.client.reduce(
            self.model_id,
            class_subset=frequent,
            max_parameters=self.profile.max_parameters,
        )
        entry = self.client.service.registry.get(response.model_id)
        self.cached = ReducedClassModel(
            model=entry.model,
            class_map=response.class_map,
            confidence_threshold=self.confidence_threshold,
        )
        self.cached_model_id = response.model_id

    def query(self, x: np.ndarray) -> Dict[str, object]:
        """Classify one input, locally when the cached model is confident."""
        if self.cached is not None:
            prediction, confidence = self.cached.predict(x)
            if prediction is not None:
                self.queries_local += 1
                self.tracker.observe(prediction)
                return {
                    "prediction": prediction,
                    "confidence": confidence,
                    "source": "cache",
                }
        return self._offload(x)

    @property
    def local_fraction(self) -> float:
        total = self.queries_local + self.queries_offloaded
        return self.queries_local / total if total else 0.0
