"""Data pools, authorization, and rogue-contributor detection (Sec. V).

"One service model would be to define data pools (e.g., the 'Downtown
Mall's Security Cameras Pool').  Only devices authorized to contribute to
the pool can add data and/or labels to it for purposes of neural network
model training. ...  how to handle rogue devices (or insider attacks) that
gain access to the data for the purpose of polluting the pool with
adversarial inputs (e.g., bad samples or wrong labels)?  Some form of
anomaly detection may be needed. ...  if samples arriving from one of the
devices are often misclassified based on models computed from other
devices' data, then one may suspect rogue behavior."

This module implements that service model:

- :class:`DataPool` — a named pool with an access-control list; every
  contribution is recorded with provenance (device id, timestamp index);
- :class:`ContributorAuditor` — the paper's suggested detection test,
  implemented as leave-one-contributor-out cross-validation: for each
  device, train a model on everyone else's data and measure how often that
  device's (sample, label) pairs are misclassified; devices whose
  misclassification rate is anomalously high relative to the population are
  flagged;
- quarantine: flagged devices' contributions can be excluded from the
  training view without deleting them (forensics stays possible).

The auditor is classifier-agnostic (any ``fit(x, y)`` / ``predict(x)``
factory); a fast multinomial-logistic default is provided so audits run in
milliseconds.  It also handles the paper's hard case — "malicious devices
that mix bad inputs with some amounts of good data to avoid suspicion" — by
thresholding on a robust z-score of per-device misclassification rates, so
a partially-poisoning device still stands out from the honest population.
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from .. import faults
from ..nn import functional as F
from ..nn.layers import Dense, Sequential
from ..nn.losses import cross_entropy
from ..nn.optim import Adam
from ..nn.tensor import Tensor


class PoolAuthorizationError(PermissionError):
    """Raised when an unauthorized device touches a pool."""


@dataclass(frozen=True)
class Contribution:
    """One (sample, label) contribution with provenance."""

    device_id: str
    index: int
    sample: np.ndarray
    label: int


class DataPool:
    """A named, access-controlled pool of labelled training data.

    Thread-safe: contributors are concurrent devices, so every mutation
    and every view holds the pool's re-entrant lock.  Two invariants the
    lock buys (and the concurrency regression tests pin):

    - no contribution is ever lost, whatever the interleaving;
    - one ``contribute`` call's provenance indices are *contiguous*, so a
      batch can always be attributed (and audited) as a unit.

    ``contribute`` additionally honours an idempotency key: a redelivered
    batch (a retry after a lost acknowledgement) is recognised inside a
    bounded dedup window and reports its original accepted count instead
    of inserting duplicates.
    """

    #: redelivery window: how many distinct idempotency keys are remembered.
    DEDUP_WINDOW = 512

    def __init__(self, name: str, authorized: Optional[Iterable[str]] = None) -> None:
        if not name:
            raise ValueError("pool needs a name")
        self.name = name
        self._authorized: Set[str] = set(authorized or ())
        self._contributions: List[Contribution] = []
        self._quarantined: Set[str] = set()
        self._counter = itertools.count()
        self._lock = threading.RLock()
        self._seen_keys: "OrderedDict[str, int]" = OrderedDict()

    # -- authorization -------------------------------------------------
    def authorize(self, device_id: str) -> None:
        with self._lock:
            self._authorized.add(device_id)

    def revoke(self, device_id: str) -> None:
        with self._lock:
            self._authorized.discard(device_id)

    def is_authorized(self, device_id: str) -> bool:
        with self._lock:
            return device_id in self._authorized

    # -- contribution --------------------------------------------------
    def contribute(
        self,
        device_id: str,
        samples: np.ndarray,
        labels: np.ndarray,
        idempotency_key: Optional[str] = None,
    ) -> int:
        """Add labelled samples; returns how many were accepted.

        The whole batch is inserted under the pool lock, so concurrent
        contributors cannot interleave inside it.  When ``idempotency_key``
        is given and was already accepted (within the dedup window), the
        batch is recognised as a redelivery: nothing is inserted and the
        original accepted count is returned.
        """
        if not self.is_authorized(device_id):
            raise PoolAuthorizationError(
                f"device {device_id!r} is not authorized for pool {self.name!r}"
            )
        decision = faults.perform(faults.inject("pools.contribute"))
        if decision is not None and decision.kind == faults.DROP:
            return 0  # the contribution is silently lost in transit
        samples = np.asarray(samples, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if len(samples) != len(labels):
            raise ValueError("samples and labels must align")
        with self._lock:
            if idempotency_key is not None:
                if idempotency_key in self._seen_keys:
                    return self._seen_keys[idempotency_key]
            for sample, label in zip(samples, labels):
                self._contributions.append(
                    Contribution(
                        device_id=device_id,
                        index=next(self._counter),
                        sample=sample,
                        label=int(label),
                    )
                )
            if idempotency_key is not None:
                self._seen_keys[idempotency_key] = len(samples)
                while len(self._seen_keys) > self.DEDUP_WINDOW:
                    self._seen_keys.popitem(last=False)
        return len(samples)

    # -- views -----------------------------------------------------------
    @property
    def size(self) -> int:
        with self._lock:
            return len(self._contributions)

    def contributors(self) -> List[str]:
        with self._lock:
            return sorted({c.device_id for c in self._contributions})

    def quarantine(self, device_id: str) -> None:
        """Exclude a device's data from training views (kept for forensics)."""
        with self._lock:
            self._quarantined.add(device_id)

    def release(self, device_id: str) -> None:
        with self._lock:
            self._quarantined.discard(device_id)

    @property
    def quarantined(self) -> Set[str]:
        with self._lock:
            return set(self._quarantined)

    def _select(self, include: Callable[[Contribution], bool]) -> Tuple[np.ndarray, np.ndarray]:
        with self._lock:
            chosen = [c for c in self._contributions if include(c)]
        if not chosen:
            return np.zeros((0,)), np.zeros((0,), dtype=np.int64)
        x = np.stack([c.sample for c in chosen])
        y = np.array([c.label for c in chosen], dtype=np.int64)
        return x, y

    def training_view(self) -> Tuple[np.ndarray, np.ndarray]:
        """All non-quarantined data, as (samples, labels)."""
        return self._select(lambda c: c.device_id not in self._quarantined)

    def device_view(self, device_id: str) -> Tuple[np.ndarray, np.ndarray]:
        return self._select(lambda c: c.device_id == device_id)

    def excluding_device(self, device_id: str) -> Tuple[np.ndarray, np.ndarray]:
        return self._select(
            lambda c: c.device_id != device_id and c.device_id not in self._quarantined
        )


# ----------------------------------------------------------------------
# Rogue-contributor auditing
# ----------------------------------------------------------------------
def _default_classifier_factory(num_classes: int, steps: int = 250, seed: int = 0):
    """Multinomial logistic regression on flattened samples."""

    class _Logistic:
        def __init__(self) -> None:
            self.model: Optional[Sequential] = None
            self.rng = np.random.default_rng(seed)

        def fit(self, x: np.ndarray, y: np.ndarray) -> "_Logistic":
            flat = x.reshape(len(x), -1)
            self.model = Sequential(Dense(flat.shape[1], num_classes, rng=self.rng))
            optimizer = Adam(self.model.parameters(), lr=5e-2)
            for _ in range(steps):
                idx = self.rng.choice(len(flat), size=min(64, len(flat)), replace=False)
                loss = cross_entropy(self.model(Tensor(flat[idx])), y[idx])
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()
            return self

        def predict(self, x: np.ndarray) -> np.ndarray:
            assert self.model is not None
            flat = x.reshape(len(x), -1)
            return self.model.infer(flat).argmax(axis=-1)

    return _Logistic()


@dataclass
class AuditReport:
    """Outcome of a pool audit."""

    misclassification_rates: Dict[str, float]
    flagged: List[str]
    threshold: float

    def rate(self, device_id: str) -> float:
        return self.misclassification_rates[device_id]


class ContributorAuditor:
    """Leave-one-contributor-out poisoning detection.

    Parameters
    ----------
    z_threshold:
        A device is flagged when its misclassification rate exceeds the
        population median by more than ``z_threshold`` robust standard
        deviations (median absolute deviation scaled), *and* exceeds
        ``min_rate`` absolutely (guards the all-honest case where rates are
        tiny and MAD is near zero).
    """

    def __init__(
        self,
        num_classes: int,
        classifier_factory: Optional[Callable[[], object]] = None,
        z_threshold: float = 3.0,
        min_rate: float = 0.3,
        seed: int = 0,
    ) -> None:
        if num_classes < 2:
            raise ValueError("need at least two classes")
        if z_threshold <= 0:
            raise ValueError("z_threshold must be positive")
        self.num_classes = num_classes
        self.classifier_factory = classifier_factory or (
            lambda: _default_classifier_factory(num_classes, seed=seed)
        )
        self.z_threshold = z_threshold
        self.min_rate = min_rate

    def audit(self, pool: DataPool) -> AuditReport:
        """Cross-validate every contributor against the others' data."""
        contributors = pool.contributors()
        if len(contributors) < 2:
            raise ValueError("auditing needs at least two contributors")
        rates: Dict[str, float] = {}
        for device in contributors:
            x_others, y_others = pool.excluding_device(device)
            x_dev, y_dev = pool.device_view(device)
            if len(x_others) == 0 or len(x_dev) == 0:
                rates[device] = 0.0
                continue
            model = self.classifier_factory().fit(x_others, y_others)
            predictions = model.predict(x_dev)
            rates[device] = float((predictions != y_dev).mean())

        values = np.array([rates[d] for d in contributors])
        median = float(np.median(values))
        mad = float(np.median(np.abs(values - median)))
        robust_std = 1.4826 * mad
        threshold = median + self.z_threshold * max(robust_std, 1e-6)
        flagged = [
            d
            for d in contributors
            if rates[d] > threshold and rates[d] >= self.min_rate
        ]
        return AuditReport(
            misclassification_rates=rates, flagged=flagged, threshold=threshold
        )

    def audit_and_quarantine(self, pool: DataPool) -> AuditReport:
        """Audit and quarantine every flagged device."""
        report = self.audit(pool)
        for device in report.flagged:
            pool.quarantine(device)
        return report
