"""Request/response messages of the Eugene service API.

Plain dataclasses rather than a wire format: the paper leaves "service
models and APIs" as future work, so we define the minimal schema its
Section II taxonomy implies.  Everything is serializable-by-construction
(numpy arrays and primitives only) so a network transport could be added
without changing the API surface.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..admission import REJECT_REASONS, AdmissionConfig
from ..nn.deepsense import DeepSenseConfig
from ..nn.resnet import StagedResNetConfig


def _validate_idempotency_key(key: Optional[str]) -> None:
    """Idempotency keys are optional, but never empty or non-string.

    Non-idempotent endpoints (train, reduce, delete, …) honour the key
    server-side inside a bounded dedup window, so a retry that redelivers
    an already-executed request returns the original response instead of
    duplicating its side effects.  :class:`~repro.service.client.
    EugeneClient` generates one fresh key per logical request and reuses
    it across retry attempts.
    """
    if key is None:
        return
    if not isinstance(key, str) or not key:
        raise ValueError("idempotency_key must be a non-empty string when given")


def _validate_tenant(tenant: Optional[str]) -> None:
    """Tenant ids are optional, but never empty or non-string.

    The id rides the request end-to-end (client → router → admission →
    telemetry) so per-tenant quotas and accounting can attribute it; a
    request without one is admitted under the controller's un-tenanted
    path.
    """
    if tenant is None:
        return
    if not isinstance(tenant, str) or not tenant:
        raise ValueError("tenant must be a non-empty string when given")


def _require_finite(name: str, values: np.ndarray) -> None:
    """Reject NaN/inf payloads at the API boundary.

    A NaN smuggled into a request poisons everything downstream (softmax,
    confidence comparisons, GP fits) silently; one ``isfinite`` pass per
    request is cheap next to any endpoint's real work.  The check runs on
    the array's native dtype — integer payloads are finite by
    construction and float payloads need no float64 copy (the old
    ``asarray(..., dtype=float64)`` doubled the memory traffic of every
    float32 request on the hot path).
    """
    arr = np.asarray(values)
    kind = arr.dtype.kind
    if kind in "iub":
        return
    if kind == "f":
        if not np.isfinite(arr).all():
            raise ValueError(f"{name} must be finite (no NaN/inf values)")
        return
    if not np.all(np.isfinite(np.asarray(arr, dtype=np.float64))):
        raise ValueError(f"{name} must be finite (no NaN/inf values)")


@dataclass
class TrainRequest:
    """Train a staged model on client-supplied labelled data."""

    inputs: np.ndarray
    labels: np.ndarray
    model_config: Optional[StagedResNetConfig] = None
    epochs: int = 8
    learning_rate: float = 1e-2
    batch_size: int = 64
    name: str = "model"
    #: dedup handle for safe retries of this non-idempotent request.
    idempotency_key: Optional[str] = None
    #: multi-tenant attribution/quota id; ``None`` = un-tenanted.
    tenant: Optional[str] = None

    def __post_init__(self) -> None:
        _validate_idempotency_key(self.idempotency_key)
        _validate_tenant(self.tenant)
        if len(self.inputs) != len(self.labels):
            raise ValueError("inputs and labels must have the same length")
        if len(self.inputs) == 0:
            raise ValueError("training data must not be empty")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        _require_finite("inputs", self.inputs)


@dataclass
class TrainResponse:
    model_id: str
    epochs: int
    final_loss: float
    stage_accuracies: Tuple[float, ...]


@dataclass
class LabelRequest:
    """Propose labels for unlabeled data given a small labelled seed set."""

    labeled_inputs: np.ndarray
    labeled_targets: np.ndarray
    unlabeled_inputs: np.ndarray
    num_classes: int
    rounds: int = 60
    method: str = "sensegan"  # or "self-training"
    #: multi-tenant attribution/quota id; ``None`` = un-tenanted.
    tenant: Optional[str] = None

    def __post_init__(self) -> None:
        _validate_tenant(self.tenant)
        if self.method not in ("sensegan", "self-training"):
            raise ValueError(f"unknown labeling method {self.method!r}")
        if self.num_classes < 2:
            raise ValueError("need at least two classes")
        if len(self.labeled_inputs) != len(self.labeled_targets):
            raise ValueError("labeled inputs and targets must align")
        if self.rounds < 1:
            raise ValueError("rounds must be >= 1")
        _require_finite("labeled_inputs", self.labeled_inputs)
        _require_finite("unlabeled_inputs", self.unlabeled_inputs)


@dataclass
class LabelResponse:
    labels: np.ndarray
    confidences: np.ndarray
    method: str


@dataclass
class ReduceRequest:
    """Produce a reduced model for caching on a constrained device."""

    model_id: str
    width_fraction: Optional[float] = None
    class_subset: Optional[Sequence[int]] = None
    max_parameters: Optional[int] = None
    epochs: int = 4
    #: dedup handle for safe retries of this non-idempotent request.
    idempotency_key: Optional[str] = None
    #: multi-tenant attribution/quota id; ``None`` = un-tenanted.
    tenant: Optional[str] = None

    def __post_init__(self) -> None:
        _validate_idempotency_key(self.idempotency_key)
        _validate_tenant(self.tenant)
        if self.width_fraction is not None and not 0.0 < self.width_fraction <= 1.0:
            raise ValueError("width_fraction must be in (0, 1] when given")
        if self.max_parameters is not None and self.max_parameters < 1:
            raise ValueError("max_parameters must be >= 1 when given")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")


@dataclass
class ReduceResponse:
    model_id: str
    parameters: int
    original_parameters: int
    class_map: Dict[int, int]

    @property
    def compression_ratio(self) -> float:
        return self.parameters / self.original_parameters


@dataclass
class ProfileRequest:
    """Profile a registered model's per-stage execution costs."""

    model_id: str
    normalize: bool = False
    #: multi-tenant attribution/quota id; ``None`` = un-tenanted.
    tenant: Optional[str] = None

    def __post_init__(self) -> None:
        _validate_tenant(self.tenant)


@dataclass
class ProfileResponse:
    stage_times_ms: Tuple[float, ...]
    total_time_ms: float


@dataclass
class CalibrateRequest:
    """Entropy-based confidence calibration (Eq. 4) on held-out data."""

    model_id: str
    inputs: np.ndarray
    labels: np.ndarray
    epochs: int = 3
    #: multi-tenant attribution/quota id; ``None`` = un-tenanted.
    tenant: Optional[str] = None

    def __post_init__(self) -> None:
        _validate_tenant(self.tenant)
        if len(self.inputs) != len(self.labels):
            raise ValueError("inputs and labels must have the same length")
        if self.epochs < 1:
            raise ValueError("epochs must be >= 1")
        _require_finite("inputs", self.inputs)


@dataclass
class CalibrateResponse:
    alphas: Tuple[float, ...]
    ece_before: Tuple[float, ...]
    ece_after: Tuple[float, ...]


@dataclass
class RejectedResponse:
    """Typed backpressure: the service refused the request under overload.

    The admission layer's contract (docs/OVERLOAD.md): a rejected caller
    always learns *which* limit fired (``reason``) and *when* retrying can
    succeed (``retry_after_s``) — the dataclass analogue of an HTTP 429
    with a ``Retry-After`` header.  Endpoints return this instead of their
    normal response type; :class:`~repro.service.client.EugeneClient`
    converts it into a :class:`~repro.faults.BackpressureError` so retry
    policies can honour the hint.
    """

    endpoint: str
    reason: str
    retry_after_s: float = 0.0
    message: str = ""

    def __post_init__(self) -> None:
        if self.reason not in REJECT_REASONS:
            raise ValueError(
                f"unknown rejection reason {self.reason!r}; "
                f"use one of {REJECT_REASONS}"
            )
        if self.retry_after_s < 0:
            raise ValueError("retry_after_s must be non-negative")


@dataclass
class DeleteRequest:
    """Remove a registered model (and optionally its reduced children)."""

    model_id: str
    #: also delete reduced models derived from this one.  Without cascade,
    #: deleting a parent that still has children is refused — a child's
    #: ``parent_id`` must never dangle.
    cascade: bool = False
    #: dedup handle for safe retries of this non-idempotent request.
    idempotency_key: Optional[str] = None
    #: multi-tenant attribution/quota id; ``None`` = un-tenanted.
    tenant: Optional[str] = None

    def __post_init__(self) -> None:
        _validate_idempotency_key(self.idempotency_key)
        _validate_tenant(self.tenant)
        if not self.model_id:
            raise ValueError("model_id must not be empty")


@dataclass
class DeleteResponse:
    #: every model id removed, the requested one first (cascade order).
    deleted: Tuple[str, ...]


@dataclass
class InferRequest:
    """Run-time inference with a latency constraint, scheduled by RTDeepIoT."""

    model_id: str
    inputs: np.ndarray
    latency_constraint_s: float = 10.0
    lookahead: int = 1
    num_workers: int = 2
    #: same-stage tasks coalesced into one batched stage execution
    #: (1 = the unbatched per-image behaviour).
    max_batch: int = 1
    #: seconds an undersized batch may wait for more same-stage work.
    drain_window_s: float = 0.0
    #: per-request overload management (:mod:`repro.admission`): bounds the
    #: in-runtime queue, shedding or degrading the lowest-expected-utility
    #: tasks of this batch.  ``None`` (default) = serve everything.
    admission: Optional[AdmissionConfig] = None
    #: anytime-inference contract (gen-2 imprecise computations): a task
    #: whose latency constraint expires with at least one completed stage
    #: is served its best-so-far early-exit result at the deadline —
    #: degraded, never late, never evicted-with-an-answer-in-hand.
    anytime: bool = False
    #: multi-tenant attribution/quota id; ``None`` = un-tenanted.
    tenant: Optional[str] = None

    def __post_init__(self) -> None:
        _validate_tenant(self.tenant)
        if self.latency_constraint_s <= 0:
            raise ValueError("latency constraint must be positive")
        if self.lookahead < 1:
            raise ValueError("lookahead must be >= 1")
        if self.num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.drain_window_s < 0:
            raise ValueError("drain_window_s must be non-negative")
        if self.drain_window_s > 0 and self.max_batch <= 1:
            raise ValueError(
                "drain_window_s > 0 requires max_batch > 1: a single-task "
                "batch can never grow, so holding it back only adds latency"
            )
        if len(self.inputs) == 0:
            raise ValueError("inputs must not be empty")
        _require_finite("inputs", self.inputs)


@dataclass
class InferResponse:
    predictions: List[Optional[int]]
    confidences: List[Optional[float]]
    stages_executed: List[int]
    evicted: List[bool]
    #: telemetry summary (stage latency quantiles, batch occupancy,
    #: deadline misses, per-endpoint request counts); ``None`` unless
    #: :mod:`repro.telemetry` is enabled.
    metrics: Optional[Dict[str, object]] = None
    #: per task: the result was served from an early exit because later
    #: stages never finished inside the budget (deadline or fault) — the
    #: graceful-degradation contract: a weaker answer beats no answer.
    degraded: List[bool] = field(default_factory=list)
    #: per task: which stage the served result came from (``None`` when the
    #: task produced no result at all before expiring).
    served_stage: List[Optional[int]] = field(default_factory=list)
    #: per task: dropped by admission control before any service (overload
    #: shedding) — shed tasks have no prediction and are never ``evicted``.
    shed: List[bool] = field(default_factory=list)
    #: per task: the anytime contract served this task's best-so-far early
    #: exit at its deadline (implies ``degraded``; excludes ``evicted``).
    anytime_served: List[bool] = field(default_factory=list)


@dataclass
class DeepSenseTrainRequest:
    """Train a DeepSense sensor-fusion model (Sec. II-A's architecture).

    Input layout matches :func:`repro.datasets.make_sensor_dataset`:
    ``(N, num_sensors * channels_per_sensor, num_intervals,
    samples_per_interval)``.
    """

    inputs: np.ndarray
    labels: np.ndarray
    model_config: Optional[DeepSenseConfig] = None
    steps: int = 200
    batch_size: int = 48
    learning_rate: float = 3e-3
    name: str = "deepsense"
    #: dedup handle for safe retries of this non-idempotent request.
    idempotency_key: Optional[str] = None
    #: multi-tenant attribution/quota id; ``None`` = un-tenanted.
    tenant: Optional[str] = None

    def __post_init__(self) -> None:
        _validate_idempotency_key(self.idempotency_key)
        _validate_tenant(self.tenant)
        if len(self.inputs) != len(self.labels):
            raise ValueError("inputs and labels must align")
        if len(self.inputs) == 0:
            raise ValueError("training data must not be empty")
        if np.asarray(self.inputs).ndim != 4:
            raise ValueError("inputs must be (N, channels, intervals, samples)")
        if self.steps < 1:
            raise ValueError("steps must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        _require_finite("inputs", self.inputs)


@dataclass
class DeepSenseTrainResponse:
    model_id: str
    train_accuracy: float
    steps: int


@dataclass
class ClassifyRequest:
    """Single-shot classification (no staged scheduling) by any classifier
    model — a trained DeepSense network or a staged model's final exit."""

    model_id: str
    inputs: np.ndarray
    #: when set, inputs are classified in chunks of this size — bounds peak
    #: memory of the im2col buffers for large requests.
    micro_batch: Optional[int] = None
    #: multi-tenant attribution/quota id; ``None`` = un-tenanted.
    tenant: Optional[str] = None

    def __post_init__(self) -> None:
        _validate_tenant(self.tenant)
        if self.micro_batch is not None and self.micro_batch < 1:
            raise ValueError("micro_batch must be >= 1 when given")
        if len(self.inputs) == 0:
            raise ValueError("inputs must not be empty")
        _require_finite("inputs", self.inputs)


@dataclass
class ClassifyResponse:
    predictions: np.ndarray
    confidences: np.ndarray
    #: telemetry summary; ``None`` unless :mod:`repro.telemetry` is enabled.
    metrics: Optional[Dict[str, object]] = None


@dataclass
class EstimatorTrainRequest:
    """Train a regression (estimation) model with calibrated uncertainty.

    Eugene's inference functions cover "estimation and classification
    (depending on whether the sought results are continuous or categorical)";
    this is the continuous half, trained with the RDeepSense weighted
    MSE+NLL loss so the returned intervals are calibrated (Sec. II-D).
    """

    inputs: np.ndarray
    targets: np.ndarray
    #: w in w*MSE + (1-w)*NLL; 0.5 is the calibrated middle ground.
    loss_weight: float = 0.5
    hidden: int = 32
    steps: int = 400
    name: str = "estimator"
    #: dedup handle for safe retries of this non-idempotent request.
    idempotency_key: Optional[str] = None
    #: multi-tenant attribution/quota id; ``None`` = un-tenanted.
    tenant: Optional[str] = None

    def __post_init__(self) -> None:
        _validate_idempotency_key(self.idempotency_key)
        _validate_tenant(self.tenant)
        if len(self.inputs) != len(self.targets):
            raise ValueError("inputs and targets must align")
        if len(self.inputs) == 0:
            raise ValueError("training data must not be empty")
        if not 0.0 <= self.loss_weight <= 1.0:
            raise ValueError("loss_weight must be in [0, 1]")
        if self.hidden < 1:
            raise ValueError("hidden must be >= 1")
        if self.steps < 1:
            raise ValueError("steps must be >= 1")
        _require_finite("inputs", self.inputs)
        _require_finite("targets", self.targets)


@dataclass
class EstimatorTrainResponse:
    model_id: str
    train_mae: float
    #: empirical coverage of the 90% predictive interval on training data.
    coverage_90: float


@dataclass
class EstimateRequest:
    """Point estimates plus predictive intervals for new inputs."""

    model_id: str
    inputs: np.ndarray
    #: central interval mass, e.g. 0.9 for a 90% interval.
    confidence_level: float = 0.9
    #: multi-tenant attribution/quota id; ``None`` = un-tenanted.
    tenant: Optional[str] = None

    def __post_init__(self) -> None:
        _validate_tenant(self.tenant)
        if not 0.0 < self.confidence_level < 1.0:
            raise ValueError("confidence_level must be in (0, 1)")
        if len(self.inputs) == 0:
            raise ValueError("inputs must not be empty")
        _require_finite("inputs", self.inputs)


@dataclass
class EstimateResponse:
    means: np.ndarray
    stds: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    confidence_level: float
