"""Registry of trained / reduced models held by the Eugene back-end."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..nn.data import Dataset
from ..nn.resnet import StagedResNet
from ..scheduler.confidence import GPConfidencePredictor


@dataclass
class ModelEntry:
    """A registered model plus the artifacts the service keeps beside it."""

    model_id: str
    name: str
    model: StagedResNet
    kind: str = "full"  # "full" or "reduced"
    #: the training set, retained for reduction/calibration requests.
    train_set: Optional[Dataset] = None
    #: confidence-curve predictor fitted on training confidences (Sec. III-B).
    predictor: Optional[GPConfidencePredictor] = None
    #: class map of reduced models (original class -> reduced output index).
    class_map: Optional[Dict[int, int]] = None
    parent_id: Optional[str] = None


class ModelRegistry:
    """In-memory model store with sequential ids."""

    def __init__(self) -> None:
        self._entries: Dict[str, ModelEntry] = {}
        self._counter = itertools.count(1)

    def register(
        self,
        name: str,
        model: StagedResNet,
        kind: str = "full",
        train_set: Optional[Dataset] = None,
        predictor: Optional[GPConfidencePredictor] = None,
        class_map: Optional[Dict[int, int]] = None,
        parent_id: Optional[str] = None,
    ) -> ModelEntry:
        model_id = f"m{next(self._counter)}"
        entry = ModelEntry(
            model_id=model_id,
            name=name,
            model=model,
            kind=kind,
            train_set=train_set,
            predictor=predictor,
            class_map=class_map,
            parent_id=parent_id,
        )
        self._entries[model_id] = entry
        return entry

    def install(self, entry: ModelEntry) -> ModelEntry:
        """Place an entry under its *own* ``model_id`` (the replication path).

        ``register`` mints sequential local ids; a cluster router instead
        assigns one authoritative id per model and installs copies of the
        entry on every replica holding it, so the same id resolves on each.
        Installing over an existing id is refused — replication must never
        silently shadow a model.
        """
        if not entry.model_id:
            raise ValueError("entry needs a model_id to be installed")
        if entry.model_id in self._entries:
            raise ValueError(f"model id {entry.model_id!r} already registered")
        self._entries[entry.model_id] = entry
        return entry

    def pop(self, model_id: str) -> ModelEntry:
        """Remove and return one entry, ignoring parent/child protection.

        Used by the replication path to re-key a freshly trained model to
        its cluster-wide id; for client-facing deletion semantics use
        :meth:`delete`.
        """
        if model_id not in self._entries:
            raise KeyError(f"unknown model id {model_id!r}")
        return self._entries.pop(model_id)

    def get(self, model_id: str) -> ModelEntry:
        if model_id not in self._entries:
            raise KeyError(f"unknown model id {model_id!r}")
        return self._entries[model_id]

    def __contains__(self, model_id: str) -> bool:
        return model_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def list_models(self) -> List[ModelEntry]:
        return list(self._entries.values())

    def children(self, model_id: str) -> List[ModelEntry]:
        """Reduced models registered with ``model_id`` as their parent."""
        return [e for e in self._entries.values() if e.parent_id == model_id]

    def delete(self, model_id: str, cascade: bool = False) -> List[str]:
        """Remove a model; returns every id removed (requested one first).

        A parent whose reduced children are still registered is protected:
        deleting it would leave the children's ``parent_id`` dangling, so
        the call is refused unless ``cascade=True``, which removes the
        whole subtree (children before grandchildren never happens — the
        reduce endpoint only derives from full models — but the walk is
        recursive anyway so deeper derivation chains stay safe).
        """
        if model_id not in self._entries:
            raise KeyError(f"unknown model id {model_id!r}")
        children = self.children(model_id)
        if children and not cascade:
            ids = ", ".join(sorted(c.model_id for c in children))
            raise ValueError(
                f"model {model_id!r} still has reduced children ({ids}); "
                "delete them first or pass cascade=True"
            )
        deleted = [model_id]
        for child in children:
            deleted.extend(self.delete(child.model_id, cascade=True))
        del self._entries[model_id]
        return deleted
