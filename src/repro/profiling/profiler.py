"""FastDeepIoT-style piecewise-linear execution-time profiler.

The key insight of [9] is that execution time, while highly non-linear in
naive predictors like FLOPs, is accurately *piecewise linear* in the layer
parameters — so a profiler can (a) identify the region boundaries
automatically and (b) fit a plain linear regression inside each region.

We implement that as a small model tree: internal nodes split on one layer
feature at a learned threshold, leaves hold least-squares linear models.
Splits are chosen greedily to minimize summed squared error of the two child
regressions, which is exactly change-point detection in the one-feature
case and generalizes it to several features.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .. import telemetry
from .cost_model import ConvLayerSpec, MobileDeviceCostModel


@dataclass(frozen=True)
class ProfileSample:
    """One profiling observation: a layer configuration and its measured time."""

    spec: ConvLayerSpec
    time_ms: float


def generate_profiling_samples(
    device: MobileDeviceCostModel,
    num_samples: int = 400,
    seed: int = 0,
    input_size: int = 224,
    repeats: int = 1,
) -> List[ProfileSample]:
    """Sweep random layer configurations on the device.

    This plays the role of FastDeepIoT's automated on-device profiling runs:
    sample (in, out) channel pairs log-uniformly, measure ``repeats`` times,
    keep the mean.
    """
    if num_samples < 1 or repeats < 1:
        raise ValueError("num_samples and repeats must be positive")
    rng = np.random.default_rng(seed)
    tel = telemetry.active()
    samples: List[ProfileSample] = []
    for _ in range(num_samples):
        in_ch = int(np.round(2 ** rng.uniform(0, 7.5)))
        out_ch = int(np.round(2 ** rng.uniform(0, 7.5)))
        spec = ConvLayerSpec(
            in_channels=max(in_ch, 1),
            out_channels=max(out_ch, 1),
            input_size=input_size,
        )
        t = float(np.mean([device.measure(spec) for _ in range(repeats)]))
        if tel is not None:
            # Measured stage costs feed the same registry the scheduler
            # reads, so profiled and served latencies share one export.
            tel.registry.counter("profiling.samples").inc()
            tel.registry.histogram("profiling.sample_time_ms").observe(t)
        samples.append(ProfileSample(spec, t))
    return samples


class _LinearLeaf:
    """Least-squares linear model over the feature vector (plus intercept)."""

    def __init__(self, x: np.ndarray, y: np.ndarray) -> None:
        design = np.column_stack([x, np.ones(len(x))])
        coef, *_ = np.linalg.lstsq(design, y, rcond=None)
        self.coef = coef
        residual = design @ coef - y
        self.sse = float(residual @ residual)

    def predict(self, x: np.ndarray) -> np.ndarray:
        design = np.column_stack([x, np.ones(len(x))])
        return design @ self.coef


@dataclass
class _Node:
    leaf: Optional[_LinearLeaf] = None
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.leaf is not None


class PiecewiseLinearProfiler:
    """Learns a piecewise-linear execution-time model from profiling samples.

    Parameters
    ----------
    max_depth:
        Maximum number of nested region splits.
    min_samples_leaf:
        Regions are never made smaller than this.
    min_improvement:
        Relative SSE reduction a split must achieve to be kept — this is the
        stopping rule that decides how many piecewise-linear regions exist.
    """

    def __init__(
        self,
        max_depth: int = 4,
        min_samples_leaf: int = 20,
        min_improvement: float = 0.03,
    ) -> None:
        if max_depth < 0 or min_samples_leaf < 2:
            raise ValueError("invalid tree hyper-parameters")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_improvement = min_improvement
        self._root: Optional[_Node] = None
        self.feature_names = ConvLayerSpec.feature_names()

    # ------------------------------------------------------------------
    def fit(self, samples: Sequence[ProfileSample]) -> "PiecewiseLinearProfiler":
        if len(samples) < 2 * self.min_samples_leaf:
            raise ValueError(
                f"need at least {2 * self.min_samples_leaf} samples, got {len(samples)}"
            )
        x = np.stack([s.spec.features() for s in samples])
        y = np.array([s.time_ms for s in samples])
        self._root = self._build(x, y, depth=0)
        return self

    def _build(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        leaf = _LinearLeaf(x, y)
        if depth >= self.max_depth or len(y) < 2 * self.min_samples_leaf:
            return _Node(leaf=leaf)
        best: Optional[Tuple[float, int, float]] = None  # (sse, feature, threshold)
        for feature in range(x.shape[1]):
            values = np.unique(x[:, feature])
            if len(values) < 2:
                continue
            # Candidate thresholds: midpoints of up to 24 quantile cuts.
            quantiles = np.quantile(values, np.linspace(0.05, 0.95, 24))
            for threshold in np.unique(quantiles):
                mask = x[:, feature] <= threshold
                n_left = int(mask.sum())
                if n_left < self.min_samples_leaf or len(y) - n_left < self.min_samples_leaf:
                    continue
                sse = (
                    _LinearLeaf(x[mask], y[mask]).sse
                    + _LinearLeaf(x[~mask], y[~mask]).sse
                )
                if best is None or sse < best[0]:
                    best = (sse, feature, float(threshold))
        if best is None or best[0] > (1.0 - self.min_improvement) * leaf.sse:
            return _Node(leaf=leaf)
        _, feature, threshold = best
        mask = x[:, feature] <= threshold
        return _Node(
            feature=feature,
            threshold=threshold,
            left=self._build(x[mask], y[mask], depth + 1),
            right=self._build(x[~mask], y[~mask], depth + 1),
        )

    # ------------------------------------------------------------------
    @property
    def fitted(self) -> bool:
        return self._root is not None

    def num_regions(self) -> int:
        """Number of piecewise-linear regions the profiler identified."""
        if not self.fitted:
            return 0

        def count(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return count(node.left) + count(node.right)

        return count(self._root)

    def predict(self, specs: Sequence[ConvLayerSpec]) -> np.ndarray:
        """Predicted execution time (ms) for each layer spec."""
        if not self.fitted:
            raise RuntimeError("call fit() first")
        x = np.stack([s.features() for s in specs])
        out = np.empty(len(specs))
        for i, row in enumerate(x):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.leaf.predict(row[None, :])[0]
        return out

    def predict_one(self, spec: ConvLayerSpec) -> float:
        return float(self.predict([spec])[0])

    def describe_regions(self) -> List[str]:
        """Human-readable split structure, for docs and debugging."""
        if not self.fitted:
            return []
        lines: List[str] = []

        def walk(node: _Node, path: str) -> None:
            if node.is_leaf:
                lines.append(path or "(all)")
                return
            name = self.feature_names[node.feature]
            walk(node.left, f"{path} & {name}<={node.threshold:.3g}".lstrip(" &"))
            walk(node.right, f"{path} & {name}>{node.threshold:.3g}".lstrip(" &"))

        walk(self._root, "")
        return lines

    def evaluate(self, samples: Sequence[ProfileSample]) -> dict:
        """MAE / MAPE / R^2 of the fitted profiler on held-out samples."""
        y = np.array([s.time_ms for s in samples])
        pred = self.predict([s.spec for s in samples])
        residual = y - pred
        ss_res = float(residual @ residual)
        ss_tot = float(((y - y.mean()) ** 2).sum())
        return {
            "mae_ms": float(np.abs(residual).mean()),
            "mape": float(np.abs(residual / y).mean()),
            "r2": 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0,
        }
