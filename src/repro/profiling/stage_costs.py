"""Stage execution costs for the scheduler, derived from the cost model.

The Fig. 4 experiments need per-stage execution times.  The paper's
optimality condition assumes "equal stage execution times"; this helper
computes realistic per-stage costs by summing the cost model's per-layer
times over each stage of a :class:`~repro.nn.resnet.StagedResNet`, with a
``normalize`` option that rescales them to an equal-time schedule of the
same total duration (the configuration the paper's analysis assumes).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .. import telemetry
from ..nn.resnet import StagedResNet
from .cost_model import ConvLayerSpec, MobileDeviceCostModel


def stage_execution_times(
    model: StagedResNet,
    device: Optional[MobileDeviceCostModel] = None,
    time_unit_ms: float = 1.0,
    normalize: bool = False,
) -> List[float]:
    """Per-stage execution times (in units of ``time_unit_ms``).

    With ``normalize=True`` the total is preserved but spread equally across
    stages (the paper's equal-stage-time assumption).
    """
    device = device or MobileDeviceCostModel()
    times: List[float] = []
    for layer_specs in model.stage_layer_specs():
        total = 0.0
        for spec in layer_specs:
            total += device.execution_time_ms(
                ConvLayerSpec(
                    in_channels=spec["in_channels"],
                    out_channels=spec["out_channels"],
                    kernel=spec["kernel"],
                    stride=spec["stride"],
                    input_size=spec["input_size"],
                )
            )
        times.append(total / time_unit_ms)
    if normalize:
        mean = float(np.mean(times))
        times = [mean] * len(times)
    tel = telemetry.active()
    if tel is not None:
        for stage, t in enumerate(times):
            tel.registry.histogram(f"profiling.stage_time_ms.stage{stage}").observe(
                t * time_unit_ms
            )
    return times
