"""Execution profiling (Sec. II-C, Table I) — the FastDeepIoT substrate.

Two halves:

- :mod:`repro.profiling.cost_model` — a synthetic mobile-device latency
  model calibrated so the four convolutional configurations of Table I
  reproduce the paper's measured times, including both non-linear effects
  (equal-FLOPs layers differing ~2.6x; a higher-FLOPs layer running faster);
- :mod:`repro.profiling.profiler` — an automated profiler that, like
  FastDeepIoT [9], "breaks execution models into piece-wise linear regions
  and uses regression over the relevant neural network parameters within
  each region" to predict execution time.
"""

from .cost_model import ConvLayerSpec, MobileDeviceCostModel, TABLE1_CONFIGS
from .optimizer import CandidateLayer, LayerOptimizer
from .profiler import PiecewiseLinearProfiler, ProfileSample, generate_profiling_samples
from .stage_costs import stage_execution_times

__all__ = [
    "ConvLayerSpec",
    "MobileDeviceCostModel",
    "TABLE1_CONFIGS",
    "PiecewiseLinearProfiler",
    "ProfileSample",
    "generate_profiling_samples",
    "stage_execution_times",
    "LayerOptimizer",
    "CandidateLayer",
]
