"""Synthetic mobile-device latency model (the Table I substitute).

The paper reproduces (from FastDeepIoT [9]) measurements on a Nexus 5 phone
showing that execution time of convolutional layers is *not* a linear
function of FLOPs:

====== ========== =========== ========= =========
layer  in channel out channel FLOPs     time (ms)
====== ========== =========== ========= =========
CNN1   8          32          452.4 M   114.9
CNN2   32         8           452.4 M   300.2
CNN3   66         32          3732.3 M  908.3
CNN4   43         64          4863.3 M  751.7
====== ========== =========== ========= =========

We have no phone, so we build a deterministic cost model with the two
physical mechanisms that produce exactly these anomalies, calibrated so the
four published rows come out (nearly) verbatim:

1. **Output-channel lane utilization** (CNN1 vs CNN2, and the CNN3-vs-CNN4
   inversion): per-MAC cost falls as output channels grow because weight
   reuse and thread-pool saturation improve; few output channels leave SIMD
   lanes idle.  Modelled as a piecewise-linear factor over ``out_channels``
   calibrated to the four published rows (CNN2's 8 output channels are
   ~2.7x as expensive per MAC as CNN1's 32; CNN4's 64 output channels are
   cheap enough per MAC to beat CNN3 despite 30% more FLOPs).
2. **Input working-set cache cliff**: when the per-pixel input working set
   (``kernel^2 * in_channels``) exceeds the L2-resident budget (96 channels
   at 3x3 — above every Table I row), the per-MAC rate jumps.  This adds a
   second non-linear regime the profiler must discover.

The model is intentionally *piecewise linear in its parameters* — that is
FastDeepIoT's empirical finding, and it is what makes the profiler of
:mod:`repro.profiling.profiler` able to learn it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class ConvLayerSpec:
    """Parameters of one convolutional layer, the profiler's feature space."""

    in_channels: int
    out_channels: int
    kernel: int = 3
    stride: int = 1
    input_size: int = 224

    def __post_init__(self) -> None:
        if min(self.in_channels, self.out_channels, self.kernel, self.stride,
               self.input_size) < 1:
            raise ValueError("all layer parameters must be positive")

    @property
    def output_size(self) -> int:
        """Spatial output size under 'same' padding."""
        return (self.input_size + self.stride - 1) // self.stride

    @property
    def macs(self) -> float:
        """Multiply-accumulate operations."""
        return (
            self.kernel**2
            * self.in_channels
            * self.out_channels
            * self.output_size**2
        )

    @property
    def flops(self) -> float:
        """FLOPs = 2 * MACs (one multiply + one add)."""
        return 2.0 * self.macs

    @property
    def working_set(self) -> int:
        """Per-output-pixel input working set, the cache-cliff feature."""
        return self.kernel**2 * self.in_channels

    def features(self) -> np.ndarray:
        """Feature vector used by the profiler's regression."""
        return np.array(
            [
                self.in_channels,
                self.out_channels,
                self.kernel,
                self.stride,
                self.input_size,
                self.macs / 1e9,
            ],
            dtype=np.float64,
        )

    @staticmethod
    def feature_names() -> List[str]:
        return ["in_channels", "out_channels", "kernel", "stride", "input_size", "gmacs"]


#: The paper's Table I configurations (3x3 kernels, stride 1, 224x224 input).
TABLE1_CONFIGS: Dict[str, ConvLayerSpec] = {
    "CNN1": ConvLayerSpec(in_channels=8, out_channels=32),
    "CNN2": ConvLayerSpec(in_channels=32, out_channels=8),
    "CNN3": ConvLayerSpec(in_channels=66, out_channels=32),
    "CNN4": ConvLayerSpec(in_channels=43, out_channels=64),
}

#: The paper's measured times (ms) for those configurations.
TABLE1_TIMES_MS: Dict[str, float] = {
    "CNN1": 114.9,
    "CNN2": 300.2,
    "CNN3": 908.3,
    "CNN4": 751.7,
}


class MobileDeviceCostModel:
    """Deterministic execution-time / energy / memory model of the device.

    ``measure`` optionally adds small seeded multiplicative noise so the
    profiler faces realistic measurement jitter.
    """

    #: knots of the output-channel lane-utilization factor (piecewise linear).
    _OUT_KNOTS = np.array([1.0, 8.0, 16.0, 32.0, 64.0, 128.0, 512.0])
    _OUT_FACTORS = np.array([9.0, 5.3720, 3.1, 1.9961, 1.2652, 1.05, 1.0])
    #: per-pixel working-set budget before the cache cliff (3x3 * 96 ch).
    _CACHE_BUDGET = 9 * 96
    _CACHE_PENALTY = 1.85
    #: base rate (ms per GMAC at full utilization) and fixed launch overhead.
    _RATE_MS_PER_GMAC = 475.4
    _OVERHEAD_MS = 5.0

    def __init__(self, noise: float = 0.0, seed: int = 0) -> None:
        if noise < 0:
            raise ValueError("noise must be non-negative")
        self.noise = noise
        self._rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def _out_channel_factor(self, out_channels: int) -> float:
        return float(
            np.interp(out_channels, self._OUT_KNOTS, self._OUT_FACTORS)
        )

    def _cache_factor(self, spec: ConvLayerSpec) -> float:
        return self._CACHE_PENALTY if spec.working_set > self._CACHE_BUDGET else 1.0

    def execution_time_ms(self, spec: ConvLayerSpec) -> float:
        """Deterministic execution time of one layer, in milliseconds."""
        gmacs = spec.macs / 1e9
        return (
            self._OVERHEAD_MS
            + gmacs
            * self._RATE_MS_PER_GMAC
            * self._out_channel_factor(spec.out_channels)
            * self._cache_factor(spec)
        )

    def measure(self, spec: ConvLayerSpec) -> float:
        """One noisy 'measurement' of the layer (what a profiler observes)."""
        t = self.execution_time_ms(spec)
        if self.noise > 0:
            t *= 1.0 + self._rng.normal(0.0, self.noise)
        return max(t, 0.01)

    def energy_mj(self, spec: ConvLayerSpec) -> float:
        """Energy estimate: active power x time plus a per-MAC switching term."""
        active_power_w = 2.2
        per_gmac_mj = 110.0
        return (
            active_power_w * self.execution_time_ms(spec)
            + per_gmac_mj * spec.macs / 1e9 * self._cache_factor(spec)
        )

    def memory_kb(self, spec: ConvLayerSpec) -> float:
        """Peak working memory: im2col buffer + weights + output (float32)."""
        out_px = spec.output_size**2
        im2col = spec.working_set * out_px
        weights = spec.kernel**2 * spec.in_channels * spec.out_channels
        output = spec.out_channels * out_px
        return 4.0 * (im2col + weights + output) / 1024.0

    def network_time_ms(self, specs) -> float:
        """Total time of a sequence of layers."""
        return float(sum(self.execution_time_ms(s) for s in specs))
