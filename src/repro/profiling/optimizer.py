"""Profiling-driven architecture optimization (Sec. II-C's payoff).

"Leveraging the identified nonlinear behavior, it might become possible to
increase neural network size and accuracy while at the same time reduce its
execution overhead (as illustrated by comparing CNN4 to CNN3 in Table I)."

:class:`LayerOptimizer` operationalizes that sentence: given a reference
layer configuration, it searches the (in, out) channel space with the
learned piecewise-linear profiler and returns configurations that
*dominate* the reference — strictly more capacity (MACs, our accuracy
proxy) at strictly lower predicted execution time — exactly the CNN3→CNN4
move.  A Pareto-front helper exposes the whole capacity/latency trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .cost_model import ConvLayerSpec, MobileDeviceCostModel
from .profiler import PiecewiseLinearProfiler


@dataclass(frozen=True)
class CandidateLayer:
    """One searched configuration with its predicted cost and capacity."""

    spec: ConvLayerSpec
    predicted_time_ms: float

    @property
    def capacity(self) -> float:
        """MACs as the capacity/accuracy proxy (more compute, more capacity)."""
        return self.spec.macs

    def dominates(self, other: "CandidateLayer") -> bool:
        """At least as much capacity and at most as much time, one strict."""
        ge_capacity = self.capacity >= other.capacity
        le_time = self.predicted_time_ms <= other.predicted_time_ms
        strict = (self.capacity > other.capacity) or (
            self.predicted_time_ms < other.predicted_time_ms
        )
        return ge_capacity and le_time and strict


class LayerOptimizer:
    """Search conv-layer configurations under a learned time predictor."""

    def __init__(
        self,
        profiler: PiecewiseLinearProfiler,
        channel_choices: Sequence[int] = (4, 8, 12, 16, 24, 32, 48, 64, 96, 128),
    ) -> None:
        if not profiler.fitted:
            raise ValueError("profiler must be fitted first")
        if not channel_choices:
            raise ValueError("need at least one channel choice")
        self.profiler = profiler
        self.channel_choices = sorted(set(int(c) for c in channel_choices))

    # ------------------------------------------------------------------
    def enumerate_candidates(self, reference: ConvLayerSpec) -> List[CandidateLayer]:
        """All (in, out) combinations at the reference's kernel/stride/size."""
        specs = [
            ConvLayerSpec(
                in_channels=cin,
                out_channels=cout,
                kernel=reference.kernel,
                stride=reference.stride,
                input_size=reference.input_size,
            )
            for cin in self.channel_choices
            for cout in self.channel_choices
        ]
        times = self.profiler.predict(specs)
        return [CandidateLayer(spec=s, predicted_time_ms=float(t))
                for s, t in zip(specs, times)]

    def improvements_over(self, reference: ConvLayerSpec) -> List[CandidateLayer]:
        """Configurations that dominate the reference (bigger AND faster),
        sorted by predicted time."""
        ref = CandidateLayer(
            spec=reference,
            predicted_time_ms=float(self.profiler.predict_one(reference)),
        )
        dominating = [c for c in self.enumerate_candidates(reference)
                      if c.dominates(ref)]
        return sorted(dominating, key=lambda c: c.predicted_time_ms)

    def pareto_front(self, reference: ConvLayerSpec) -> List[CandidateLayer]:
        """Non-dominated candidates over (capacity up, time down)."""
        candidates = self.enumerate_candidates(reference)
        front: List[CandidateLayer] = []
        for c in candidates:
            if any(other.dominates(c) for other in candidates):
                continue
            front.append(c)
        return sorted(front, key=lambda c: c.predicted_time_ms)

    def verify_on_device(
        self, candidate: CandidateLayer, device: MobileDeviceCostModel
    ) -> Tuple[float, float]:
        """(predicted, actual) time of a candidate on the true device —
        closes the loop between profiler and reality."""
        return (
            candidate.predicted_time_ms,
            device.execution_time_ms(candidate.spec),
        )
