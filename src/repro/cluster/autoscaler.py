"""Elastic replica autoscaling for the serving tier.

This is ROADMAP's "scale with demand" rung: a controller that watches
router telemetry — queue depth, shed fraction, latency — and grows or
shrinks the fleet online through :meth:`ServiceRouter.add_replica` /
:meth:`ServiceRouter.drain_replica`.  The design splits cleanly in two:

- **Policy** (:func:`decide`) is a *pure function* of
  ``(LoadSnapshot, ControllerState, AutoscalerConfig)``.  No clock
  reads, no router access, no side effects — every cooldown, hysteresis
  window, and step bound is unit-testable on a virtual timestamp with
  zero real sleeps.  That purity is the point of this PR's test
  archetype: the controller cannot flake because it cannot wait.
- **Actuation** (:class:`Autoscaler`) owns the messy parts: building
  snapshots from live telemetry, spawning replicas (with a configurable
  *pre-warm pool* that hides process spawn latency), draining victims
  with zero lost requests, measuring cold starts, integrating
  replica-seconds (the cost metric the experiment gate charges), and
  parking idle models (*scale-to-zero*).

The policy is target-utilization with hysteresis and per-direction
cooldowns, the shape DeepServe and peers converge on: scale up when
``outstanding / serving_replicas`` breaches the target for
``hysteresis_up`` consecutive observations (or when shed fraction / p99
breach their own triggers), scale down only after a longer streak of
quiet *and* a longer cooldown, so a flash crowd's trailing edge never
triggers an immediate shrink that the next spike has to undo.

Cold start is modelled as the sum of its two real components: replica
spawn (thread construction vs ``multiprocessing`` fork/spawn + handshake)
and model re-replication (rendezvous hashing pulls ~1/N of placements
onto the newcomer).  Both are measured per scale-up into
``autoscaler.cold_start_ms.{spawned|prewarmed}`` histograms; a pre-warm
pool converts the spawn component into background work paid before the
spike.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, List, Optional, Tuple

from .clock import Clock, MonotonicClock

#: Decision actions.
SCALE_UP = "scale_up"
SCALE_DOWN = "scale_down"
HOLD = "hold"
ACTIONS = (SCALE_UP, SCALE_DOWN, HOLD)


@dataclass(frozen=True)
class AutoscalerConfig:
    """Knobs for the target-utilization policy and its actuator.

    The defaults are deliberately asymmetric: scaling up is cheap to
    undo and expensive to miss (shed requests), scaling down is the
    reverse, so up reacts on a short streak/cooldown and down on a long
    one.
    """

    #: fleet bounds the controller may never leave.
    min_replicas: int = 1
    max_replicas: int = 8
    #: utilization target: desired in-flight requests per serving replica.
    target_outstanding_per_replica: float = 4.0
    #: scale up when utilization >= target * this ratio.
    scale_up_ratio: float = 1.0
    #: scale down when utilization <= target * this ratio.
    scale_down_ratio: float = 0.3
    #: consecutive breaching observations required before acting.
    hysteresis_up: int = 2
    hysteresis_down: int = 5
    #: minimum seconds between actions, per direction.
    up_cooldown_s: float = 5.0
    down_cooldown_s: float = 30.0
    #: per-decision step bounds.
    max_step_up: int = 2
    max_step_down: int = 1
    #: immediate scale-up trigger: fraction of calls shed since the last
    #: observation (admission rejections / calls).
    shed_fraction_trigger: float = 0.05
    #: optional immediate scale-up trigger on cluster p99 latency (ms);
    #: ``None`` disables the latency trigger.
    p99_trigger_ms: Optional[float] = None
    #: replicas kept spawned-but-unregistered, ready to join instantly.
    prewarm_pool_size: int = 0
    #: park models unserved for this long (seconds); ``None`` disables
    #: scale-to-zero.
    idle_model_ttl_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.min_replicas < 1:
            raise ValueError("min_replicas must be >= 1")
        if self.max_replicas < self.min_replicas:
            raise ValueError("max_replicas must be >= min_replicas")
        if self.target_outstanding_per_replica <= 0:
            raise ValueError("target_outstanding_per_replica must be > 0")
        if not 0 < self.scale_down_ratio < self.scale_up_ratio:
            raise ValueError(
                "need 0 < scale_down_ratio < scale_up_ratio"
            )
        if self.hysteresis_up < 1 or self.hysteresis_down < 1:
            raise ValueError("hysteresis streaks must be >= 1")
        if self.up_cooldown_s < 0 or self.down_cooldown_s < 0:
            raise ValueError("cooldowns must be >= 0")
        if self.max_step_up < 1 or self.max_step_down < 1:
            raise ValueError("step bounds must be >= 1")
        if self.prewarm_pool_size < 0:
            raise ValueError("prewarm_pool_size must be >= 0")
        if self.idle_model_ttl_s is not None and self.idle_model_ttl_s <= 0:
            raise ValueError("idle_model_ttl_s must be > 0 when set")


@dataclass(frozen=True)
class LoadSnapshot:
    """One observation of cluster load — pure data, no live handles.

    ``replicas`` counts serving capacity (alive, not ejected, not
    draining); ``draining`` counts replicas on their way out, which still
    burn replica-seconds but take no new placements.
    """

    now: float
    replicas: int
    draining: int = 0
    outstanding: int = 0
    shed_fraction: float = 0.0
    p99_latency_ms: float = 0.0

    @property
    def utilization(self) -> float:
        """In-flight requests per serving replica."""
        return self.outstanding / max(1, self.replicas)


@dataclass(frozen=True)
class ControllerState:
    """The controller's memory between observations (immutable)."""

    high_streak: int = 0
    low_streak: int = 0
    #: timestamps of the last actions; ``-inf`` = never, so the first
    #: decision is never cooldown-blocked.
    last_scale_up_at: float = float("-inf")
    last_scale_down_at: float = float("-inf")


@dataclass(frozen=True)
class Decision:
    """What the policy wants done, and why (for the decision log)."""

    action: str
    amount: int
    reason: str
    utilization: float


def decide(
    snapshot: LoadSnapshot,
    state: ControllerState,
    config: AutoscalerConfig,
) -> Tuple[Decision, ControllerState]:
    """The pure scaling policy: ``(snapshot, state, config) -> decision``.

    Deterministic and side-effect free — time only enters through
    ``snapshot.now``, so a virtual clock exercises every cooldown and
    hysteresis path without sleeping.  Returns the decision and the
    successor state (streak counters updated, action timestamps stamped
    when an action fires).
    """
    util = snapshot.utilization
    target = config.target_outstanding_per_replica
    up_edge = target * config.scale_up_ratio
    down_edge = target * config.scale_down_ratio

    shed_hot = snapshot.shed_fraction >= config.shed_fraction_trigger
    p99_hot = (
        config.p99_trigger_ms is not None
        and snapshot.p99_latency_ms >= config.p99_trigger_ms
    )
    pressure = util >= up_edge or shed_hot or p99_hot
    quiet = util <= down_edge and not shed_hot and not p99_hot

    high = state.high_streak + 1 if pressure else 0
    low = state.low_streak + 1 if quiet else 0
    state = replace(state, high_streak=high, low_streak=low)

    def hold(reason: str) -> Tuple[Decision, ControllerState]:
        return Decision(HOLD, 0, reason, util), state

    if pressure:
        if snapshot.replicas + snapshot.draining >= config.max_replicas:
            return hold("pressure but at max_replicas")
        if high < config.hysteresis_up:
            return hold(
                f"pressure streak {high}/{config.hysteresis_up}"
            )
        since_up = snapshot.now - state.last_scale_up_at
        if since_up < config.up_cooldown_s:
            return hold(
                f"up-cooldown ({since_up:.3g}s < "
                f"{config.up_cooldown_s:.3g}s)"
            )
        # Size the step toward the utilization target, bounded.
        want = max(1, int(-(-snapshot.outstanding // target)) - snapshot.replicas)
        room = config.max_replicas - snapshot.replicas - snapshot.draining
        amount = max(1, min(want, config.max_step_up, room))
        reasons = []
        if util >= up_edge:
            reasons.append(f"utilization {util:.3g} >= {up_edge:.3g}")
        if shed_hot:
            reasons.append(
                f"shed {snapshot.shed_fraction:.3g} >= "
                f"{config.shed_fraction_trigger:.3g}"
            )
        if p99_hot:
            reasons.append(
                f"p99 {snapshot.p99_latency_ms:.3g}ms >= "
                f"{config.p99_trigger_ms:.3g}ms"
            )
        state = replace(
            state, high_streak=0, low_streak=0,
            last_scale_up_at=snapshot.now,
        )
        return Decision(SCALE_UP, amount, "; ".join(reasons), util), state

    if quiet:
        if snapshot.replicas <= config.min_replicas:
            return hold("quiet but at min_replicas")
        if low < config.hysteresis_down:
            return hold(
                f"quiet streak {low}/{config.hysteresis_down}"
            )
        last_action = max(state.last_scale_up_at, state.last_scale_down_at)
        since = snapshot.now - last_action
        if since < config.down_cooldown_s:
            return hold(
                f"down-cooldown ({since:.3g}s < "
                f"{config.down_cooldown_s:.3g}s)"
            )
        amount = max(
            1,
            min(
                config.max_step_down,
                snapshot.replicas - config.min_replicas,
            ),
        )
        state = replace(
            state, high_streak=0, low_streak=0,
            last_scale_down_at=snapshot.now,
        )
        return (
            Decision(
                SCALE_DOWN, amount,
                f"utilization {util:.3g} <= {down_edge:.3g}", util,
            ),
            state,
        )

    return hold("within band")


class Autoscaler:
    """Actuate :func:`decide` against a live :class:`ServiceRouter`.

    Call :meth:`step` periodically (the experiment does it once per
    trace step; production would do it from a control loop).  Each step:
    integrates replica-seconds since the last step, builds a
    :class:`LoadSnapshot` from router telemetry, runs the pure policy,
    and executes the decision — spawn-and-add for scale-up (pre-warm
    pool first), drain-and-remove for scale-down, plus idle-model
    parking when scale-to-zero is enabled.

    ``replica_factory`` is a ``(replica_id, index) -> replica`` callable;
    :func:`make_cluster` attaches a matching one to the router, so the
    common case is just ``Autoscaler(router, config)``.
    """

    def __init__(
        self,
        router,
        config: Optional[AutoscalerConfig] = None,
        *,
        clock: Optional[Clock] = None,
        replica_factory: Optional[Callable[[str, int], object]] = None,
    ) -> None:
        self.router = router
        self.config = config or AutoscalerConfig()
        self.clock = clock or getattr(router, "clock", None) or MonotonicClock()
        factory = replica_factory or getattr(router, "replica_factory", None)
        if factory is None:
            raise ValueError(
                "no replica_factory: pass one, or build the router with "
                "make_cluster()"
            )
        self._factory = factory
        self.state = ControllerState()
        self.decisions: List[Dict[str, object]] = []
        self._lock = threading.Lock()
        self._spawn_seq = itertools.count(1000)
        self._prewarm: List = []
        #: cost accounting: ∫ (active replicas + pre-warm pool) dt.
        self.replica_seconds = 0.0
        self._last_accounted: float = self.clock.now()
        self._last_calls = 0.0
        self._last_rejected = 0.0
        self._refill_prewarm()

    # ------------------------------------------------------------------
    # Telemetry in
    # ------------------------------------------------------------------
    def observe(self) -> LoadSnapshot:
        """Snapshot current load from router telemetry.

        Shed fraction is a *windowed* signal — rejections/calls since
        the previous observation — so a burst of shedding an hour ago
        does not keep the controller scaled up forever.
        """
        router = self.router
        draining = set(router.draining())
        serving = [
            rid for rid in router.active_replica_ids() if rid not in draining
        ]
        outstanding = 0
        for rid in serving:
            replica = router.replicas.get(rid)
            if replica is not None:
                outstanding += replica.outstanding

        counters = router.metrics.counters()
        calls = sum(
            v for k, v in counters.items() if k.startswith("router.calls.")
        )
        rejected = sum(
            v for k, v in counters.items() if k.startswith("router.rejected.")
        )
        d_calls = max(0.0, calls - self._last_calls)
        d_rejected = max(0.0, rejected - self._last_rejected)
        self._last_calls, self._last_rejected = calls, rejected
        shed = d_rejected / d_calls if d_calls > 0 else 0.0

        p99 = 0.0
        if self.config.p99_trigger_ms is not None:
            snap = router.cluster_snapshot()
            hist = snap.get("histograms", {}).get("replica.latency_ms")
            if hist:
                p99 = float(hist.get("p99", 0.0))

        return LoadSnapshot(
            now=self.clock.now(),
            replicas=len(serving),
            draining=len(draining),
            outstanding=outstanding,
            shed_fraction=shed,
            p99_latency_ms=p99,
        )

    # ------------------------------------------------------------------
    # Control loop
    # ------------------------------------------------------------------
    def step(self) -> Decision:
        """One control iteration: account → observe → decide → act."""
        with self._lock:
            self._account()
            snapshot = self.observe()
            decision, self.state = decide(snapshot, self.state, self.config)
            before = snapshot.replicas
            if decision.action == SCALE_UP:
                self.scale_up(decision.amount)
            elif decision.action == SCALE_DOWN:
                self.scale_down(decision.amount)
            if self.config.idle_model_ttl_s is not None:
                self._park_idle()
            self.decisions.append(
                {
                    "t": snapshot.now,
                    "action": decision.action,
                    "amount": decision.amount,
                    "reason": decision.reason,
                    "utilization": decision.utilization,
                    "replicas_before": before,
                    "replicas_after": len(
                        [
                            rid
                            for rid in self.router.active_replica_ids()
                            if rid not in set(self.router.draining())
                        ]
                    ),
                }
            )
            self.router.metrics.counter(
                f"autoscaler.decisions.{decision.action}"
            ).inc()
            return decision

    def _account(self) -> None:
        now = self.clock.now()
        dt = max(0.0, now - self._last_accounted)
        fleet = len(self.router.active_replica_ids()) + len(self._prewarm)
        self.replica_seconds += dt * fleet
        self._last_accounted = now

    def finalize(self) -> float:
        """Close the replica-seconds integral and drop the pre-warm pool."""
        with self._lock:
            self._account()
            for replica in self._prewarm:
                replica.shutdown()
            self._prewarm.clear()
            return self.replica_seconds

    # ------------------------------------------------------------------
    # Actuation
    # ------------------------------------------------------------------
    def scale_up(self, amount: int) -> List[str]:
        """Add ``amount`` replicas (pre-warmed first), measuring cold start.

        Cold start = join latency the *traffic* observes: replica
        acquisition (zero for a pre-warmed one, full spawn otherwise)
        plus registration and the ~1/N placement re-replication
        ``add_replica``/``rebalance`` perform.  Each join lands in
        ``autoscaler.cold_start_ms.{prewarmed|spawned}``.
        """
        added: List[str] = []
        for _ in range(max(0, amount)):
            start = time.perf_counter()
            if self._prewarm:
                replica, source = self._prewarm.pop(0), "prewarmed"
            else:
                replica, source = self._spawn(), "spawned"
            self.router.add_replica(replica)
            moved = self.router.rebalance()
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            self.router.metrics.histogram(
                f"autoscaler.cold_start_ms.{source}", lo=1e-3
            ).observe(elapsed_ms)
            self.router.metrics.counter(
                f"autoscaler.joins.{source}"
            ).inc()
            if moved.get("copies_installed"):
                self.router.metrics.counter(
                    "autoscaler.join_copies"
                ).inc(moved["copies_installed"])
            added.append(replica.replica_id)
        self._refill_prewarm()
        return added

    def scale_down(self, amount: int) -> List[str]:
        """Drain ``amount`` victims (least-loaded first), zero requests lost."""
        removed: List[str] = []
        for _ in range(max(0, amount)):
            victim = self._pick_victim()
            if victim is None:
                break
            try:
                self.router.drain_replica(victim)
            except (KeyError, ValueError):
                # Lost a race with a crash/ejection — the health plane
                # already handled it; nothing to undo.
                continue
            removed.append(victim)
        return removed

    def _pick_victim(self) -> Optional[str]:
        draining = set(self.router.draining())
        serving = [
            rid
            for rid in self.router.active_replica_ids()
            if rid not in draining
        ]
        if len(serving) <= self.config.min_replicas:
            return None
        placement = self.router.status()["placement"]
        load: Dict[str, Tuple[int, int]] = {}
        for rid in serving:
            replica = self.router.replicas.get(rid)
            if replica is None:
                continue
            models = sum(1 for holders in placement.values() if rid in holders)
            load[rid] = (replica.outstanding, models)
        if not load:
            return None
        return min(sorted(load), key=lambda rid: load[rid])

    def _spawn(self):
        while True:
            rid = f"as{next(self._spawn_seq)}"
            if rid not in self.router.replicas:
                return self._factory(rid, int(rid[2:]))

    def _refill_prewarm(self) -> None:
        while len(self._prewarm) < self.config.prewarm_pool_size:
            start = time.perf_counter()
            self._prewarm.append(self._spawn())
            self.router.metrics.histogram(
                "autoscaler.prewarm_spawn_ms", lo=1e-3
            ).observe((time.perf_counter() - start) * 1000.0)

    def _park_idle(self) -> None:
        ttl = self.config.idle_model_ttl_s
        for gid in self.router.idle_models(ttl):
            try:
                if self.router.park_model(gid):
                    self.router.metrics.counter(
                        "autoscaler.models_parked"
                    ).inc()
            except Exception:
                # No live holder to fetch from (mid-failover) — the
                # model is someone else's problem right now, not idle
                # capacity to reclaim.
                continue

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def cost_snapshot(self) -> Dict[str, float]:
        with self._lock:
            self._account()
            return {
                "replica_seconds": self.replica_seconds,
                "prewarm_pool": float(len(self._prewarm)),
            }

    def decision_log(self) -> List[Dict[str, object]]:
        with self._lock:
            return list(self.decisions)
