"""Shared-memory tensor arena: zero-copy ndarray transport between processes.

The process-backed serving tier (:mod:`repro.cluster.proc_replica`) keeps
its *control plane* on pickled messages over pipes, but ndarray payloads —
inference inputs, classify windows, response tensors — would pay two full
serialize/deserialize copies per hop if they rode along.  Instead they
travel through a :class:`ShmArena`: one ``multiprocessing.shared_memory``
segment per direction, carved into blocks by a small ref-counted
allocator.  The pickled message then carries only a tiny
:class:`ShmArrayRef` (block index + generation tag + the
:class:`~repro.nn.serialization.NdarrayHeader`), and the receiving side
maps the block back into a typed numpy view.

Design rules that keep this safe without cross-process locks:

- **Single-writer arenas.**  Every arena has exactly one *owner* process
  that allocates and frees; the peer only attaches and reads.  Frees for
  blocks the peer consumed are requested over the message channel, so the
  allocator metadata is only ever mutated under the owner's in-process
  lock.  A SIGKILL'd peer therefore can never strand the allocator in a
  half-updated state — the owner reclaims its in-flight blocks and the
  arena stays coherent.
- **Generation tags.**  Each allocation stamps the block's table entry
  with a fresh generation.  A reader validates the tag (and a nonzero
  refcount) before *and after* copying, so a stale ref — use-after-free,
  a replayed message, or scribbled metadata — raises a typed
  :class:`ShmStaleBlockError` instead of silently yielding garbage.
- **Leak accounting.**  ``leak_report()`` lists every live block;
  shutdown paths assert it is empty (``make cluster`` and the CI smoke
  job gate on zero leaked blocks, including after a replica kill).

Layout of the segment::

    [ block table: max_blocks x (offset, size, generation, refcount) u64 ]
    [ data region ......................................................]
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from multiprocessing import shared_memory

from ..faults import TransientServiceError
from ..nn.serialization import NdarrayHeader, ndarray_from_buffer, ndarray_header

#: Allocation granularity; cache-line-ish so adjacent blocks don't share.
_ALIGN = 64

#: Table entry layout (all uint64): offset, size, generation, refcount.
_FIELDS = 4
_ENTRY_BYTES = _FIELDS * 8

_OFFSET, _SIZE, _GENERATION, _REFCOUNT = range(_FIELDS)


class ShmError(RuntimeError):
    """Base class of shared-memory arena failures."""


class ShmAllocationError(ShmError):
    """The arena cannot hold this payload (full table or no free span).

    Callers treat this as a soft failure: the transport falls back to
    pickling the array inline, so an oversized payload costs speed, not
    correctness.
    """


class ShmStaleBlockError(ShmError, TransientServiceError):
    """A block reference failed validation (generation/refcount mismatch).

    Use-after-free, a replayed message or corrupted metadata all land
    here.  It subclasses :class:`~repro.faults.TransientServiceError`
    because a router should treat the payload as lost in transit and
    retry on another holder, exactly like a dropped response.
    """


class ShmLeakError(ShmError):
    """Live blocks survived a shutdown that promised to release them."""


@dataclass(frozen=True)
class ShmArrayRef:
    """Pickled stand-in for an ndarray riding through an arena."""

    arena: str
    index: int
    generation: int
    header: NdarrayHeader


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment.

    ``multiprocessing`` children share the parent's ``resource_tracker``
    process, so the attach-side registration is a set-add no-op and the
    segment's lifetime stays with whoever :meth:`ShmArena.destroy`\\ s it
    (the parent, by protocol — so a SIGKILL'd child can never orphan an
    OS segment, and never tears one out from under the parent either).
    """
    return shared_memory.SharedMemory(name=name)


class ShmArena:
    """One shared-memory segment with a ref-counted block allocator.

    Create with :meth:`create` in the owner process; the peer calls
    :meth:`attach` with the arena's ``name``.  Only the owner may
    allocate, ``incref`` or ``decref``; both sides may :meth:`read_array`.
    """

    def __init__(
        self,
        segment: shared_memory.SharedMemory,
        *,
        owner: bool,
        max_blocks: int,
    ) -> None:
        self._segment = segment
        self._owner = owner
        self._max_blocks = max_blocks
        self._table = np.ndarray(
            (max_blocks, _FIELDS),
            dtype=np.uint64,
            buffer=segment.buf[: max_blocks * _ENTRY_BYTES],
        )
        self._data_start = max_blocks * _ENTRY_BYTES
        self._capacity = segment.size - self._data_start
        self._lock = threading.Lock()
        self._closed = False
        #: whether this handle created the OS segment (and may unlink it);
        #: distinct from the allocator role (``owner``).
        self._creator = False
        if owner:
            self._table[:] = 0
            self._free_spans: List[Tuple[int, int]] = [(0, self._capacity)]
            self._free_indices: List[int] = list(range(max_blocks - 1, -1, -1))
            self._next_generation = 1

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls,
        capacity_bytes: int = 8 << 20,
        max_blocks: int = 256,
        name: Optional[str] = None,
        owner: bool = True,
    ) -> "ShmArena":
        """Create the OS segment; with ``owner=False`` only zero the table.

        The serving protocol has the *parent* create every segment (so it
        can always unlink them, even after killing a child) while the
        allocator role for the child→parent direction is taken by the
        child via :meth:`adopt`.
        """
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if max_blocks < 1:
            raise ValueError("max_blocks must be >= 1")
        total = max_blocks * _ENTRY_BYTES + capacity_bytes
        segment = shared_memory.SharedMemory(
            name=name, create=True, size=total
        )
        arena = cls(segment, owner=True, max_blocks=max_blocks)
        arena._creator = True
        if not owner:
            arena._owner = False
        return arena

    @classmethod
    def attach(cls, name: str, max_blocks: int = 256) -> "ShmArena":
        """Attach as a reader (no allocator rights)."""
        return cls(_attach_segment(name), owner=False, max_blocks=max_blocks)

    @classmethod
    def adopt(cls, name: str, max_blocks: int = 256) -> "ShmArena":
        """Attach as the allocator-owner of a freshly created segment.

        Must happen before any allocation in the arena: adoption resets
        the block table and free lists.  This is how a child process
        takes the single-writer role for its response arena while the
        parent retains segment (unlink) ownership.
        """
        segment = _attach_segment(name)
        return cls(segment, owner=True, max_blocks=max_blocks)

    @property
    def name(self) -> str:
        return self._segment.name

    @property
    def capacity_bytes(self) -> int:
        return self._capacity

    @property
    def is_owner(self) -> bool:
        return self._owner

    def close(self) -> None:
        """Detach from the segment (both sides; idempotent)."""
        if self._closed:
            return
        self._closed = True
        # Views into the buffer must die before the mmap can close.
        self._table = None
        self._segment.close()

    def destroy(self) -> None:
        """Creator-side teardown: detach and unlink the OS segment."""
        if not self._creator:
            raise ShmError("only the arena's creator may destroy it")
        self.close()
        try:
            self._segment.unlink()
        except FileNotFoundError:  # pragma: no cover - double destroy
            pass

    # ------------------------------------------------------------------
    # Allocation (owner only)
    # ------------------------------------------------------------------
    def _require_owner(self) -> None:
        if not self._owner:
            raise ShmError("only the arena owner may allocate or free")
        if self._closed:
            raise ShmError("arena is closed")

    def alloc(self, nbytes: int) -> Tuple[int, int]:
        """Reserve a block of at least ``nbytes``; returns (index, generation)."""
        self._require_owner()
        want = max(_ALIGN, (max(1, nbytes) + _ALIGN - 1) // _ALIGN * _ALIGN)
        with self._lock:
            if not self._free_indices:
                raise ShmAllocationError(
                    f"arena {self.name!r}: all {self._max_blocks} block "
                    "table entries are live"
                )
            for i, (offset, size) in enumerate(self._free_spans):
                if size >= want:
                    break
            else:
                raise ShmAllocationError(
                    f"arena {self.name!r}: no free span of {want} bytes "
                    f"({self._capacity} total)"
                )
            if size == want:
                self._free_spans.pop(i)
            else:
                self._free_spans[i] = (offset + want, size - want)
            index = self._free_indices.pop()
            generation = self._next_generation
            self._next_generation += 1
            self._table[index] = (offset, want, generation, 1)
            return index, generation

    def _validated_entry(self, index: int, generation: int) -> Tuple[int, int]:
        if self._closed:
            raise ShmError("arena is closed")
        if not 0 <= index < self._max_blocks:
            raise ShmStaleBlockError(
                f"arena {self.name!r}: block index {index} out of range"
            )
        entry = self._table[index]
        if int(entry[_GENERATION]) != generation or int(entry[_REFCOUNT]) == 0:
            raise ShmStaleBlockError(
                f"arena {self.name!r}: block {index} generation "
                f"{int(entry[_GENERATION])} (refcount {int(entry[_REFCOUNT])}) "
                f"does not match ref generation {generation} — stale or "
                "corrupted block"
            )
        return int(entry[_OFFSET]), int(entry[_SIZE])

    def incref(self, index: int, generation: int) -> None:
        self._require_owner()
        with self._lock:
            self._validated_entry(index, generation)
            self._table[index, _REFCOUNT] += 1

    def decref(self, index: int, generation: int) -> None:
        """Drop one reference; the last one frees the block."""
        self._require_owner()
        with self._lock:
            self._validated_entry(index, generation)
            self._table[index, _REFCOUNT] -= 1
            if int(self._table[index, _REFCOUNT]) > 0:
                return
            offset = int(self._table[index, _OFFSET])
            size = int(self._table[index, _SIZE])
            self._table[index] = 0
            self._free_indices.append(index)
            self._release_span(offset, size)

    def _release_span(self, offset: int, size: int) -> None:
        """Insert a span back into the free list, coalescing neighbours."""
        spans = self._free_spans
        lo, hi = 0, len(spans)
        while lo < hi:
            mid = (lo + hi) // 2
            if spans[mid][0] < offset:
                lo = mid + 1
            else:
                hi = mid
        spans.insert(lo, (offset, size))
        # Coalesce with the span after, then the one before.
        if lo + 1 < len(spans) and offset + size == spans[lo + 1][0]:
            spans[lo] = (offset, size + spans[lo + 1][1])
            spans.pop(lo + 1)
        if lo > 0 and spans[lo - 1][0] + spans[lo - 1][1] == offset:
            merged = (spans[lo - 1][0], spans[lo - 1][1] + spans[lo][1])
            spans[lo - 1] = merged
            spans.pop(lo)

    # ------------------------------------------------------------------
    # Array transport
    # ------------------------------------------------------------------
    def put_array(self, array: np.ndarray) -> ShmArrayRef:
        """Copy ``array`` into a fresh block; returns its pickled-safe ref."""
        # Header first: ``ascontiguousarray`` promotes 0-d arrays to 1-d,
        # which would silently change the round-tripped shape.
        header = ndarray_header(np.asarray(array))
        array = np.ascontiguousarray(array)
        index, generation = self.alloc(header.nbytes)
        offset = int(self._table[index, _OFFSET])
        if header.nbytes:
            dst = self._segment.buf[
                self._data_start + offset : self._data_start + offset + header.nbytes
            ]
            dst[:] = array.view(np.uint8).reshape(-1).data
        return ShmArrayRef(
            arena=self.name, index=index, generation=generation, header=header
        )

    def read_array(self, ref: ShmArrayRef, *, copy: bool = True) -> np.ndarray:
        """Materialize the array a ref points at.

        The generation tag is validated before *and after* the bytes are
        read, so a block freed (or corrupted) mid-read raises
        :class:`ShmStaleBlockError` rather than returning torn data.
        With ``copy=False`` the result is a read-only zero-copy view whose
        lifetime is bounded by the block's refcount — retainers must copy.
        """
        offset, size = self._validated_entry(ref.index, ref.generation)
        if ref.header.nbytes > size:
            raise ShmStaleBlockError(
                f"arena {self.name!r}: block {ref.index} holds {size} bytes, "
                f"ref header wants {ref.header.nbytes}"
            )
        view = self._segment.buf[
            self._data_start + offset : self._data_start + offset + ref.header.nbytes
        ]
        array = ndarray_from_buffer(view, ref.header, copy=copy)
        self._validated_entry(ref.index, ref.generation)
        return array

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def live_blocks(self) -> List[Dict[str, int]]:
        """Every block with a nonzero refcount (the leak report)."""
        if self._closed:
            return []
        out = []
        for index in range(self._max_blocks):
            refcount = int(self._table[index, _REFCOUNT])
            if refcount:
                out.append(
                    {
                        "index": index,
                        "generation": int(self._table[index, _GENERATION]),
                        "size": int(self._table[index, _SIZE]),
                        "refcount": refcount,
                    }
                )
        return out

    def leak_report(self) -> List[Dict[str, int]]:
        return self.live_blocks()

    def assert_no_leaks(self) -> None:
        leaked = self.live_blocks()
        if leaked:
            raise ShmLeakError(
                f"arena {self.name!r} leaked {len(leaked)} block(s): {leaked}"
            )

    def free_bytes(self) -> int:
        if not self._owner:
            raise ShmError("free-space accounting lives with the owner")
        with self._lock:
            return sum(size for _, size in self._free_spans)

    # Test helper: deliberately invalidate a block's generation tag, the
    # chaos suite's model of metadata corruption in shared memory.
    def corrupt_generation(self, index: int) -> None:
        self._table[index, _GENERATION] = np.uint64(
            int(self._table[index, _GENERATION]) ^ 0xDEAD
        )
