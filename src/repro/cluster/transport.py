"""Wire protocol of the process-backed replica: control messages + shm refs.

Everything crossing the process boundary is one of the small picklable
message dataclasses below, sent over ``multiprocessing`` pipes.  The
*payloads* (request/response dataclasses of :mod:`repro.service.messages`)
ride inside them — but before a payload is pickled, its top-level ndarray
fields above :data:`MIN_SHM_BYTES` are swapped for
:class:`~repro.cluster.shm.ShmArrayRef` stand-ins by :func:`encode_payload`,
with the bytes travelling through the :class:`~repro.cluster.shm.ShmArena`
instead of the pipe.  :func:`decode_payload` reverses the swap on the
receiving side.

An array that cannot be offloaded (arena full, exotic dtype) stays inline
in the pickle — a *fallback*, never a failure; callers can count these
via the ``fallbacks`` out-parameter to watch transport efficiency.
"""

from __future__ import annotations

import copy
import dataclasses
import pickle
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

import numpy as np

from ..faults import TransientServiceError
from .shm import ShmAllocationError, ShmArena, ShmArrayRef

#: Arrays smaller than this are cheaper to pickle inline than to round
#: through the arena (allocator bookkeeping + a table entry each).
MIN_SHM_BYTES = 256


@dataclass
class CallMsg:
    """One endpoint invocation, parent → child."""

    seq: int
    endpoint: str
    payload: Any


@dataclass
class ResultMsg:
    """The answer to one :class:`CallMsg`, child → parent."""

    seq: int
    ok: bool
    payload: Any = None
    error: Optional[BaseException] = None


@dataclass
class ReleaseMsg:
    """Parent → child: the parent consumed the response of ``seq``; the
    child (which owns the response arena) may free its blocks."""

    seq: int


@dataclass
class StopMsg:
    """Parent → child: drain releases queued ahead of this, leak-check,
    answer with a :class:`ByeMsg`, exit 0."""


@dataclass
class ByeMsg:
    """Child → parent: clean-shutdown acknowledgement, leak report and
    the child's final metrics snapshot (its last chance to ship one)."""

    leaked_blocks: int
    leak_report: List[dict]
    metrics: Any = None


@dataclass
class CtrlMsg:
    """One control-plane operation, parent → child (answered in order)."""

    ctrl_id: int
    op: str
    args: Tuple = ()


@dataclass
class CtrlReply:
    ctrl_id: int
    ok: bool
    value: Any = None
    error: Optional[BaseException] = None


def safe_exception(error: BaseException) -> BaseException:
    """An exception guaranteed to survive pickling.

    Most exceptions round-trip fine; one that does not (a closure in its
    state, a broken ``__reduce__``) is replaced by a typed transient
    error carrying its repr, so the parent still fails the call loudly
    instead of the pipe dying mid-message.
    """
    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:
        return TransientServiceError(
            f"unpicklable {type(error).__name__} crossing the replica "
            f"boundary: {error!r}"
        )


def encode_payload(
    obj: Any,
    arena: Optional[ShmArena],
    *,
    min_bytes: int = MIN_SHM_BYTES,
    fallbacks: Optional[List[str]] = None,
) -> Tuple[Any, List[ShmArrayRef]]:
    """Swap large ndarray fields of a dataclass for arena refs.

    Returns ``(encoded, refs)``; ``refs`` are the blocks the *caller* is
    responsible for releasing once the peer has consumed the message.
    The original object is never mutated — a shallow clone carries the
    refs, so request dataclasses stay usable after submission (retries
    re-encode from the pristine original).
    """
    refs: List[ShmArrayRef] = []
    if arena is None or not dataclasses.is_dataclass(obj) or isinstance(obj, type):
        return obj, refs
    replaced = {}
    for field in dataclasses.fields(obj):
        value = getattr(obj, field.name, None)
        if not isinstance(value, np.ndarray) or value.nbytes < min_bytes:
            continue
        try:
            ref = arena.put_array(value)
        except (ShmAllocationError, ValueError):
            if fallbacks is not None:
                fallbacks.append(field.name)
            continue
        replaced[field.name] = ref
        refs.append(ref)
    if not replaced:
        return obj, refs
    clone = copy.copy(obj)
    for name, ref in replaced.items():
        # Bypass __init__/__post_init__: validation already ran on the
        # original, and it would reject the ref stand-ins.
        object.__setattr__(clone, name, ref)
    return clone, refs


def decode_payload(obj: Any, arena: Optional[ShmArena], *, copy_arrays: bool = True) -> Any:
    """Materialize every :class:`ShmArrayRef` field back into an ndarray.

    ``copy_arrays=True`` (the default) copies bytes out of the arena so
    the result's lifetime is decoupled from the block's — required
    whenever the decoded object may outlive the call (requests retained
    in a registry, responses returned to callers).  Raises
    :class:`~repro.cluster.shm.ShmStaleBlockError` on a stale/corrupt ref.
    """
    if arena is None or not dataclasses.is_dataclass(obj) or isinstance(obj, type):
        return obj
    replaced = {}
    for field in dataclasses.fields(obj):
        value = getattr(obj, field.name, None)
        if isinstance(value, ShmArrayRef):
            replaced[field.name] = arena.read_array(value, copy=copy_arrays)
    if not replaced:
        return obj
    clone = copy.copy(obj)
    for name, array in replaced.items():
        object.__setattr__(clone, name, array)
    return clone
