"""Injectable time for the cluster tier — the autoscaler's test harness.

Every time-dependent decision in the autoscaler (cooldowns, hysteresis
windows, cold-start measurement, idle-model TTLs) reads time through a
:class:`Clock` instead of calling :mod:`time` directly.  Production code
gets :class:`MonotonicClock`; tests get :class:`VirtualClock`, where time
only moves when the test says so — every scaling decision becomes a pure
function of (snapshot, config, virtual now) and the whole policy suite
runs without a single real sleep.

:class:`VirtualClock` is also a drop-in ``clock=`` callable for the
pieces that already take one (:class:`~repro.faults.CircuitBreaker`,
:class:`~repro.admission.TokenBucket`): calling the instance returns
``now()``.

:func:`wait_until` is the bounded-polling companion for conditions that
*do* involve real concurrency (a child process dying, a watchdog
respawning).  It polls through the clock, so under a virtual clock the
"waiting" is deterministic time-stepping rather than wall-clock sleeping.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional


class Clock:
    """The minimal time surface the cluster tier depends on."""

    def now(self) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    def sleep(self, seconds: float) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def __call__(self) -> float:
        """Alias for :meth:`now`, so a clock slots into every API that
        takes a bare ``clock: Callable[[], float]``."""
        return self.now()


class MonotonicClock(Clock):
    """Real time: ``time.monotonic`` + ``time.sleep``."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class VirtualClock(Clock):
    """Deterministic time under test control.

    ``now()`` returns the virtual timestamp; :meth:`advance` moves it
    forward.  :meth:`sleep` *advances* time instead of blocking, so code
    written against the :class:`Clock` interface (bounded polls, retry
    backoffs) terminates instantly and deterministically under test.
    Thread-safe, and monotone by construction — :meth:`advance` rejects
    negative steps.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward by ``seconds``; returns the new now."""
        if seconds < 0:
            raise ValueError("a clock cannot run backwards")
        with self._lock:
            self._now += seconds
            return self._now

    def sleep(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        self.advance(seconds)


def wait_until(
    predicate: Callable[[], bool],
    timeout: float = 15.0,
    interval: float = 0.05,
    clock: Optional[Clock] = None,
) -> bool:
    """Poll ``predicate`` until true or ``timeout`` elapses on ``clock``.

    The one sanctioned replacement for ad-hoc ``time.sleep`` loops in
    tests: the wait is *bounded* (never a bare sleep whose duration was
    tuned to a machine) and clock-injectable (a virtual clock makes the
    poll a deterministic time-step loop).  Returns the predicate's final
    value, so callers can ``assert wait_until(...)``.
    """
    clock = clock or MonotonicClock()
    deadline = clock.now() + timeout
    while clock.now() < deadline:
        if predicate():
            return True
        clock.sleep(interval)
    return predicate()
