"""repro.cluster — the replicated serving tier (scaling Eugene out).

The paper pitches deep intelligence as a *service*; one
:class:`~repro.service.EugeneService` instance is the unit of that
service, and this package is what turns N of them into one:

- :class:`ServiceReplica` — one service instance behind one worker
  thread, with fault-injection sites (``cluster.replica.call``,
  ``cluster.heartbeat``) that make crashes, partitions and lost
  responses deterministic chaos-test material;
- :class:`ProcessReplica` — the same replica contract on a real
  ``multiprocessing`` child with shared-memory tensor transport
  (:class:`ShmArena`): true multi-core serving, real crash faults
  (an injected crash is an actual ``kill()``), heartbeats as genuine
  liveness probes, and a leak-checked shm block allocator;
- :class:`ServiceRouter` — placement by rendezvous hashing with a
  configurable replication factor, pluggable balancing policies
  (round-robin / least-outstanding / utility-aware on the scheduler's
  GP confidence predictions), per-replica health from heartbeats and
  error/latency EWMAs, ejection + failover + re-replication, and a
  cluster-wide metrics view built on ``MetricsRegistry.merge``;
- :func:`make_cluster` — the one-liner the experiments and the CLI use.

The router mirrors the service's endpoint surface, so the existing
:class:`~repro.service.EugeneClient` (retries, circuit breakers,
idempotency keys) fronts a cluster unchanged::

    from repro.cluster import make_cluster
    from repro.service import EugeneClient

    with make_cluster(4, synthetic_work_s=0.002) as router:
        client = EugeneClient(router)
        response = client.train(inputs, labels, epochs=2)
        client.classify(response.model_id, inputs)

See ``docs/CLUSTER.md`` for the design notes and invariants.
"""

from .autoscaler import (
    ACTIONS,
    HOLD,
    SCALE_DOWN,
    SCALE_UP,
    Autoscaler,
    AutoscalerConfig,
    ControllerState,
    Decision,
    LoadSnapshot,
    decide,
)
from .clock import Clock, MonotonicClock, VirtualClock, wait_until
from .hashing import place, placement_score
from .health import (
    DOWN,
    HEALTHY,
    STATUS_RANK,
    SUSPECT,
    HealthConfig,
    ReplicaHealth,
)
from .proc_replica import ProcessReplica
from .replica import (
    CALL_SITE,
    HEARTBEAT_SITE,
    WORK_KINDS,
    WORK_SLEEP,
    WORK_SPIN,
    ReplicaDownError,
    ResponseLostError,
    ServiceReplica,
    synthetic_work,
)
from .router import (
    BACKENDS,
    LEAST_OUTSTANDING,
    POLICIES,
    PROCESS_BACKEND,
    ROUND_ROBIN,
    THREAD_BACKEND,
    UTILITY,
    NoHealthyReplicaError,
    RouterConfig,
    ServiceRouter,
    make_cluster,
    make_replica,
)
from .shm import (
    ShmAllocationError,
    ShmArena,
    ShmArrayRef,
    ShmError,
    ShmLeakError,
    ShmStaleBlockError,
)

__all__ = [
    "Autoscaler",
    "AutoscalerConfig",
    "ControllerState",
    "Decision",
    "LoadSnapshot",
    "decide",
    "SCALE_UP",
    "SCALE_DOWN",
    "HOLD",
    "ACTIONS",
    "Clock",
    "MonotonicClock",
    "VirtualClock",
    "wait_until",
    "place",
    "placement_score",
    "HealthConfig",
    "ReplicaHealth",
    "HEALTHY",
    "SUSPECT",
    "DOWN",
    "STATUS_RANK",
    "ServiceReplica",
    "ReplicaDownError",
    "ResponseLostError",
    "CALL_SITE",
    "HEARTBEAT_SITE",
    "ServiceRouter",
    "RouterConfig",
    "NoHealthyReplicaError",
    "make_cluster",
    "make_replica",
    "ROUND_ROBIN",
    "LEAST_OUTSTANDING",
    "UTILITY",
    "POLICIES",
    "ProcessReplica",
    "THREAD_BACKEND",
    "PROCESS_BACKEND",
    "BACKENDS",
    "WORK_SLEEP",
    "WORK_SPIN",
    "WORK_KINDS",
    "synthetic_work",
    "ShmArena",
    "ShmArrayRef",
    "ShmError",
    "ShmAllocationError",
    "ShmStaleBlockError",
    "ShmLeakError",
]
