"""The replicated serving tier: N replicas behind one routing facade.

:class:`ServiceRouter` mirrors the :class:`~repro.service.EugeneService`
endpoint surface (request dataclass in, response dataclass out), so an
unchanged :class:`~repro.service.EugeneClient` can front a whole cluster.
Behind that surface it owns four concerns:

**Placement.**  Every model gets a router-global id (``g1``, ``g2``, …)
and lives on ``replication_factor`` replicas chosen by rendezvous
hashing (:mod:`repro.cluster.hashing`).  Training runs on one placement
replica; the freshly registered entry is re-keyed from the replica's
local id to the global id and copied to the remaining holders.

**Balancing.**  Reads (classify / infer / profile / estimate / label)
go to one holder chosen by the configured policy — ``round-robin``,
``least-outstanding``, or ``utility`` (expected utility under the
model's own GP confidence predictor: a holder whose queue would eat the
request's latency budget scores by the earlier exit stage it could still
reach).  Healthy replicas are always preferred over suspect ones.

**Health & failover.**  Per-replica error/latency EWMAs (fed by every
routed call) and heartbeats (:meth:`ServiceRouter.tick`) drive a
three-state health judgment; a replica that crashes mid-call or misses
its heartbeat budget is ejected, its queued calls fail over to surviving
holders of the same model, and its placements are re-replicated from a
surviving copy to restore the replication factor.  Each replica sits
behind its own :class:`~repro.faults.CircuitBreaker`.

**Backpressure & dedup.**  An optional router-level
:class:`~repro.admission.AdmissionController` composes with per-replica
admission: the router gate runs first, and a replica-level
:class:`~repro.service.RejectedResponse` makes the router offer the call
to another holder before surfacing the rejection.  Mutating requests
carrying an idempotency key are deduped at the router too, so a client
retry that re-enters the router cannot re-run placement.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..admission import AdmissionController
from ..faults import CircuitBreaker, TransientServiceError
from ..service.messages import (
    CalibrateRequest,
    CalibrateResponse,
    ClassifyRequest,
    ClassifyResponse,
    DeepSenseTrainRequest,
    DeepSenseTrainResponse,
    DeleteRequest,
    DeleteResponse,
    EstimateRequest,
    EstimateResponse,
    EstimatorTrainRequest,
    EstimatorTrainResponse,
    InferRequest,
    InferResponse,
    LabelRequest,
    LabelResponse,
    ProfileRequest,
    ProfileResponse,
    ReduceRequest,
    ReduceResponse,
    RejectedResponse,
    TrainRequest,
    TrainResponse,
)
from ..service.model_registry import ModelEntry
from ..service.server import IdempotencyCache
from ..telemetry.metrics import BoundedLabels, MetricsRegistry
from .clock import Clock, MonotonicClock, wait_until
from .hashing import place
from .health import STATUS_RANK, HealthConfig, ReplicaHealth
from .proc_replica import ProcessReplica
from .replica import WORK_SLEEP, ReplicaDownError, ServiceReplica

ROUND_ROBIN = "round-robin"
LEAST_OUTSTANDING = "least-outstanding"
UTILITY = "utility"

POLICIES = frozenset({ROUND_ROBIN, LEAST_OUTSTANDING, UTILITY})

THREAD_BACKEND = "thread"
PROCESS_BACKEND = "process"
BACKENDS = frozenset({THREAD_BACKEND, PROCESS_BACKEND})


class NoHealthyReplicaError(TransientServiceError):
    """Every candidate replica is down, open-circuited or failed.

    A :class:`~repro.faults.TransientServiceError` on purpose: replicas
    recover and circuits close, so a client-side retry policy fronting
    the router is the right reaction.
    """


@dataclass(frozen=True)
class RouterConfig:
    """Routing knobs; defaults suit the in-process test cluster."""

    replication_factor: int = 2
    policy: str = LEAST_OUTSTANDING
    #: per-replica call budget; ``None`` waits forever (chaos tests that
    #: inject ``hang`` faults should always set one).
    call_timeout_s: Optional[float] = None
    health: HealthConfig = field(default_factory=HealthConfig)
    breaker_failure_threshold: int = 5
    breaker_cooldown_s: float = 0.05
    #: how long :meth:`ServiceRouter.drain_replica` waits for in-flight
    #: work to finish before removing the replica anyway.
    drain_timeout_s: float = 30.0
    drain_poll_interval_s: float = 0.005
    #: distinct tenant ids that get their own router metric series before
    #: novel tenants fold into the ``__other__`` overflow series.
    max_tenant_series: int = 256

    def __post_init__(self) -> None:
        if self.replication_factor < 1:
            raise ValueError("replication_factor must be >= 1")
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; choose from {sorted(POLICIES)}"
            )
        if self.call_timeout_s is not None and self.call_timeout_s <= 0:
            raise ValueError("call_timeout_s must be positive when given")
        if self.drain_timeout_s <= 0:
            raise ValueError("drain_timeout_s must be positive")
        if self.drain_poll_interval_s <= 0:
            raise ValueError("drain_poll_interval_s must be positive")
        if self.max_tenant_series < 1:
            raise ValueError("max_tenant_series must be >= 1")


class _RegistryView:
    """Read-only registry facade resolving global ids across replicas.

    Lets code written against ``service.registry`` (e.g.
    :class:`~repro.service.EdgeDevice` fetching its reduced model) work
    unchanged when ``service`` is a router.
    """

    def __init__(self, router: "ServiceRouter") -> None:
        self._router = router

    def get(self, model_id: str) -> ModelEntry:
        with self._router._lock:
            parked = self._router._parked.get(model_id)
        if parked is not None:
            return parked
        for rid in self._router.holders(model_id):
            replica = self._router.replicas.get(rid)
            if (
                replica is not None
                and replica.alive
                and replica.has_model(model_id)
            ):
                try:
                    return replica.fetch_entry(model_id)
                except (KeyError, TransientServiceError):
                    continue  # raced a delete or a death: try the next holder
        raise KeyError(f"unknown model id {model_id!r}")

    def __contains__(self, model_id: str) -> bool:
        with self._router._lock:
            return (
                model_id in self._router._placement
                or model_id in self._router._parked
            )

    def __len__(self) -> int:
        with self._router._lock:
            return len(self._router._placement) + len(self._router._parked)


class ServiceRouter:
    """Route the Eugene endpoint surface over N service replicas."""

    def __init__(
        self,
        replicas: Sequence[ServiceReplica],
        config: Optional[RouterConfig] = None,
        admission: Optional[AdmissionController] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        if not replicas:
            raise ValueError("a router needs at least one replica")
        ids = [r.replica_id for r in replicas]
        if len(set(ids)) != len(ids):
            raise ValueError("replica ids must be unique")
        self.config = config or RouterConfig()
        self.admission = admission
        self.clock = clock or MonotonicClock()
        self.replicas: Dict[str, ServiceReplica] = {
            r.replica_id: r for r in replicas
        }
        self.health: Dict[str, ReplicaHealth] = {
            rid: ReplicaHealth(rid, self.config.health) for rid in ids
        }
        self._breakers: Dict[str, CircuitBreaker] = {
            rid: self._make_breaker() for rid in ids
        }
        #: router-level telemetry (failovers, ejections, dedup hits, …).
        self.metrics = MetricsRegistry()
        self._lock = threading.RLock()
        self._placement: Dict[str, List[str]] = {}
        self._children: Dict[str, Set[str]] = {}
        self._parent: Dict[str, str] = {}
        self._ejected: Set[str] = set()
        self._draining: Set[str] = set()
        #: metrics of replicas that have left the cluster, folded in
        #: exactly once so ``cluster_snapshot`` totals stay monotone
        #: across add → drain → re-add of the same replica id.
        self._retired = MetricsRegistry()
        self._retired_replicas: Set[int] = set()
        #: scale-to-zero store: entries of parked (idle) models, restored
        #: on the next request that names them.
        self._parked: Dict[str, ModelEntry] = {}
        self._last_served: Dict[str, float] = {}
        self._ids = itertools.count(1)
        self._rr = itertools.count()
        self._dedup = IdempotencyCache()
        #: bounded label space for tenant-keyed router metrics — tenant
        #: ids are caller-controlled, so unbounded cardinality must land
        #: in the ``__other__`` overflow series, not the registry.
        self._tenant_labels = BoundedLabels(self.config.max_tenant_series)

    def _make_breaker(self) -> CircuitBreaker:
        return CircuitBreaker(
            failure_threshold=self.config.breaker_failure_threshold,
            cooldown_s=self.config.breaker_cooldown_s,
            clock=self.clock,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "ServiceRouter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    def shutdown(self) -> None:
        for replica in list(self.replicas.values()):
            replica.shutdown()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def registry(self) -> _RegistryView:
        return _RegistryView(self)

    def model_ids(self) -> List[str]:
        with self._lock:
            return sorted(set(self._placement) | set(self._parked))

    def holders(self, model_id: str) -> List[str]:
        """Replicas currently holding ``model_id`` (primary first)."""
        with self._lock:
            if model_id not in self._placement:
                raise KeyError(f"unknown model id {model_id!r}")
            return list(self._placement[model_id])

    def ejected(self) -> List[str]:
        with self._lock:
            return sorted(self._ejected)

    def draining(self) -> List[str]:
        with self._lock:
            return sorted(self._draining)

    def parked_ids(self) -> List[str]:
        """Models currently scaled to zero (no live copy, entry retained)."""
        with self._lock:
            return sorted(self._parked)

    def active_replica_ids(self) -> List[str]:
        """Replicas that count as serving capacity: alive, not ejected.

        Draining replicas are *included* — they still burn
        replica-seconds and still serve their in-flight work — which is
        exactly the accounting an autoscaler's cost metric wants.
        """
        with self._lock:
            ejected = set(self._ejected)
        return [
            rid
            for rid, replica in self.replicas.items()
            if rid not in ejected and replica.alive
        ]

    def status(self) -> Dict[str, object]:
        """One structured snapshot of the cluster's health and placement."""
        with self._lock:
            placement = {gid: list(h) for gid, h in self._placement.items()}
            ejected = sorted(self._ejected)
            draining = sorted(self._draining)
            parked = sorted(self._parked)
        per_replica = {}
        for rid, replica in list(self.replicas.items()):
            health = self.health.get(rid)
            snap = health.snapshot() if health is not None else {}
            snap["alive"] = replica.alive
            snap["outstanding"] = replica.outstanding
            snap["models"] = sum(1 for h in placement.values() if rid in h)
            snap["draining"] = rid in draining
            per_replica[rid] = snap
        return {
            "replicas": per_replica,
            "models": len(placement) + len(parked),
            "placement": placement,
            "ejected": ejected,
            "draining": draining,
            "parked": parked,
        }

    def cluster_snapshot(self) -> Dict[str, Dict]:
        """Merged metrics across every replica plus the router itself.

        Built on :meth:`~repro.telemetry.metrics.MetricsRegistry.merge`,
        so per-replica latency histograms aggregate into one cluster-wide
        distribution with exact bucket counts.  When any request carried
        a tenant id, the snapshot also carries a ``"tenants"`` section:
        per tenant (bounded label space; late novel tenants aggregate
        under ``__other__``) the call/served/rejected counts, the shed
        fraction, goodput (served fraction of calls), and the latency
        quantiles of its served requests; plus the admission controller's
        *exact* per-tenant accounting when a router controller is
        installed.
        """
        merged = MetricsRegistry()
        for replica in list(self.replicas.values()):
            # metrics_registry() captures each source registry in one
            # critical section (and, for process replicas, folds in the
            # freshest child snapshot), so a racing writer can never be
            # observed half-applied in the merged view.
            merged.merge(replica.metrics_registry())
        # Replicas that left the cluster (drained or replaced) live on
        # here: totals never move backwards under dynamic topology.
        merged.merge(self._retired)
        merged.merge(self.metrics)
        snap = merged.snapshot()
        tenants = self._tenant_summary(snap)
        if tenants:
            snap["tenants"] = tenants
        return snap

    def _tenant_summary(self, snap: Dict[str, Dict]) -> Dict[str, Dict]:
        """Fold tenant-labelled series into one per-tenant summary."""
        counters = snap["counters"]
        histograms = snap["histograms"]
        tenants: Dict[str, Dict] = {}
        prefix = "router.tenant.calls."
        for name, calls in counters.items():
            if not name.startswith(prefix):
                continue
            t = name[len(prefix):]
            served = counters.get(f"router.tenant.served.{t}", 0.0)
            rejected = counters.get(f"router.tenant.rejected.{t}", 0.0)
            entry: Dict[str, object] = {
                "calls": calls,
                "served": served,
                "rejected": rejected,
                "shed_fraction": rejected / calls if calls else 0.0,
                "goodput": served / calls if calls else 0.0,
            }
            latency = histograms.get(f"router.tenant.latency_ms.{t}")
            if latency is not None:
                entry["latency_ms"] = {
                    k: latency[k]
                    for k in ("p50", "p95", "p99", "mean", "count")
                    if k in latency
                }
            tenants[t] = entry
        if self.admission is not None:
            for t, stats in self.admission.tenant_stats().items():
                tenants.setdefault(t, {})["admission"] = stats
        return tenants

    # ------------------------------------------------------------------
    # Endpoint surface (mirrors EugeneService)
    # ------------------------------------------------------------------
    def train(self, request: TrainRequest) -> TrainResponse:
        return self._routed(
            "train", request, lambda: self._train_like("train", request)
        )

    def train_deepsense(
        self, request: DeepSenseTrainRequest
    ) -> DeepSenseTrainResponse:
        return self._routed(
            "train_deepsense",
            request,
            lambda: self._train_like("train_deepsense", request),
        )

    def train_estimator(
        self, request: EstimatorTrainRequest
    ) -> EstimatorTrainResponse:
        return self._routed(
            "train_estimator",
            request,
            lambda: self._train_like("train_estimator", request),
        )

    def reduce(self, request: ReduceRequest) -> ReduceResponse:
        return self._routed("reduce", request, lambda: self._reduce(request))

    def delete(self, request: DeleteRequest) -> DeleteResponse:
        return self._routed("delete", request, lambda: self._delete(request))

    def calibrate(self, request: CalibrateRequest) -> CalibrateResponse:
        return self._routed(
            "calibrate", request, lambda: self._calibrate(request)
        )

    def classify(self, request: ClassifyRequest) -> ClassifyResponse:
        return self._routed(
            "classify", request, lambda: self._read("classify", request)
        )

    def infer(self, request: InferRequest) -> InferResponse:
        return self._routed(
            "infer", request, lambda: self._read("infer", request)
        )

    def profile(self, request: ProfileRequest) -> ProfileResponse:
        return self._routed(
            "profile", request, lambda: self._read("profile", request)
        )

    def estimate(self, request: EstimateRequest) -> EstimateResponse:
        return self._routed(
            "estimate", request, lambda: self._read("estimate", request)
        )

    def label(self, request: LabelRequest) -> LabelResponse:
        def handler():
            response, _rid = self._dispatch(
                "label",
                request,
                lambda: self._ordered("label", self._routable_ids(), request),
            )
            return response

        return self._routed("label", request, handler)

    # ------------------------------------------------------------------
    # Cluster-wide model management
    # ------------------------------------------------------------------
    def register_model(
        self,
        name: str,
        model,
        *,
        kind: str = "full",
        train_set=None,
        predictor=None,
        class_map=None,
        parent_id: Optional[str] = None,
    ) -> str:
        """Install a pre-built model on its placement replicas.

        The out-of-band twin of ``train`` for experiments and tests that
        bring their own model; returns the global model id.
        """
        gid = self._next_id()
        entry = ModelEntry(
            model_id=gid,
            name=name,
            model=model,
            kind=kind,
            train_set=train_set,
            predictor=predictor,
            class_map=class_map,
            parent_id=parent_id,
        )
        desired = place(
            gid, self._routable_ids(), self.config.replication_factor
        )
        installed = []
        for rid in desired:
            try:
                self._install_on(rid, entry)
            except TransientServiceError as error:
                if isinstance(error, ReplicaDownError):
                    self._on_replica_down(rid, reason=str(error))
                continue
            installed.append(rid)
        if not installed:
            raise NoHealthyReplicaError(
                f"no replica could accept model {name!r}"
            )
        with self._lock:
            self._placement[gid] = installed
            if parent_id is not None:
                self._children.setdefault(parent_id, set()).add(gid)
                self._parent[gid] = parent_id
        self._touch(gid)
        return gid

    # ------------------------------------------------------------------
    # Health plane
    # ------------------------------------------------------------------
    def tick(self) -> Dict[str, object]:
        """One heartbeat round over every non-ejected replica.

        A replica that fails to answer accumulates missed beats; past
        ``health.max_missed_heartbeats`` it is ejected and its models
        re-replicated.  Returns :meth:`status` for convenience.
        """
        for rid, replica in list(self.replicas.items()):
            with self._lock:
                if rid in self._ejected:
                    continue
            if not replica.alive:
                # A corpse answers nothing ever again — no need to burn
                # the missed-beat budget on it like on a partition.
                self._on_replica_down(rid, reason="found dead on heartbeat")
                continue
            health = self.health.get(rid)
            if health is None:  # removed by a racing drain
                continue
            if replica.ping():
                health.heartbeat_ok()
            else:
                health.heartbeat_missed()
                if not health.routable:
                    self._on_replica_down(rid, reason="missed heartbeats")
        return self.status()

    def _on_replica_down(self, rid: str, reason: str) -> None:
        """Eject a dead/unreachable replica and restore replication."""
        with self._lock:
            if rid in self._ejected or rid not in self.replicas:
                return
            self._ejected.add(rid)
        health = self.health.get(rid)
        if health is not None:
            health.mark_down(reason)
        self.metrics.counter("router.ejections").inc()
        self._rereplicate_from(rid)

    def _rereplicate_from(self, dead_rid: str) -> None:
        with self._lock:
            affected = [
                (gid, list(holders))
                for gid, holders in self._placement.items()
                if dead_rid in holders
            ]
        survivors = self._routable_ids()
        for gid, holders in affected:
            sources = [
                h
                for h in holders
                if h in survivors and self.replicas[h].has_model(gid)
            ]
            if not sources:
                # Every copy died with its holders: the model is gone.
                self.metrics.counter("router.models_lost").inc()
                with self._lock:
                    self._placement.pop(gid, None)
                continue
            desired = place(
                gid, survivors, self.config.replication_factor
            )
            new_holders = list(dict.fromkeys(sources[:1] + desired))[
                : self.config.replication_factor
            ]
            for target in new_holders:
                if self.replicas[target].has_model(gid):
                    continue
                try:
                    self._copy_entry(sources[0], target, gid)
                except TransientServiceError as error:
                    if isinstance(error, ReplicaDownError):
                        self._on_replica_down(target, reason=str(error))
                    new_holders = [h for h in new_holders if h != target]
            with self._lock:
                self._placement[gid] = new_holders
            self.metrics.counter("router.rereplications").inc()

    # ------------------------------------------------------------------
    # Elastic topology (the autoscaler's surface)
    # ------------------------------------------------------------------
    def add_replica(self, replica) -> None:
        """Bring a new replica online (scale-up).

        The replica joins with fresh health and breaker state and starts
        receiving *new* placements immediately; call :meth:`rebalance`
        to also hand it its rendezvous share of existing models.  An id
        that previously served and left (ejected corpse, completed
        drain) may be reused: the departed replica's metrics were folded
        into the retired registry, so ``cluster_snapshot`` totals stay
        monotone across add → drain → re-add of the same id.
        """
        rid = replica.replica_id
        with self._lock:
            existing = self.replicas.get(rid)
            if (
                existing is not None
                and existing.alive
                and rid not in self._ejected
            ):
                raise ValueError(f"replica id {rid!r} is already active")
        if existing is not None:
            # Fold the predecessor's counters in before the new replica
            # takes over the id, so nothing is double- or under-counted.
            self._retire_metrics(existing)
        with self._lock:
            self.replicas[rid] = replica
            self.health[rid] = ReplicaHealth(rid, self.config.health)
            self._breakers[rid] = self._make_breaker()
            self._ejected.discard(rid)
            self._draining.discard(rid)
        self.metrics.counter("router.replicas_added").inc()

    def drain_replica(
        self, rid: str, timeout_s: Optional[float] = None
    ) -> Dict[str, object]:
        """Gracefully retire a replica (scale-down), losing nothing.

        Protocol: (1) mark the replica draining — it takes no new
        placements and other holders are preferred for reads; (2)
        re-replicate every model it holds onto the survivors, so each
        placement keeps its replication factor without it; (3) wait
        (bounded by ``timeout_s`` / ``RouterConfig.drain_timeout_s``)
        for its in-flight calls to finish; (4) fold its metrics into the
        retired registry, shut it down and remove it.  A replica that is
        killed mid-drain degrades to the crash path: its in-flight calls
        fail over to the survivors holding the copies step (2) already
        made, so the zero-lost invariant survives a SIGKILL.
        """
        with self._lock:
            if rid not in self.replicas:
                raise KeyError(f"unknown replica id {rid!r}")
            if rid in self._draining:
                raise ValueError(f"replica {rid!r} is already draining")
            survivors = [
                r
                for r in self.replicas
                if r != rid
                and r not in self._ejected
                and r not in self._draining
                and self.replicas[r].alive
            ]
            if not survivors:
                raise ValueError(
                    f"cannot drain {rid!r}: it is the last live replica"
                )
            self._draining.add(rid)
        self.metrics.counter("router.drains_started").inc()
        started = self.clock.now()
        replica = self.replicas[rid]
        moved = self._evacuate_models(rid)
        budget = (
            timeout_s if timeout_s is not None else self.config.drain_timeout_s
        )
        drained = wait_until(
            lambda: replica.outstanding == 0 or not replica.alive,
            timeout=budget,
            interval=self.config.drain_poll_interval_s,
            clock=self.clock,
        )
        died = not replica.alive
        self.remove_replica(rid)
        self.metrics.counter("router.drains_completed").inc()
        if died:
            self.metrics.counter("router.drains_died_midway").inc()
        return {
            "replica_id": rid,
            "models_moved": moved,
            "drained_clean": bool(drained) and not died,
            "died_mid_drain": died,
            "duration_s": self.clock.now() - started,
        }

    def remove_replica(self, rid: str) -> None:
        """Tear a replica out of the cluster (post-drain, or a corpse).

        Placements that still reference it fall back to their other
        holders; a model whose *only* live copy sits on the departing
        replica is parked (entry pulled out, restored on next use) so it
        survives the removal — only a copy on a corpse is truly lost.
        """
        replica = self.replicas.get(rid)
        if replica is None:
            return
        with self._lock:
            affected = [
                (gid, list(h))
                for gid, h in self._placement.items()
                if rid in h
            ]
        for gid, holders in affected:
            rest = [h for h in holders if h != rid]
            if rest:
                with self._lock:
                    if gid in self._placement:
                        self._placement[gid] = rest
                continue
            entry = None
            if replica.alive:
                try:
                    entry = replica.fetch_entry(gid)
                except (KeyError, TransientServiceError):
                    entry = None
            with self._lock:
                self._placement.pop(gid, None)
                if entry is not None:
                    self._parked[gid] = entry
            if entry is not None:
                self.metrics.counter("router.models_parked").inc()
            else:
                self.metrics.counter("router.models_lost").inc()
        self._retire_metrics(replica)
        replica.shutdown()
        with self._lock:
            self.replicas.pop(rid, None)
            self.health.pop(rid, None)
            self._breakers.pop(rid, None)
            self._draining.discard(rid)
            self._ejected.discard(rid)
        self.metrics.counter("router.replicas_removed").inc()

    def rebalance(self) -> Dict[str, int]:
        """Re-run rendezvous placement over the current routable fleet.

        Called after a scale-up so the newcomer receives its ~1/N share
        of existing models.  Copies are *installed* on new rendezvous
        holders but never eagerly dropped from displaced ones — an
        in-flight read routed by the old placement must still find its
        copy; stale copies cost memory, not correctness, and leave with
        the model's delete/park.
        """
        routable = self._routable_ids()
        installed = 0
        moved = 0
        if not routable:
            return {"models_moved": 0, "copies_installed": 0}
        with self._lock:
            items = [(gid, list(h)) for gid, h in self._placement.items()]
        for gid, holders in items:
            desired = place(gid, routable, self.config.replication_factor)
            sources = [
                h
                for h in holders
                if h in self.replicas
                and self.replicas[h].alive
                and self.replicas[h].has_model(gid)
            ]
            if not sources:
                continue
            new_holders = []
            for target in desired:
                if target in sources or self.replicas[target].has_model(gid):
                    new_holders.append(target)
                    continue
                try:
                    self._copy_entry(sources[0], target, gid)
                except TransientServiceError as error:
                    if isinstance(error, ReplicaDownError):
                        self._on_replica_down(target, reason=str(error))
                    continue
                installed += 1
                new_holders.append(target)
            if not new_holders:
                continue
            with self._lock:
                if (
                    gid in self._placement
                    and self._placement[gid] != new_holders
                ):
                    self._placement[gid] = new_holders
                    moved += 1
        self.metrics.counter("router.rebalances").inc()
        return {"models_moved": moved, "copies_installed": installed}

    def _evacuate_models(self, rid: str) -> int:
        """Step (2) of a drain: restore every placement's replication
        factor on the survivors before the replica leaves."""
        with self._lock:
            affected = [
                (gid, list(h))
                for gid, h in self._placement.items()
                if rid in h
            ]
        survivors = self._routable_ids()  # excludes the draining replica
        moved = 0
        for gid, holders in affected:
            if not survivors:
                break
            desired = place(gid, survivors, self.config.replication_factor)
            sources = [
                h
                for h in holders
                if h != rid
                and h in self.replicas
                and self.replicas[h].alive
                and self.replicas[h].has_model(gid)
            ]
            replica = self.replicas.get(rid)
            if replica is not None and replica.alive and replica.has_model(gid):
                # The draining replica itself is a valid (often the only)
                # copy source; it is still alive and still answering.
                sources.append(rid)
            installed = [
                h for h in desired if self.replicas[h].has_model(gid)
            ]
            for target in desired:
                if target in installed:
                    continue
                for source in sources:
                    try:
                        self._copy_entry(source, target, gid)
                    except TransientServiceError:
                        continue
                    installed.append(target)
                    break
            if installed:
                with self._lock:
                    if gid in self._placement:
                        self._placement[gid] = [
                            h for h in desired if h in installed
                        ]
                moved += 1
                self.metrics.counter("router.rereplications").inc()
            # else: no survivor could take a copy — keep the old
            # placement; remove_replica() will park the entry.
        return moved

    def _retire_metrics(self, replica) -> None:
        """Fold a departing replica's counters into the retired registry
        exactly once (keyed by object identity, so a re-added id never
        double-counts its predecessor)."""
        key = id(replica)
        with self._lock:
            if key in self._retired_replicas:
                return
            self._retired_replicas.add(key)
        try:
            self._retired.merge(replica.metrics_registry())
        except Exception:  # a corpse with a broken transport still retires
            self._retired.merge(replica.metrics)

    # ------------------------------------------------------------------
    # Scale-to-zero (idle-model parking)
    # ------------------------------------------------------------------
    def idle_models(
        self, ttl_s: float, now: Optional[float] = None
    ) -> List[str]:
        """Placed models that served nothing for the last ``ttl_s``."""
        now = self.clock.now() if now is None else now
        with self._lock:
            return sorted(
                gid
                for gid in self._placement
                if now - self._last_served.get(gid, 0.0) >= ttl_s
            )

    def park_model(self, gid: str) -> bool:
        """Scale a model to zero: keep its entry, drop every live copy.

        Returns ``False`` if it was already parked.  Intended for *idle*
        models (see :meth:`idle_models`); the next request that names the
        model pays the unpark cold start instead of a KeyError.
        """
        with self._lock:
            if gid in self._parked:
                return False
            if gid not in self._placement:
                raise KeyError(f"unknown model id {gid!r}")
            holders = list(self._placement[gid])
        entry = None
        for rid in holders:
            replica = self.replicas.get(rid)
            if replica is None or not replica.alive:
                continue
            try:
                entry = replica.fetch_entry(gid)
                break
            except (KeyError, TransientServiceError):
                continue
        if entry is None:
            raise NoHealthyReplicaError(f"no live copy of {gid!r} to park")
        with self._lock:
            self._parked[gid] = entry
            self._placement.pop(gid, None)
        for rid in holders:
            replica = self.replicas.get(rid)
            if replica is None or not replica.alive:
                continue
            try:
                replica.drop_model(gid, timeout=self.config.call_timeout_s)
            except (TransientServiceError, FutureTimeoutError):
                pass
        self.metrics.counter("router.models_parked").inc()
        return True

    def unpark_model(self, gid: str) -> List[str]:
        """Restore a parked model onto the current fleet (model-level
        cold start); returns the new holders."""
        with self._lock:
            entry = self._parked.get(gid)
            if entry is None:
                if gid in self._placement:  # raced another unpark: done
                    return list(self._placement[gid])
                raise KeyError(f"model {gid!r} is not parked")
        started = self.clock.now()
        desired = place(
            gid, self._routable_ids(), self.config.replication_factor
        )
        installed = []
        for rid in desired:
            try:
                self._install_on(rid, entry)
            except TransientServiceError as error:
                if isinstance(error, ReplicaDownError):
                    self._on_replica_down(rid, reason=str(error))
                continue
            installed.append(rid)
        if not installed:
            raise NoHealthyReplicaError(
                f"no replica could host unparked model {gid!r}"
            )
        now = self.clock.now()
        with self._lock:
            self._placement[gid] = installed
            self._parked.pop(gid, None)
            self._last_served[gid] = now
        self.metrics.counter("router.models_unparked").inc()
        self.metrics.histogram("router.unpark_ms", lo=1e-3).observe(
            (now - started) * 1000.0
        )
        return installed

    def _ensure_placed(self, model_id: Optional[str]) -> None:
        if model_id is None:
            return
        with self._lock:
            parked = model_id in self._parked
        if parked:
            self.unpark_model(model_id)

    def _touch(self, model_id: Optional[str]) -> None:
        if model_id is None:
            return
        now = self.clock.now()
        with self._lock:
            self._last_served[model_id] = now

    # ------------------------------------------------------------------
    # Routing internals
    # ------------------------------------------------------------------
    def _next_id(self) -> str:
        return f"g{next(self._ids)}"

    def _routable_ids(self) -> List[str]:
        """Replicas eligible for *new* placements and routed calls.

        Draining replicas are excluded: they keep serving what they
        already hold (see :meth:`_ordered`) but take on nothing new.
        """
        with self._lock:
            excluded = self._ejected | self._draining
        return [
            rid
            for rid, replica in list(self.replicas.items())
            if rid not in excluded
            and replica.alive
            and rid in self.health
            and self.health[rid].routable
        ]

    def _routed(
        self, endpoint: str, request, handler: Callable[[], object]
    ):
        """Common wrapper: router dedup + router admission gate.

        Tenant-carrying requests additionally feed per-tenant series
        (calls / rejections / latency) through the bounded label space,
        which is what :meth:`cluster_snapshot` summarises per tenant.
        """
        self.metrics.counter(f"router.calls.{endpoint}").inc()
        tenant = getattr(request, "tenant", None)
        tlabel = (
            self._tenant_labels.resolve(tenant) if tenant is not None else None
        )
        if tlabel is not None:
            self.metrics.counter(f"router.tenant.calls.{tlabel}").inc()
        key = getattr(request, "idempotency_key", None)
        if key is not None:
            cached = self._dedup.get(endpoint, key)
            if cached is not None:
                self.metrics.counter(
                    f"router.deduplicated.{endpoint}"
                ).inc()
                return cached
        gate: Optional[Tuple[str, Optional[str], Optional[str]]] = None
        if self.admission is not None:
            model_id = getattr(request, "model_id", None)
            decision = self.admission.admit(
                endpoint, model_id=model_id, tenant=tenant
            )
            if not decision.admitted:
                self.metrics.counter(f"router.rejected.{endpoint}").inc()
                if tlabel is not None:
                    self.metrics.counter(
                        f"router.tenant.rejected.{tlabel}"
                    ).inc()
                return RejectedResponse(
                    endpoint=endpoint,
                    reason=decision.reason,
                    retry_after_s=decision.retry_after_s,
                    message=(
                        f"router: {endpoint!r} rejected "
                        f"({decision.reason} on {decision.key!r}); retry "
                        f"after {decision.retry_after_s:.3g}s"
                    ),
                )
            gate = (endpoint, model_id, tenant)
        start = time.perf_counter() if tlabel is not None else 0.0
        try:
            response = handler()
        finally:
            if gate is not None:
                self.admission.release(
                    gate[0], model_id=gate[1], tenant=gate[2]
                )
        if tlabel is not None:
            if isinstance(response, RejectedResponse):
                self.metrics.counter(f"router.tenant.rejected.{tlabel}").inc()
            else:
                self.metrics.counter(f"router.tenant.served.{tlabel}").inc()
                self.metrics.histogram(
                    f"router.tenant.latency_ms.{tlabel}"
                ).observe(1e3 * (time.perf_counter() - start))
        if key is not None and not isinstance(response, RejectedResponse):
            self._dedup.put(endpoint, key, response)
        return response

    def _read(self, endpoint: str, request):
        # A parked (scaled-to-zero) model is restored on demand: the
        # first request after idleness pays the unpark cold start.
        self._ensure_placed(request.model_id)
        response, _rid = self._dispatch(
            endpoint,
            request,
            lambda: self._ordered(
                endpoint, self.holders(request.model_id), request
            ),
        )
        self._touch(request.model_id)
        return response

    def _dispatch(
        self,
        endpoint: str,
        request,
        candidates_fn: Callable[[], List[str]],
    ):
        """Offer the call to candidates in policy order until one serves.

        Returns ``(response, replica_id)``; a replica-level admission
        rejection is only surfaced once every candidate rejected or
        failed (``replica_id`` is then ``None``).  Candidates are
        recomputed every attempt, so an ejection triggered mid-loop
        (with its re-replication) immediately widens the options.
        """
        tried: Set[str] = set()
        rejected: Optional[RejectedResponse] = None
        last_error: Optional[Exception] = None
        for _ in range(max(1, len(self.replicas))):
            candidates = [
                rid for rid in candidates_fn() if rid not in tried
            ]
            if not candidates:
                break
            rid = candidates[0]
            tried.add(rid)
            breaker = self._breakers[rid]
            if not breaker.allow():
                continue
            replica = self.replicas[rid]
            health = self.health[rid]
            start = time.perf_counter()
            try:
                result = replica.call(
                    endpoint, request, timeout=self.config.call_timeout_s
                )
            except ReplicaDownError as error:
                breaker.record_failure()
                self.metrics.counter("router.failovers").inc()
                self._on_replica_down(rid, reason=str(error))
                last_error = error
                continue
            except FutureTimeoutError:
                breaker.record_failure()
                health.record_error()
                self.metrics.counter("router.failovers").inc()
                last_error = NoHealthyReplicaError(
                    f"replica {rid!r} exceeded the "
                    f"{self.config.call_timeout_s:g}s call budget"
                )
                continue
            except TransientServiceError as error:
                breaker.record_failure()
                health.record_error()
                self.metrics.counter("router.failovers").inc()
                last_error = error
                continue
            elapsed = time.perf_counter() - start
            if isinstance(result, RejectedResponse):
                # Backpressure is the replica protecting itself, not a
                # failure: keep its health intact, try another holder.
                health.record_success(elapsed)
                rejected = result
                continue
            breaker.record_success()
            health.record_success(elapsed)
            return result, rid
        if rejected is not None:
            return rejected, None
        raise NoHealthyReplicaError(
            f"no routable replica could serve {endpoint!r}"
            + (f" (last error: {last_error})" if last_error else "")
        )

    def _ordered(
        self, endpoint: str, candidate_ids: Sequence[str], request=None
    ) -> List[str]:
        # Observing a dead replica while selecting candidates is as good
        # as a failed call: condemn it now so its models re-replicate
        # instead of silently skipping it until the next heartbeat round.
        for rid in candidate_ids:
            replica = self.replicas.get(rid)
            if replica is not None and not replica.alive:
                self._on_replica_down(rid, reason="found dead while routing")
        with self._lock:
            ejected = set(self._ejected)
            draining = set(self._draining)
        alive = [
            rid
            for rid in candidate_ids
            if rid not in ejected
            and rid in self.replicas
            and self.replicas[rid].alive
            and rid in self.health
            and self.health[rid].routable
        ]
        # A draining replica is a last resort: traffic shifts to the
        # other holders, but until evacuation lands it can still serve
        # what only it holds — that is what makes drains lose nothing.
        preferred = [rid for rid in alive if rid not in draining]
        if preferred:
            alive = preferred
        if len(alive) <= 1:
            return alive
        if self.config.policy == ROUND_ROBIN:
            ranked = sorted(alive)
            start = next(self._rr) % len(ranked)
            rotated = ranked[start:] + ranked[:start]
            # Stable sort: healthy replicas first, rotation kept within
            # each health class.
            return sorted(
                rotated, key=lambda rid: STATUS_RANK[self.health[rid].status]
            )
        if self.config.policy == UTILITY:
            ordered = self._utility_ordered(alive, request)
            if ordered is not None:
                return ordered
        return sorted(
            alive,
            key=lambda rid: (
                STATUS_RANK[self.health[rid].status],
                self.replicas[rid].outstanding,
                rid,
            ),
        )

    def _utility_ordered(
        self, candidates: List[str], request
    ) -> Optional[List[str]]:
        """Deadline-aware ordering from the model's confidence curve.

        Expected wait on a replica is its queue depth times its latency
        EWMA; whatever remains of the request's latency budget bounds the
        exit stage the scheduler could still reach there, and the GP
        prior at that stage is the expected utility of sending the
        request its way.  Falls back to least-outstanding (``None``) when
        the request carries no budget or the model no predictor.
        """
        budget = getattr(request, "latency_constraint_s", None)
        model_id = getattr(request, "model_id", None)
        if budget is None or model_id is None:
            return None
        predictor = self._predictor_for(model_id)
        if predictor is None or not getattr(predictor, "num_stages", 0):
            return None
        stages = predictor.num_stages

        def expected_utility(rid: str) -> float:
            service_s = max(self.health[rid].latency_ewma_s, 1e-6)
            slack = budget - self.replicas[rid].outstanding * service_s
            if slack <= 0:
                return 0.0
            frac = min(1.0, slack / service_s)
            stage = max(0, min(stages - 1, int(round(frac * stages)) - 1))
            try:
                return float(predictor.prior(stage))
            except Exception:
                return 0.0

        return sorted(
            candidates,
            key=lambda rid: (
                STATUS_RANK[self.health[rid].status],
                -expected_utility(rid),
                self.replicas[rid].outstanding,
                rid,
            ),
        )

    def _predictor_for(self, model_id: str):
        with self._lock:
            holders = list(self._placement.get(model_id, ()))
        for rid in holders:
            replica = self.replicas.get(rid)
            if replica is None or not replica.alive:
                continue
            try:
                predictor = replica.predictor_for(model_id)
            except TransientServiceError:
                continue
            if predictor is not None:
                return predictor
        return None

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def _train_like(self, endpoint: str, request):
        gid = self._next_id()
        response, rid = self._dispatch(
            endpoint,
            request,
            lambda: self._ordered(
                endpoint,
                place(
                    gid,
                    self._routable_ids(),
                    self.config.replication_factor,
                ),
                request,
            ),
        )
        if rid is None:
            return response
        self._rekey(rid, response.model_id, gid)
        response.model_id = gid
        self._place_new(gid, rid)
        self._touch(gid)
        return response

    def _reduce(self, request: ReduceRequest):
        parent_gid = request.model_id
        response, rid = self._dispatch(
            "reduce",
            request,
            lambda: self._ordered("reduce", self.holders(parent_gid), request),
        )
        if rid is None:
            return response
        child_gid = self._next_id()
        self._rekey(rid, response.model_id, child_gid)
        response.model_id = child_gid
        self._place_new(child_gid, rid)
        with self._lock:
            self._children.setdefault(parent_gid, set()).add(child_gid)
            self._parent[child_gid] = parent_gid
        return response

    def _place_new(self, gid: str, serving_rid: str) -> None:
        """Record placement of a model just created on ``serving_rid``
        and copy it to the remaining rendezvous holders."""
        desired = place(
            gid, self._routable_ids(), self.config.replication_factor
        )
        holders = list(dict.fromkeys([serving_rid] + desired))[
            : self.config.replication_factor
        ]
        installed = [serving_rid]
        for target in holders[1:]:
            try:
                self._copy_entry(serving_rid, target, gid)
            except TransientServiceError as error:
                if isinstance(error, ReplicaDownError):
                    self._on_replica_down(target, reason=str(error))
                continue
            installed.append(target)
        with self._lock:
            self._placement[gid] = installed

    def _calibrate(self, request: CalibrateRequest):
        gid = request.model_id
        response, rid = self._dispatch(
            "calibrate",
            request,
            lambda: self._ordered("calibrate", self.holders(gid), request),
        )
        if rid is None:
            return response
        # Calibration rewrote the holder's entry in place (model alphas,
        # refitted predictor); refresh every other copy from it so the
        # replicas keep serving the same model.
        with self._lock:
            others = [h for h in self._placement.get(gid, ()) if h != rid]
        for target in others:
            try:
                self._copy_entry(rid, target, gid)
            except TransientServiceError as error:
                if isinstance(error, ReplicaDownError):
                    self._on_replica_down(target, reason=str(error))
        return response

    def _delete(self, request: DeleteRequest) -> DeleteResponse:
        gid = request.model_id
        with self._lock:
            if gid not in self._placement and gid not in self._parked:
                raise KeyError(f"unknown model id {gid!r}")
            children = sorted(self._children.get(gid, ()))
        if children and not request.cascade:
            ids = ", ".join(children)
            raise ValueError(
                f"model {gid!r} still has reduced children ({ids}); "
                "delete them first or pass cascade=True"
            )
        deleted: List[str] = []
        self._delete_subtree(gid, deleted)
        return DeleteResponse(deleted=tuple(deleted))

    def _delete_subtree(self, gid: str, out: List[str]) -> None:
        out.append(gid)
        with self._lock:
            children = sorted(self._children.get(gid, ()))
            holders = list(self._placement.get(gid, ()))
        for child in children:
            self._delete_subtree(child, out)
        # Deletion is a broadcast: every live holder drops its copy.  A
        # holder that dies mid-delete takes the copy with it, which is
        # the outcome we wanted anyway.
        for rid in holders:
            replica = self.replicas.get(rid)
            if replica is None or not replica.alive:
                continue
            try:
                replica.drop_model(gid, timeout=self.config.call_timeout_s)
            except (TransientServiceError, FutureTimeoutError):
                pass
        with self._lock:
            self._placement.pop(gid, None)
            self._parked.pop(gid, None)
            self._last_served.pop(gid, None)
            self._children.pop(gid, None)
            parent = self._parent.pop(gid, None)
            if parent is not None and parent in self._children:
                self._children[parent].discard(gid)

    # ------------------------------------------------------------------
    # Replication plumbing
    # ------------------------------------------------------------------
    def _rekey(self, rid: str, local_id: str, gid: str) -> None:
        """Re-key a freshly registered model to its global id, serialized
        with the replica's own traffic (worker thread or control pipe)."""
        self.replicas[rid].rekey(
            local_id, gid, timeout=self.config.call_timeout_s
        )

    def _copy_entry(self, source_rid: str, target_rid: str, gid: str) -> None:
        entry = self.replicas[source_rid].fetch_entry(gid)
        self._install_on(target_rid, entry)

    def _install_on(self, target_rid: str, entry: ModelEntry) -> None:
        # install_entry deep-copies (thread backend) or pickles (process
        # backend), so replicas never share mutable model state.
        self.replicas[target_rid].install_entry(
            entry, timeout=self.config.call_timeout_s
        )


def make_replica(
    replica_id: str,
    *,
    backend: str = THREAD_BACKEND,
    seed: int = 0,
    synthetic_work_s: float = 0.0,
    work_kind: str = WORK_SLEEP,
    start_method: Optional[str] = None,
    arena_bytes: int = 8 << 20,
    auto_respawn: bool = False,
):
    """Build one replica of the chosen backend — the unit of scale-up.

    ``make_cluster`` uses this for the initial fleet, and an
    :class:`~repro.cluster.autoscaler.Autoscaler` uses it (via the
    factory ``make_cluster`` attaches to the router) to spawn additional
    replicas online.
    """
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {sorted(BACKENDS)}"
        )
    if backend == PROCESS_BACKEND:
        return ProcessReplica(
            replica_id,
            seed=seed,
            synthetic_work_s=synthetic_work_s,
            work_kind=work_kind,
            start_method=start_method,
            arena_bytes=arena_bytes,
            auto_respawn=auto_respawn,
        )
    return ServiceReplica(
        replica_id,
        seed=seed,
        synthetic_work_s=synthetic_work_s,
        work_kind=work_kind,
    )


def make_cluster(
    num_replicas: int,
    *,
    backend: str = THREAD_BACKEND,
    seed: int = 0,
    synthetic_work_s: float = 0.0,
    work_kind: str = WORK_SLEEP,
    config: Optional[RouterConfig] = None,
    admission: Optional[AdmissionController] = None,
    start_method: Optional[str] = None,
    arena_bytes: int = 8 << 20,
    auto_respawn: bool = False,
    clock: Optional[Clock] = None,
) -> ServiceRouter:
    """Spin up ``num_replicas`` replicas behind a router.

    ``backend="thread"`` keeps every replica a worker thread in this
    process (cheap, GIL-shared); ``backend="process"`` gives each replica
    its own ``multiprocessing`` child with shared-memory tensor
    transport — real core-level parallelism, real crash faults.  The
    router's surface and invariants are identical for both.

    The returned router carries a ``replica_factory`` attribute — a
    ``(replica_id, index) -> replica`` callable reproducing these
    construction parameters — which is what the autoscaler uses to grow
    the fleet with identically-configured replicas.
    """
    if num_replicas < 1:
        raise ValueError("num_replicas must be >= 1")
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {sorted(BACKENDS)}"
        )

    def factory(replica_id: str, index: int):
        return make_replica(
            replica_id,
            backend=backend,
            seed=seed + index,
            synthetic_work_s=synthetic_work_s,
            work_kind=work_kind,
            start_method=start_method,
            arena_bytes=arena_bytes,
            auto_respawn=auto_respawn,
        )

    replicas = [factory(f"r{i}", i) for i in range(num_replicas)]
    router = ServiceRouter(
        replicas, config=config, admission=admission, clock=clock
    )
    router.replica_factory = factory
    router.backend = backend
    return router
