"""Per-replica health tracking: heartbeats plus error/latency EWMAs.

The router judges a replica on two independent signals:

- **Heartbeats** — :meth:`ReplicaHealth.heartbeat_missed` counts beats
  the replica failed to answer (see ``ServiceRouter.tick``); past the
  configured budget the replica is *down* and gets ejected.
- **Call outcomes** — every routed call feeds the latency EWMA (used by
  the utility-aware balancing policy) and the error EWMA; a replica whose
  error rate climbs past the threshold turns *suspect* and is only used
  when no healthy holder of the model remains, which is what lets a
  flaky-but-alive replica recover instead of being starved forever.

Status is derived, never stored: ``DOWN`` beats ``SUSPECT`` beats
``HEALTHY``, and a replica explicitly marked down (a crash observed
mid-call) stays down regardless of later signals.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, Optional

HEALTHY = "healthy"
SUSPECT = "suspect"
DOWN = "down"

#: Ordering used by routing policies: prefer lower ranks.
STATUS_RANK = {HEALTHY: 0, SUSPECT: 1, DOWN: 2}


@dataclass(frozen=True)
class HealthConfig:
    """Knobs of the health judgment.

    ``ewma_alpha`` weights the newest observation; ``latency_prior_s``
    seeds the latency EWMA so a replica that has never served still gets
    a finite expected wait in the utility policy.
    """

    ewma_alpha: float = 0.3
    error_rate_threshold: float = 0.5
    max_missed_heartbeats: int = 3
    latency_prior_s: float = 0.005

    def __post_init__(self) -> None:
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be in (0, 1]")
        if not 0.0 < self.error_rate_threshold <= 1.0:
            raise ValueError("error_rate_threshold must be in (0, 1]")
        if self.max_missed_heartbeats < 1:
            raise ValueError("max_missed_heartbeats must be >= 1")
        if self.latency_prior_s <= 0:
            raise ValueError("latency_prior_s must be positive")


class ReplicaHealth:
    """Thread-safe health state of one replica, as seen by the router."""

    def __init__(
        self, replica_id: str, config: Optional[HealthConfig] = None
    ) -> None:
        self.replica_id = replica_id
        self.config = config or HealthConfig()
        self._lock = threading.Lock()
        self._latency_ewma_s = self.config.latency_prior_s
        self._error_ewma = 0.0
        self._missed_heartbeats = 0
        self._down_reason: Optional[str] = None

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    def record_success(self, latency_s: float) -> None:
        """A routed call succeeded: proof of life plus a latency sample."""
        alpha = self.config.ewma_alpha
        with self._lock:
            self._latency_ewma_s += alpha * (latency_s - self._latency_ewma_s)
            self._error_ewma *= 1.0 - alpha
            self._missed_heartbeats = 0

    def record_error(self) -> None:
        alpha = self.config.ewma_alpha
        with self._lock:
            self._error_ewma += alpha * (1.0 - self._error_ewma)

    def heartbeat_ok(self) -> None:
        with self._lock:
            self._missed_heartbeats = 0

    def heartbeat_missed(self) -> int:
        """Count one missed beat; returns the consecutive-miss total."""
        with self._lock:
            self._missed_heartbeats += 1
            return self._missed_heartbeats

    def mark_down(self, reason: str) -> None:
        """Permanently condemn the replica (crash seen, ejection)."""
        with self._lock:
            if self._down_reason is None:
                self._down_reason = reason

    # ------------------------------------------------------------------
    # Judgment
    # ------------------------------------------------------------------
    @property
    def latency_ewma_s(self) -> float:
        with self._lock:
            return self._latency_ewma_s

    @property
    def error_ewma(self) -> float:
        with self._lock:
            return self._error_ewma

    @property
    def down_reason(self) -> Optional[str]:
        with self._lock:
            return self._down_reason

    @property
    def status(self) -> str:
        with self._lock:
            if (
                self._down_reason is not None
                or self._missed_heartbeats >= self.config.max_missed_heartbeats
            ):
                return DOWN
            if (
                self._missed_heartbeats > 0
                or self._error_ewma > self.config.error_rate_threshold
            ):
                return SUSPECT
            return HEALTHY

    @property
    def routable(self) -> bool:
        return self.status != DOWN

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            status = (
                DOWN
                if (
                    self._down_reason is not None
                    or self._missed_heartbeats
                    >= self.config.max_missed_heartbeats
                )
                else SUSPECT
                if (
                    self._missed_heartbeats > 0
                    or self._error_ewma > self.config.error_rate_threshold
                )
                else HEALTHY
            )
            return {
                "replica_id": self.replica_id,
                "status": status,
                "latency_ewma_ms": self._latency_ewma_s * 1000.0,
                "error_ewma": self._error_ewma,
                "missed_heartbeats": self._missed_heartbeats,
                "down_reason": self._down_reason,
            }
