"""A thread-backed :class:`~repro.service.EugeneService` replica.

One replica owns one service instance and one worker thread; every call
routed to it is serialized through a queue and answered via a
:class:`~concurrent.futures.Future`.  That single-threaded-per-replica
model is the point — a replica has bounded serving capacity, so cluster
throughput comes from the *router* spreading work over N replicas, and
the scaling experiment can measure exactly that.

Two fault-injection sites make replicas killable under a deterministic
:class:`~repro.faults.FaultPlan`:

``cluster.replica.call``
    consulted once per queued endpoint call.  ``crash`` kills the whole
    replica (this and every queued call fail with
    :class:`ReplicaDownError`; the router ejects and re-replicates);
    ``error`` fails just this call; ``latency``/``hang`` stall it;
    ``drop`` executes the endpoint *for real* and then loses the answer
    (:class:`ResponseLostError`) — the at-least-once hazard the
    idempotency layer exists for.
``cluster.heartbeat``
    consulted by :meth:`ServiceReplica.ping`; any fired fault except a
    pure latency stall makes the beat miss, which is how a *partition*
    (alive but unreachable) is modelled distinctly from a crash.
"""

from __future__ import annotations

import copy
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Optional

from .. import faults
from ..faults import InjectedFault, TransientServiceError
from ..service.model_registry import ModelEntry
from ..service.server import EugeneService
from ..telemetry.metrics import MetricsRegistry

CALL_SITE = "cluster.replica.call"
HEARTBEAT_SITE = "cluster.heartbeat"

#: Bucket floor for the per-replica latency histogram (milliseconds).
_LATENCY_LO_MS = 1e-3

#: Synthetic service-time models.  ``sleep`` releases the GIL (I/O-bound
#: backend: thread replicas overlap it); ``spin`` holds it in a Python
#: loop (compute-bound backend: only real processes overlap it) — the
#: load the process-backend scaling gate measures.
WORK_SLEEP = "sleep"
WORK_SPIN = "spin"
WORK_KINDS = frozenset({WORK_SLEEP, WORK_SPIN})


def synthetic_work(seconds: float, kind: str = WORK_SLEEP) -> None:
    """Burn ``seconds`` of synthetic service time in the chosen mode."""
    if seconds <= 0:
        return
    if kind == WORK_SPIN:
        deadline = time.perf_counter() + seconds
        acc = 0.0
        while time.perf_counter() < deadline:
            acc += 1.0  # pure-Python arithmetic: the GIL never drops
    else:
        time.sleep(seconds)


class ReplicaDownError(TransientServiceError):
    """The replica died before answering; retry on a surviving holder."""


class ResponseLostError(TransientServiceError):
    """The replica *executed* the call but the answer was lost in
    transit — a retry is a redelivery, so dedup must catch it."""


@dataclass
class _Item:
    """One unit of queued work: an endpoint call or a control op."""

    future: Future
    endpoint: Optional[str] = None
    request: object = None
    fn: Optional[Callable[[], object]] = None
    enqueued_at: float = field(default_factory=time.perf_counter)


_STOP = object()


class ServiceReplica:
    """One service instance behind a single worker thread.

    ``synthetic_work_s`` adds a sleep to every endpoint call, modelling
    the device-independent service time of a real backend; because
    sleeps in different replica threads overlap, it is what makes the
    scaling experiment meaningful on a single-core host.
    """

    def __init__(
        self,
        replica_id: str,
        service: Optional[EugeneService] = None,
        *,
        seed: int = 0,
        synthetic_work_s: float = 0.0,
        work_kind: str = WORK_SLEEP,
    ) -> None:
        if not replica_id:
            raise ValueError("replica needs a non-empty id")
        if synthetic_work_s < 0:
            raise ValueError("synthetic_work_s must be non-negative")
        if work_kind not in WORK_KINDS:
            raise ValueError(
                f"unknown work_kind {work_kind!r}; choose from {sorted(WORK_KINDS)}"
            )
        self.replica_id = replica_id
        self.service = service or EugeneService(seed=seed)
        self.synthetic_work_s = synthetic_work_s
        self.work_kind = work_kind
        #: per-replica telemetry, merged into the router's cluster view.
        self.metrics = MetricsRegistry()
        self._queue: "queue.SimpleQueue[object]" = queue.SimpleQueue()
        self._lock = threading.Lock()
        self._alive = True
        self._outstanding = 0
        self._thread = threading.Thread(
            target=self._loop, name=f"replica-{replica_id}", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        with self._lock:
            return self._alive

    @property
    def outstanding(self) -> int:
        """Accepted calls not yet answered (the queue-depth signal the
        least-outstanding and utility policies balance on)."""
        with self._lock:
            return self._outstanding

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, endpoint: str, request: object) -> Future:
        """Queue one endpoint call; resolves to its response (or error)."""
        return self._enqueue(_Item(Future(), endpoint=endpoint, request=request))

    def execute(self, fn: Callable[[], object]) -> Future:
        """Queue a control-plane operation (replication, re-keying).

        Runs on the worker thread, serialized with traffic, so control
        ops never race endpoint calls for the replica's registry — but
        bypasses the ``cluster.replica.call`` fault site and synthetic
        work: it models the router's management plane, not a client RPC.
        """
        return self._enqueue(_Item(Future(), fn=fn))

    def _enqueue(self, item: _Item) -> Future:
        with self._lock:
            if not self._alive:
                item.future.set_exception(
                    ReplicaDownError(f"replica {self.replica_id!r} is down")
                )
                return item.future
            self._outstanding += 1
        item.future.add_done_callback(self._settle)
        self._queue.put(item)
        return item.future

    def _settle(self, _future: Future) -> None:
        with self._lock:
            self._outstanding -= 1

    def call(
        self, endpoint: str, request: object, timeout: Optional[float] = None
    ):
        """Synchronous :meth:`submit`; blocks for the response."""
        return self.submit(endpoint, request).result(timeout)

    # ------------------------------------------------------------------
    # Control plane (backend-neutral surface the router programs against)
    # ------------------------------------------------------------------
    # A :class:`~repro.cluster.proc_replica.ProcessReplica` implements the
    # same seven methods over its control pipe, which is what lets the
    # router treat both backends identically.

    def has_model(self, model_id: str) -> bool:
        """Whether this replica currently holds ``model_id``."""
        if not self.alive:
            return False
        return model_id in self.service.registry

    def fetch_entry(self, model_id: str) -> ModelEntry:
        """The live registry entry (raises ``KeyError`` when absent)."""
        return self.service.registry.get(model_id)

    def install_entry(
        self, entry: ModelEntry, timeout: Optional[float] = None
    ) -> None:
        """Install a copy of ``entry``, replacing any same-id model.

        The copy is deep (process backends get one for free from
        pickling), so replicas never share mutable model state.
        """
        clone = copy.deepcopy(entry)

        def install():
            if clone.model_id in self.service.registry:
                self.service.registry.pop(clone.model_id)
            self.service.registry.install(clone)
            return None

        self.execute(install).result(timeout)

    def rekey(
        self, local_id: str, global_id: str, timeout: Optional[float] = None
    ) -> None:
        """Re-register a freshly trained model under its router id."""

        def do_rekey():
            entry = self.service.registry.pop(local_id)
            entry.model_id = global_id
            self.service.registry.install(entry)
            return None

        self.execute(do_rekey).result(timeout)

    def drop_model(
        self, model_id: str, timeout: Optional[float] = None
    ) -> None:
        """Forget ``model_id`` if held (idempotent)."""

        def drop():
            if model_id in self.service.registry:
                self.service.registry.pop(model_id)
            return None

        self.execute(drop).result(timeout)

    def predictor_for(self, model_id: str):
        """The model's confidence predictor, or ``None``."""
        if model_id not in self.service.registry:
            return None
        return self.service.registry.get(model_id).predictor

    def metrics_registry(self) -> MetricsRegistry:
        """This replica's metrics, ready to merge into a cluster view."""
        return self.metrics

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------
    def ping(self) -> bool:
        """Answer one heartbeat (unless dead or partitioned by a fault)."""
        if not self.alive:
            return False
        decision = faults.inject(HEARTBEAT_SITE)
        if decision is None:
            return True
        if decision.kind == faults.LATENCY:
            # A slow beat still arrives — only non-latency faults miss.
            if decision.latency_s > 0:
                time.sleep(decision.latency_s)
            return True
        return False

    def kill(self) -> None:
        """Simulate a crash: nothing queued or future is ever answered
        normally — every accepted-but-unserved call fails with
        :class:`ReplicaDownError` so callers know to fail over."""
        with self._lock:
            if not self._alive:
                return
            self._alive = False
        self._queue.put(_STOP)

    def shutdown(self, timeout: float = 2.0) -> None:
        """Graceful stop for tests: kill and join the worker."""
        self.kill()
        self._thread.join(timeout)

    # ------------------------------------------------------------------
    # Worker
    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                break
            assert isinstance(item, _Item)
            if not self.alive:
                self._fail_down(item)
                continue
            if not self._run(item):
                break
        self._drain()

    def _drain(self) -> None:
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is not _STOP:
                self._fail_down(item)

    def _fail_down(self, item: _Item) -> None:
        item.future.set_exception(
            ReplicaDownError(f"replica {self.replica_id!r} is down")
        )

    def _run(self, item: _Item) -> bool:
        """Serve one item; returns ``False`` when the replica crashed."""
        if item.fn is not None:
            try:
                item.future.set_result(item.fn())
            except BaseException as error:  # control ops report, not kill
                item.future.set_exception(error)
            return True

        decision = faults.inject(CALL_SITE)
        if decision is not None:
            if decision.kind == faults.CRASH:
                with self._lock:
                    self._alive = False
                self.metrics.counter("replica.crashes").inc()
                item.future.set_exception(
                    ReplicaDownError(
                        f"replica {self.replica_id!r} crashed "
                        f"(injected at {CALL_SITE})"
                    )
                )
                return False
            if decision.kind == faults.ERROR:
                self.metrics.counter("replica.errors").inc()
                item.future.set_exception(
                    TransientServiceError(
                        f"injected transient error on replica "
                        f"{self.replica_id!r}"
                    )
                )
                return True
            if decision.kind in (faults.LATENCY, faults.HANG):
                if decision.latency_s > 0:
                    time.sleep(decision.latency_s)
            elif decision.kind == faults.DROP:
                # The at-least-once hazard: execute, then lose the answer.
                try:
                    self._serve(item)
                except BaseException:
                    pass
                self.metrics.counter("replica.responses_lost").inc()
                item.future.set_exception(
                    ResponseLostError(
                        f"replica {self.replica_id!r} executed "
                        f"{item.endpoint!r} but the response was lost"
                    )
                )
                return True
            # CORRUPT has no meaning at the call boundary; proceed.

        try:
            result = self._serve(item)
        except BaseException as error:
            if isinstance(error, InjectedFault):
                self.metrics.counter("replica.errors").inc()
            item.future.set_exception(error)
        else:
            item.future.set_result(result)
        return True

    def _serve(self, item: _Item):
        start = time.perf_counter()
        synthetic_work(self.synthetic_work_s, self.work_kind)
        result = getattr(self.service, item.endpoint)(item.request)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        self.metrics.counter(f"replica.calls.{item.endpoint}").inc()
        self.metrics.histogram(
            "replica.latency_ms", lo=_LATENCY_LO_MS
        ).observe(elapsed_ms)
        return result
