"""Rendezvous (highest-random-weight) placement of models on replicas.

Rendezvous hashing gives the router's placement two properties consistent
hashing buys with far more machinery:

- **Determinism without coordination** — every router (and every test)
  computes the same holders for a model id from nothing but the id and
  the replica set; there is no ring state to persist or repair.
- **Minimal movement** — when a replica joins or leaves, a model moves
  only if the changed replica ranks inside its top-``R``; in expectation
  adding one replica to ``N`` relocates ``~R/(N+1)`` of the placements
  (pinned by ``tests/cluster/test_hashing.py``).

Scores are keyed with ``blake2b`` rather than ``hash`` so placement is
stable across process restarts and ``PYTHONHASHSEED`` — the same design
rule as :func:`repro.faults.plan._site_uniform`.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence

_TWO_64 = float(2**64)


def placement_score(model_id: str, replica_id: str) -> float:
    """Deterministic U[0,1) weight of ``replica_id`` for ``model_id``."""
    digest = hashlib.blake2b(
        f"{model_id}|{replica_id}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") / _TWO_64


def place(
    model_id: str, replica_ids: Sequence[str], replication_factor: int = 1
) -> List[str]:
    """The top-``replication_factor`` replicas for ``model_id``.

    Returned in rank order (highest weight first) — the head of the list
    is the model's *primary*.  When fewer replicas exist than the factor
    asks for, every replica holds the model.
    """
    if not replica_ids:
        raise ValueError("cannot place a model on an empty replica set")
    if replication_factor < 1:
        raise ValueError("replication_factor must be >= 1")
    unique = list(dict.fromkeys(replica_ids))
    ranked = sorted(
        unique, key=lambda rid: (-placement_score(model_id, rid), rid)
    )
    return ranked[: min(replication_factor, len(ranked))]
