"""A process-backed :class:`~repro.service.EugeneService` replica.

Where :class:`~repro.cluster.replica.ServiceReplica` runs its service on
a thread (sharing the GIL with every other replica), this one runs a
full service in a ``multiprocessing`` child, which is what makes
``make cluster`` scale with physical cores on compute-bound load — and
what makes crash faults *real*: an injected crash is an actual
``Process.kill()``, and a heartbeat is an actual liveness probe that a
SIGKILL'd or wedged child fails.

The parent↔child protocol (:mod:`repro.cluster.transport`):

- **Work pipe** (parent → child): :class:`CallMsg` per endpoint call,
  :class:`ReleaseMsg` when the parent has consumed a response's shm
  blocks, :class:`StopMsg` to shut down.  Written only by the parent's
  *sender* thread, so message framing is never interleaved.
- **Result pipe** (child → parent): :class:`ResultMsg` per call, one
  final :class:`ByeMsg` (leak report + last metrics) on clean stop.
  Drained by the parent's *dispatcher* thread, which waits on the pipe
  **and** the child's sentinel — child death is detected immediately,
  in-flight futures fail with :class:`ReplicaDownError`, and (optional)
  auto-respawn brings a fresh child up.
- **Control pipe** (duplex): registry management (fetch/install/rekey/
  drop), predictor lookup, metrics snapshots and pings.  Served by a
  dedicated child thread so a long-running endpoint call cannot starve
  heartbeats, and correlated by ``ctrl_id`` so a timed-out request's
  late reply is discarded rather than mis-delivered.

ndarray payloads ride two single-writer :class:`~repro.cluster.shm.ShmArena`
segments (requests: parent-owned; responses: child-adopted).  The parent
*creates and unlinks both*, so a SIGKILL'd child can never orphan an OS
segment; on any exit path the parent reclaims in-flight request blocks
and records a post-mortem leak report that tests and the CI smoke job
assert empty.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from multiprocessing.connection import wait as _connection_wait
from typing import Any, Dict, List, Optional, Tuple

from .. import faults
from ..faults import TransientServiceError
from ..service.model_registry import ModelEntry
from ..service.server import EugeneService
from ..telemetry.metrics import MetricsRegistry
from .replica import (
    CALL_SITE,
    HEARTBEAT_SITE,
    WORK_KINDS,
    WORK_SLEEP,
    _LATENCY_LO_MS,
    ReplicaDownError,
    ResponseLostError,
    synthetic_work,
)
from .shm import ShmArena, ShmError, ShmLeakError
from .transport import (
    ByeMsg,
    CallMsg,
    CtrlMsg,
    CtrlReply,
    ReleaseMsg,
    ResultMsg,
    StopMsg,
    decode_payload,
    encode_payload,
    safe_exception,
)

#: Start methods in preference order.  ``forkserver`` is the default on
#: POSIX: children start from a clean single-threaded template process,
#: so the parent's worker threads (and any lock they hold in numpy/BLAS)
#: can never deadlock a fork — while subsequent starts stay cheap.
#: ``fork`` is never auto-picked for exactly that reason, but remains
#: available explicitly via ``REPRO_MP_START_METHOD=fork``.
_START_METHOD_PREFERENCE = ("forkserver", "spawn")

_context_cache: Dict[str, Any] = {}
_context_lock = threading.Lock()


def _mp_context(method: Optional[str] = None):
    method = method or os.environ.get("REPRO_MP_START_METHOD")
    if method is None:
        available = mp.get_all_start_methods()
        for candidate in _START_METHOD_PREFERENCE:
            if candidate in available:
                method = candidate
                break
        else:  # pragma: no cover - every platform has spawn
            method = "spawn"
    with _context_lock:
        context = _context_cache.get(method)
        if context is None:
            context = mp.get_context(method)
            if method == "forkserver":
                try:
                    context.set_forkserver_preload(
                        ["repro.cluster.proc_replica"]
                    )
                except Exception:  # pragma: no cover - preload is advisory
                    pass
            _context_cache[method] = context
    return context


@dataclass(frozen=True)
class _ChildSpec:
    """Everything a child needs to boot (picklable; no live handles)."""

    replica_id: str
    seed: int
    synthetic_work_s: float
    work_kind: str
    req_arena_name: str
    res_arena_name: str
    max_blocks: int


@dataclass
class _Pending:
    """Parent-side record of one in-flight call."""

    future: Future
    refs: Tuple = ()
    endpoint: str = ""
    dropped: bool = False
    corrupted: bool = False


_STOP = object()


# ----------------------------------------------------------------------
# Child process
# ----------------------------------------------------------------------
def _child_main(spec: _ChildSpec, work_recv, res_send, ctrl_conn) -> None:
    """Entry point of the replica child: serve loop + control thread."""
    # Fault plans are the *parent's* test harness state; with a ``fork``
    # start they would be inherited and fire twice (parent injects at
    # the call site, child again inside the service decorators).
    faults.uninstall()

    req_arena = ShmArena.attach(spec.req_arena_name, spec.max_blocks)
    res_arena = ShmArena.adopt(spec.res_arena_name, spec.max_blocks)
    service = EugeneService(seed=spec.seed)
    metrics = MetricsRegistry()
    # Serializes control-plane registry mutations with endpoint calls —
    # the process twin of ServiceReplica.execute's run-on-the-worker rule.
    registry_lock = threading.RLock()
    pending_release: Dict[int, Tuple] = {}

    def handle_ctrl(msg: CtrlMsg):
        op, args = msg.op, msg.args
        if op == "has":
            (model_id,) = args
            with registry_lock:
                return model_id in service.registry
        if op == "fetch":
            (model_id,) = args
            with registry_lock:
                return service.registry.get(model_id)
        if op == "install":
            (entry,) = args
            with registry_lock:
                if entry.model_id in service.registry:
                    service.registry.pop(entry.model_id)
                service.registry.install(entry)
            return None
        if op == "rekey":
            local_id, global_id = args
            with registry_lock:
                entry = service.registry.pop(local_id)
                entry.model_id = global_id
                service.registry.install(entry)
            return None
        if op == "drop":
            (model_id,) = args
            with registry_lock:
                if model_id in service.registry:
                    service.registry.pop(model_id)
            return None
        if op == "predictor":
            (model_id,) = args
            with registry_lock:
                if model_id not in service.registry:
                    return None
                return service.registry.get(model_id).predictor
        if op == "metrics":
            return metrics
        if op == "leak":
            return res_arena.leak_report()
        raise ValueError(f"unknown control op {op!r}")

    def ctrl_loop() -> None:
        while True:
            try:
                msg = ctrl_conn.recv()
            except (EOFError, OSError):
                return
            if msg.op == "ping":
                # Deliberately lock-free: a slow endpoint call must not
                # read as a missed heartbeat — liveness, not progress.
                reply = CtrlReply(msg.ctrl_id, True, value=True)
            else:
                try:
                    reply = CtrlReply(msg.ctrl_id, True, value=handle_ctrl(msg))
                except BaseException as error:
                    reply = CtrlReply(
                        msg.ctrl_id, False, error=safe_exception(error)
                    )
            try:
                ctrl_conn.send(reply)
            except (OSError, BrokenPipeError):
                return

    threading.Thread(
        target=ctrl_loop, name=f"{spec.replica_id}-ctrl", daemon=True
    ).start()

    def release(seq: int) -> None:
        for ref in pending_release.pop(seq, ()):
            try:
                res_arena.decref(ref.index, ref.generation)
            except ShmError:  # pragma: no cover - double release
                pass

    while True:
        try:
            msg = work_recv.recv()
        except (EOFError, OSError):
            return  # parent vanished: nothing left to serve
        if isinstance(msg, StopMsg):
            break
        if isinstance(msg, ReleaseMsg):
            release(msg.seq)
            continue
        assert isinstance(msg, CallMsg)
        start = time.perf_counter()
        try:
            request = decode_payload(msg.payload, req_arena, copy_arrays=True)
            synthetic_work(spec.synthetic_work_s, spec.work_kind)
            with registry_lock:
                response = getattr(service, msg.endpoint)(request)
            elapsed_ms = (time.perf_counter() - start) * 1000.0
            metrics.counter(f"replica.calls.{msg.endpoint}").inc()
            metrics.histogram(
                "replica.latency_ms", lo=_LATENCY_LO_MS
            ).observe(elapsed_ms)
            payload, refs = encode_payload(response, res_arena)
            if refs:
                pending_release[msg.seq] = tuple(refs)
            result = ResultMsg(seq=msg.seq, ok=True, payload=payload)
        except BaseException as error:
            result = ResultMsg(
                seq=msg.seq, ok=False, error=safe_exception(error)
            )
        try:
            res_send.send(result)
        except (OSError, BrokenPipeError):
            return
        except Exception as error:
            # The response itself failed to pickle: downgrade to an error
            # result so the call fails loudly instead of the pipe dying.
            release(msg.seq)
            try:
                res_send.send(
                    ResultMsg(seq=msg.seq, ok=False, error=safe_exception(error))
                )
            except Exception:  # pragma: no cover - pipe gone too
                return

    # Clean stop: every ReleaseMsg the parent queued ahead of StopMsg has
    # been applied, so anything still live here is a genuine leak.
    leaked = res_arena.leak_report()
    try:
        res_send.send(
            ByeMsg(
                leaked_blocks=len(leaked),
                leak_report=leaked,
                metrics=metrics,
            )
        )
    except (OSError, BrokenPipeError):  # pragma: no cover
        pass
    res_arena.close()
    req_arena.close()


# ----------------------------------------------------------------------
# Parent handle
# ----------------------------------------------------------------------
class ProcessReplica:
    """One service instance in a ``multiprocessing`` child.

    Drop-in peer of :class:`~repro.cluster.replica.ServiceReplica`: same
    submission surface (``submit``/``call``/``execute`` is replaced by
    the named control ops), same fault sites with the same semantics —
    except ``crash`` now really kills the child — and the same
    ``alive``/``outstanding``/``ping`` signals the router's health plane
    consumes.
    """

    def __init__(
        self,
        replica_id: str,
        *,
        seed: int = 0,
        synthetic_work_s: float = 0.0,
        work_kind: str = WORK_SLEEP,
        arena_bytes: int = 8 << 20,
        max_blocks: int = 256,
        start_method: Optional[str] = None,
        control_timeout_s: float = 30.0,
        ping_timeout_s: float = 2.0,
        auto_respawn: bool = False,
    ) -> None:
        if not replica_id:
            raise ValueError("replica needs a non-empty id")
        if synthetic_work_s < 0:
            raise ValueError("synthetic_work_s must be non-negative")
        if work_kind not in WORK_KINDS:
            raise ValueError(
                f"unknown work_kind {work_kind!r}; choose from {sorted(WORK_KINDS)}"
            )
        self.replica_id = replica_id
        self.synthetic_work_s = synthetic_work_s
        self.work_kind = work_kind
        self.auto_respawn = auto_respawn
        #: parent-side transport/fault telemetry; child serving metrics
        #: are merged in by :meth:`metrics_registry`.
        self.metrics = MetricsRegistry()
        self._seed = seed
        self._arena_bytes = arena_bytes
        self._max_blocks = max_blocks
        self._control_timeout_s = control_timeout_s
        self._ping_timeout_s = ping_timeout_s
        self._context = _mp_context(start_method)
        self._lock = threading.RLock()
        self._ctrl_lock = threading.Lock()
        self._seqs = itertools.count(1)
        self._ctrl_ids = itertools.count(1)
        self._outstanding = 0
        self._alive = False
        self._stopping = False
        self._expect_death = False
        self._proc = None
        self._pending: Dict[int, _Pending] = {}
        self._predictors: Dict[str, Any] = {}
        self._last_child_metrics: Optional[MetricsRegistry] = None
        self._bye: Optional[ByeMsg] = None
        self._postmortem: Optional[Dict[str, Any]] = None
        self._req_arena: Optional[ShmArena] = None
        self._res_arena: Optional[ShmArena] = None
        self._spawn()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _spawn(self) -> None:
        context = self._context
        req_arena = ShmArena.create(self._arena_bytes, self._max_blocks)
        res_arena = ShmArena.create(
            self._arena_bytes, self._max_blocks, owner=False
        )
        work_recv, work_send = context.Pipe(duplex=False)
        res_recv, res_send = context.Pipe(duplex=False)
        ctrl_parent, ctrl_child = context.Pipe()
        spec = _ChildSpec(
            replica_id=self.replica_id,
            seed=self._seed,
            synthetic_work_s=self.synthetic_work_s,
            work_kind=self.work_kind,
            req_arena_name=req_arena.name,
            res_arena_name=res_arena.name,
            max_blocks=self._max_blocks,
        )
        proc = context.Process(
            target=_child_main,
            args=(spec, work_recv, res_send, ctrl_child),
            name=f"replica-{self.replica_id}",
            daemon=True,
        )
        proc.start()
        # Drop the child's pipe ends so EOF propagates when it dies.
        work_recv.close()
        res_send.close()
        ctrl_child.close()
        with self._lock:
            self._req_arena = req_arena
            self._res_arena = res_arena
            self._work_send = work_send
            self._res_recv = res_recv
            self._ctrl = ctrl_parent
            self._proc = proc
            self._pending = {}
            self._predictors = {}
            self._bye = None
            self._postmortem = None
            self._stopping = False
            self._expect_death = False
            self._alive = True
            self._submitq: "queue.SimpleQueue[object]" = queue.SimpleQueue()
            submitq = self._submitq
        self._sender_thread = threading.Thread(
            target=self._sender_loop,
            args=(submitq, work_send),
            name=f"replica-{self.replica_id}-send",
            daemon=True,
        )
        self._dispatcher_thread = threading.Thread(
            target=self._dispatcher_loop,
            args=(res_recv, proc),
            name=f"replica-{self.replica_id}-recv",
            daemon=True,
        )
        self._sender_thread.start()
        self._dispatcher_thread.start()

    @property
    def pid(self) -> Optional[int]:
        proc = self._proc
        return proc.pid if proc is not None else None

    @property
    def alive(self) -> bool:
        with self._lock:
            return (
                self._alive
                and self._proc is not None
                and self._proc.is_alive()
            )

    @property
    def outstanding(self) -> int:
        with self._lock:
            return self._outstanding

    def kill(self) -> None:
        """Hard-kill the child (the crash fault, and the chaos lever)."""
        with self._lock:
            if not self._alive:
                return
            self._alive = False
            self._expect_death = True
            proc = self._proc
        if proc is not None and proc.is_alive():
            proc.kill()
        # The dispatcher notices the sentinel and runs the death path.

    def shutdown(self, timeout: float = 5.0) -> None:
        """Graceful stop: drain, leak-check, join, destroy the arenas."""
        with self._lock:
            already_dead = not self._alive
            self._stopping = not already_dead
            self._expect_death = True
        if already_dead:
            # Killed earlier (or died): just make sure the death path
            # finished its post-mortem so leak checks are deterministic.
            self._dispatcher_thread.join(timeout)
            with self._lock:
                if self._req_arena is not None:
                    self._finalize(clean=False)
            return
        deadline = time.monotonic() + timeout
        while self.outstanding > 0 and time.monotonic() < deadline:
            time.sleep(0.001)
        with self._lock:
            self._alive = False
            self._submitq.put(_STOP)
        self._dispatcher_thread.join(max(0.1, deadline - time.monotonic()))
        proc = self._proc
        if proc is not None:
            proc.join(max(0.1, deadline - time.monotonic()))
            if proc.is_alive():  # pragma: no cover - wedged child
                proc.kill()
                proc.join(1.0)
        self._finalize(clean=True)

    def respawn(self, timeout: float = 5.0) -> None:
        """Bring up a fresh child after a death (the watchdog's lever)."""
        if threading.current_thread() is not self._dispatcher_thread:
            self._dispatcher_thread.join(timeout)
        with self._lock:
            if self._alive:
                return
            if self._req_arena is not None:
                # Death path has not finalized yet (or never ran).
                self._finalize(clean=False)
        self.metrics.counter("replica.respawns").inc()
        self._spawn()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, endpoint: str, request: object) -> Future:
        future: Future = Future()
        # The put happens under the replica lock: the death path enqueues
        # its stop sentinel under the same lock *after* flipping _alive,
        # so no call can ever land in the queue behind the sentinel and
        # silently never resolve.
        with self._lock:
            if not self._alive:
                future.set_exception(
                    ReplicaDownError(f"replica {self.replica_id!r} is down")
                )
                return future
            self._outstanding += 1
            future.add_done_callback(self._settle)
            self._submitq.put(
                ("call", next(self._seqs), endpoint, request, future)
            )
        return future

    def _settle(self, _future: Future) -> None:
        with self._lock:
            self._outstanding -= 1

    def call(
        self, endpoint: str, request: object, timeout: Optional[float] = None
    ):
        return self.submit(endpoint, request).result(timeout)

    # ------------------------------------------------------------------
    # Liveness
    # ------------------------------------------------------------------
    def ping(self) -> bool:
        """A real liveness probe: round-trip the control pipe.

        The fault site keeps its thread-backend semantics (any fired
        fault except a pure latency stall misses the beat); on top of
        that, a killed, wedged or unresponsive child genuinely fails the
        probe, which is what lets the health plane eject it.
        """
        if not self.alive:
            return False
        decision = faults.inject(HEARTBEAT_SITE)
        if decision is not None:
            if decision.kind != faults.LATENCY:
                return False
            if decision.latency_s > 0:
                time.sleep(decision.latency_s)
        try:
            return bool(self._control("ping", timeout=self._ping_timeout_s))
        except TransientServiceError:
            return False

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def _control(self, op: str, *args, timeout: Optional[float] = None):
        timeout = self._control_timeout_s if timeout is None else timeout
        with self._ctrl_lock:
            with self._lock:
                if not self._alive:
                    raise ReplicaDownError(
                        f"replica {self.replica_id!r} is down"
                    )
                ctrl = self._ctrl
            ctrl_id = next(self._ctrl_ids)
            deadline = time.monotonic() + timeout
            try:
                ctrl.send(CtrlMsg(ctrl_id=ctrl_id, op=op, args=args))
                while True:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not ctrl.poll(max(0.0, remaining)):
                        raise ReplicaDownError(
                            f"replica {self.replica_id!r}: control op "
                            f"{op!r} timed out after {timeout:g}s"
                        )
                    reply = ctrl.recv()
                    if reply.ctrl_id != ctrl_id:
                        continue  # late reply of a timed-out predecessor
                    if reply.ok:
                        return reply.value
                    raise reply.error
            except (OSError, EOFError, BrokenPipeError) as error:
                raise ReplicaDownError(
                    f"replica {self.replica_id!r}: control channel broken "
                    f"({error})"
                ) from error

    def has_model(self, model_id: str) -> bool:
        try:
            return bool(self._control("has", model_id))
        except ReplicaDownError:
            return False

    def fetch_entry(self, model_id: str) -> ModelEntry:
        return self._control("fetch", model_id)

    def install_entry(
        self, entry: ModelEntry, timeout: Optional[float] = None
    ) -> None:
        self._predictors.pop(entry.model_id, None)
        self._control("install", entry, timeout=timeout)

    def rekey(
        self, local_id: str, global_id: str, timeout: Optional[float] = None
    ) -> None:
        self._predictors.pop(local_id, None)
        self._predictors.pop(global_id, None)
        self._control("rekey", local_id, global_id, timeout=timeout)

    def drop_model(
        self, model_id: str, timeout: Optional[float] = None
    ) -> None:
        self._predictors.pop(model_id, None)
        self._control("drop", model_id, timeout=timeout)

    def predictor_for(self, model_id: str):
        # Cached: the utility policy asks per routed call, and shipping a
        # GP predictor over the pipe each time would swamp the routing
        # cost.  Invalidated on install/rekey/drop and after calibrate.
        if model_id in self._predictors:
            return self._predictors[model_id]
        predictor = self._control("predictor", model_id)
        self._predictors[model_id] = predictor
        return predictor

    def metrics_registry(self) -> MetricsRegistry:
        """Parent transport metrics + the freshest child snapshot.

        A dead child cannot answer, so the last successfully shipped
        snapshot (including the final one in :class:`ByeMsg`) stands in
        — serving counts survive the replica they happened on.
        """
        merged = MetricsRegistry()
        merged.merge(self.metrics)
        child: Optional[MetricsRegistry] = None
        try:
            child = self._control("metrics")
        except TransientServiceError:
            child = None
        if child is not None:
            self._last_child_metrics = child
        elif self._last_child_metrics is not None:
            child = self._last_child_metrics
        if child is not None:
            merged.merge(child)
        return merged

    # ------------------------------------------------------------------
    # Shared-memory accounting
    # ------------------------------------------------------------------
    def shm_leak_report(self) -> Dict[str, Any]:
        """Live (or post-mortem) block accounting for both arenas."""
        with self._lock:
            if self._postmortem is not None:
                return dict(self._postmortem)
            req = self._req_arena
            res = self._res_arena
            return {
                "state": "running",
                "req_leaked": req.leak_report() if req is not None else [],
                "res_unreleased": res.leak_report() if res is not None else [],
                "segments_linked": True,
            }

    def assert_no_shm_leaks(self) -> None:
        """Raise :class:`~repro.cluster.shm.ShmLeakError` on any leak.

        After shutdown/death this checks the post-mortem record: zero
        unreclaimed request blocks, zero OS segments left linked, and —
        for a *clean* stop — zero response blocks the child still held.
        """
        report = self.shm_leak_report()
        problems = []
        if report["req_leaked"]:
            problems.append(f"request blocks leaked: {report['req_leaked']}")
        if report.get("state") == "stopped" and report["res_unreleased"]:
            problems.append(
                f"response blocks unreleased at clean stop: "
                f"{report['res_unreleased']}"
            )
        if not report.get("segments_linked", False):
            pass  # unlinked is the good outcome post-mortem
        elif report.get("state") in ("stopped", "died"):
            problems.append("shared-memory segments still linked")
        if problems:
            raise ShmLeakError(
                f"replica {self.replica_id!r}: " + "; ".join(problems)
            )

    # ------------------------------------------------------------------
    # Sender thread (parent → child)
    # ------------------------------------------------------------------
    def _sender_loop(self, submitq, work_send) -> None:
        while True:
            item = submitq.get()
            if item is _STOP:
                try:
                    work_send.send(StopMsg())
                except (OSError, BrokenPipeError):
                    pass
                return
            if item[0] == "release":
                try:
                    work_send.send(ReleaseMsg(seq=item[1]))
                except (OSError, BrokenPipeError):
                    pass
                continue
            _, seq, endpoint, request, future = item
            if future.done():
                continue  # already failed by a death drain
            proceed, fault_kind = self._apply_call_faults(future)
            if not proceed:
                continue
            self._encode_and_send(
                seq, endpoint, request, future, work_send, fault_kind
            )

    def _apply_call_faults(self, future: Future):
        """Consult ``cluster.replica.call``; returns ``(proceed, kind)``.

        Same decision table as the thread backend, with two upgrades:
        ``crash`` performs a real child ``kill()`` and ``corrupt``
        scribbles the request's shm generation tags (the child's decode
        then fails validation and the router fails over).
        """
        decision = faults.inject(CALL_SITE)
        if decision is None:
            return True, None
        if decision.kind == faults.CRASH:
            self.metrics.counter("replica.crashes").inc()
            future.set_exception(
                ReplicaDownError(
                    f"replica {self.replica_id!r} crashed (injected at "
                    f"{CALL_SITE}; child process killed)"
                )
            )
            self.kill()
            return False, None
        if decision.kind == faults.ERROR:
            self.metrics.counter("replica.errors").inc()
            future.set_exception(
                TransientServiceError(
                    f"injected transient error on replica {self.replica_id!r}"
                )
            )
            return False, None
        if decision.kind in (faults.LATENCY, faults.HANG):
            if decision.latency_s > 0:
                time.sleep(decision.latency_s)
            return True, None
        # DROP and CORRUPT tag the pending record in _encode_and_send.
        return True, decision.kind

    def _encode_and_send(
        self,
        seq: int,
        endpoint: str,
        request,
        future: Future,
        work_send,
        fault_kind: Optional[str] = None,
    ) -> None:
        dropped = fault_kind == faults.DROP
        corrupt = fault_kind == faults.CORRUPT
        fallbacks: List[str] = []
        try:
            with self._lock:
                if not self._alive:
                    raise ReplicaDownError(
                        f"replica {self.replica_id!r} is down"
                    )
                payload, refs = encode_payload(
                    request, self._req_arena, fallbacks=fallbacks
                )
                corrupted = False
                if corrupt and refs:
                    for ref in refs:
                        self._req_arena.corrupt_generation(ref.index)
                    self.metrics.counter("replica.shm_corruptions").inc()
                    corrupted = True
                self._pending[seq] = _Pending(
                    future=future,
                    refs=tuple(refs),
                    endpoint=endpoint,
                    dropped=dropped,
                    corrupted=corrupted,
                )
        except ReplicaDownError as error:
            future.set_exception(error)
            return
        except ShmError as error:
            future.set_exception(
                TransientServiceError(
                    f"shm transport failure on replica "
                    f"{self.replica_id!r}: {error}"
                )
            )
            return
        if fallbacks:
            self.metrics.counter("replica.transport.inline_fallbacks").inc(
                len(fallbacks)
            )
        try:
            work_send.send(CallMsg(seq=seq, endpoint=endpoint, payload=payload))
            self.metrics.counter("replica.transport.calls_sent").inc()
        except (OSError, BrokenPipeError, EOFError):
            with self._lock:
                pending = self._pending.pop(seq, None)
                if pending is not None:
                    self._free_request_refs(pending)
            if pending is not None and not future.done():
                future.set_exception(
                    ReplicaDownError(f"replica {self.replica_id!r} is down")
                )

    def _free_request_refs(self, pending: _Pending) -> None:
        """Reclaim a call's request blocks (restoring corrupted tags)."""
        arena = self._req_arena
        if arena is None:
            return
        for ref in pending.refs:
            try:
                if pending.corrupted:
                    # corrupt_generation is an XOR — applying it again
                    # restores the tag so the block can be freed.
                    arena.corrupt_generation(ref.index)
                arena.decref(ref.index, ref.generation)
            except ShmError:  # pragma: no cover - already reclaimed
                pass

    # ------------------------------------------------------------------
    # Dispatcher thread (child → parent + watchdog)
    # ------------------------------------------------------------------
    def _dispatcher_loop(self, res_recv, proc) -> None:
        sentinel = proc.sentinel
        while True:
            try:
                ready = _connection_wait([res_recv, sentinel])
            except OSError:  # pragma: no cover - pipe torn down
                ready = [sentinel]
            if res_recv in ready:
                try:
                    msg = res_recv.recv()
                except (EOFError, OSError):
                    self._on_child_exit(proc)
                    return
                self._handle_result(msg)
                continue
            # Sentinel fired: the child is gone.  Results it managed to
            # write before dying are still in the pipe — deliver them
            # (they were each served exactly once) before failing the rest.
            while True:
                try:
                    if not res_recv.poll(0):
                        break
                    msg = res_recv.recv()
                except (EOFError, OSError):
                    break
                self._handle_result(msg)
            self._on_child_exit(proc)
            return

    def _handle_result(self, msg) -> None:
        if isinstance(msg, ByeMsg):
            with self._lock:
                self._bye = msg
            if msg.metrics is not None:
                self._last_child_metrics = msg.metrics
            return
        with self._lock:
            pending = self._pending.pop(msg.seq, None)
            if pending is not None:
                self._free_request_refs(pending)
            submitq = self._submitq
            res_arena = self._res_arena
        if pending is None:
            return
        future = pending.future
        outcome_error: Optional[BaseException] = None
        outcome_value = None
        if pending.dropped:
            # The at-least-once hazard, process edition: the child served
            # the call for real; the answer is discarded here in transit.
            self.metrics.counter("replica.responses_lost").inc()
            outcome_error = ResponseLostError(
                f"replica {self.replica_id!r} executed "
                f"{pending.endpoint!r} but the response was lost"
            )
        elif not msg.ok:
            outcome_error = msg.error or TransientServiceError(
                f"replica {self.replica_id!r} failed with no error payload"
            )
        elif res_arena is None:
            outcome_error = ReplicaDownError(
                f"replica {self.replica_id!r} is down"
            )
        else:
            try:
                outcome_value = decode_payload(
                    msg.payload, res_arena, copy_arrays=True
                )
            except ShmError as error:
                self.metrics.counter("replica.transport.stale_reads").inc()
                outcome_error = (
                    error
                    if isinstance(error, TransientServiceError)
                    else TransientServiceError(str(error))
                )
        if pending.endpoint == "calibrate" and outcome_error is None:
            # Calibration refits the model's predictor child-side.
            self._predictors.clear()
        # Release *before* resolving the future: once outstanding hits
        # zero every release is already queued ahead of any StopMsg.
        if msg.ok:
            submitq.put(("release", msg.seq))
        if outcome_error is not None:
            future.set_exception(outcome_error)
        else:
            future.set_result(outcome_value)

    def _on_child_exit(self, proc) -> None:
        with self._lock:
            if proc is not self._proc:
                return  # a stale epoch's dispatcher; a respawn superseded it
            clean = self._stopping
            expected = self._expect_death or self._stopping
            self._alive = False
            drained = list(self._pending.values())
            self._pending.clear()
            for pending in drained:
                self._free_request_refs(pending)
            self._submitq.put(_STOP)  # unblock the sender thread
        for pending in drained:
            if not pending.future.done():
                pending.future.set_exception(
                    ReplicaDownError(
                        f"replica {self.replica_id!r} is down "
                        "(child process exited)"
                    )
                )
        proc.join(5.0)
        if not clean:
            self._finalize(clean=False)
            if not expected:
                self.metrics.counter("replica.unexpected_exits").inc()
                if self.auto_respawn:
                    self.respawn()

    def _finalize(self, clean: bool) -> None:
        """Tear down arenas and record the post-mortem leak report."""
        with self._lock:
            req, res = self._req_arena, self._res_arena
            if req is None:
                return
            self._req_arena = None
            self._res_arena = None
            bye = self._bye
            work_send = getattr(self, "_work_send", None)
            res_recv = getattr(self, "_res_recv", None)
            ctrl = getattr(self, "_ctrl", None)
        req_leaked = req.leak_report()
        if bye is not None:
            res_unreleased = list(bye.leak_report)
        else:
            # Killed child: read the table through the parent's handle.
            res_unreleased = res.leak_report()
        req.destroy()
        res.destroy()
        for conn in (work_send, res_recv, ctrl):
            if conn is not None:
                try:
                    conn.close()
                except OSError:  # pragma: no cover
                    pass
        with self._lock:
            self._postmortem = {
                "state": "stopped" if clean else "died",
                "req_leaked": req_leaked,
                "res_unreleased": res_unreleased,
                "segments_linked": self._segments_linked(req.name, res.name),
            }

    @staticmethod
    def _segments_linked(*names: str) -> bool:
        from multiprocessing import shared_memory

        for name in names:
            try:
                handle = shared_memory.SharedMemory(name=name)
            except FileNotFoundError:
                continue
            handle.close()
            return True
        return False
