"""Model caching on edge devices (Sec. II-B's smart-refrigerator mechanism).

Pipeline automated here, answering the paper's open questions with concrete
(configurable) policies:

1. *When are items frequent?* — a sliding-window :class:`FrequencyTracker`
   declares the smallest class set covering ``coverage_target`` of recent
   traffic frequent, provided the window is full.
2. *How large should the cached set/model be?* — bounded by the
   :class:`DeviceProfile` (parameter budget picks the width fraction; class
   set capped at ``max_cached_classes``).
3. *Adaptation to device capability / link bandwidth* — the profile's
   ``bandwidth_kbps`` sets the modelled download cost; the service only
   installs a model whose download amortizes over expected hits.
4. *When is the cached model removed?* — when its observed hit rate over the
   last window drops below ``min_hit_rate`` the cache invalidates itself and
   the tracker starts over.

A **cache miss** is a reduced-model output that is either the "other" class
or below the confidence threshold; the query then falls back to the full
server model, exactly like "the identification of an uncommon occurrence ...
triggers full network execution on the server".
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn.data import Dataset
from ..nn.resnet import StagedResNet
from .pruning import shrink_staged_resnet


@dataclass
class DeviceProfile:
    """Capabilities of the edge device hosting the cache."""

    #: maximum parameters the device can host.
    max_parameters: int = 20_000
    #: downlink bandwidth for model pushes.
    bandwidth_kbps: float = 1_000.0
    #: modelled per-inference latency ratio device/server compute (device is
    #: slower per op but skips the network round trip).
    compute_slowdown: float = 4.0
    #: network round-trip latency to the server, ms.
    network_rtt_ms: float = 80.0

    def __post_init__(self) -> None:
        if self.max_parameters < 1 or self.bandwidth_kbps <= 0:
            raise ValueError("invalid device profile")

    def width_fraction_for(self, full_parameters: int) -> float:
        """Largest width fraction whose parameter count fits the device.

        Parameter count of a CNN scales roughly quadratically with width, so
        the fraction is sqrt of the parameter ratio, clamped to [0.1, 1].
        """
        ratio = self.max_parameters / max(full_parameters, 1)
        return float(np.clip(np.sqrt(ratio), 0.1, 1.0))

    def download_time_ms(self, parameters: int) -> float:
        bits = parameters * 32
        return bits / (self.bandwidth_kbps * 1000.0) * 1000.0


class FrequencyTracker:
    """Sliding-window class-frequency tracker."""

    def __init__(self, window: int = 200, coverage_target: float = 0.8,
                 max_classes: int = 4) -> None:
        if window < 1:
            raise ValueError("window must be positive")
        if not 0.0 < coverage_target <= 1.0:
            raise ValueError("coverage_target must be in (0, 1]")
        if max_classes < 1:
            raise ValueError("max_classes must be positive")
        self.window = window
        self.coverage_target = coverage_target
        self.max_classes = max_classes
        self._events: Deque[int] = deque(maxlen=window)

    def observe(self, label: int) -> None:
        self._events.append(int(label))

    @property
    def full(self) -> bool:
        return len(self._events) == self.window

    def counts(self) -> Counter:
        return Counter(self._events)

    def frequent_classes(self) -> Optional[List[int]]:
        """Smallest class set covering the target, or None if not detectable.

        None is returned when the window is not yet full, or when covering
        the target would need more than ``max_classes`` classes (traffic too
        diverse — caching would not pay).
        """
        if not self.full:
            return None
        counts = self.counts().most_common()
        total = len(self._events)
        chosen: List[int] = []
        covered = 0
        for label, count in counts:
            if len(chosen) == self.max_classes:
                break
            chosen.append(label)
            covered += count
            if covered / total >= self.coverage_target:
                return sorted(chosen)
        return None

    def reset(self) -> None:
        self._events.clear()


@dataclass
class ReducedClassModel:
    """A cached, reduced model specialized to a frequent-class subset."""

    model: StagedResNet
    class_map: Dict[int, int]
    confidence_threshold: float = 0.6

    def __post_init__(self) -> None:
        if not 0.0 <= self.confidence_threshold <= 1.0:
            raise ValueError("confidence threshold must be in [0, 1]")
        self._inverse = {v: k for k, v in self.class_map.items()}
        self._other_index = len(self.class_map)

    @property
    def cached_classes(self) -> List[int]:
        return sorted(self.class_map)

    def predict(self, x: np.ndarray) -> Tuple[Optional[int], float]:
        """(original-class prediction, confidence) — prediction None on miss."""
        probs = self.model.predict_proba(x[None] if x.ndim == 3 else x)[-1][0]
        idx = int(probs.argmax())
        conf = float(probs.max())
        if idx == self._other_index or conf < self.confidence_threshold:
            return None, conf
        return self._inverse[idx], conf


@dataclass
class CacheStats:
    """Counters for the caching service."""

    local_hits: int = 0
    local_misses: int = 0
    server_only: int = 0
    installs: int = 0
    invalidations: int = 0

    @property
    def total_queries(self) -> int:
        return self.local_hits + self.local_misses + self.server_only

    @property
    def hit_rate(self) -> float:
        served = self.local_hits + self.local_misses
        return self.local_hits / served if served else 0.0

    @property
    def offload_fraction(self) -> float:
        """Fraction of queries that had to travel to the server."""
        if not self.total_queries:
            return 0.0
        return (self.local_misses + self.server_only) / self.total_queries


class CachedInferenceService:
    """End-to-end caching service: observe traffic, install, serve, invalidate."""

    def __init__(
        self,
        server_model: StagedResNet,
        train_set: Dataset,
        device: Optional[DeviceProfile] = None,
        tracker: Optional[FrequencyTracker] = None,
        confidence_threshold: float = 0.6,
        min_hit_rate: float = 0.3,
        hit_window: int = 50,
        reduce_epochs: int = 4,
        seed: int = 0,
    ) -> None:
        self.server_model = server_model
        self.train_set = train_set
        self.device = device or DeviceProfile()
        self.tracker = tracker or FrequencyTracker()
        self.confidence_threshold = confidence_threshold
        self.min_hit_rate = min_hit_rate
        self.reduce_epochs = reduce_epochs
        self.seed = seed
        self.stats = CacheStats()
        self.cached: Optional[ReducedClassModel] = None
        self._recent_hits: Deque[bool] = deque(maxlen=hit_window)
        #: parameter ratio (reduced/full) of the most recently *installed*
        #: reduced model.  Survives invalidation: latency accounting for a
        #: "server-after-miss" query must charge the cost of the small
        #: model that actually ran at miss time, not the full device cost.
        self._cached_ratio: Optional[float] = None

    # ------------------------------------------------------------------
    def _maybe_install(self) -> None:
        frequent = self.tracker.frequent_classes()
        if frequent is None:
            return
        width = self.device.width_fraction_for(self.server_model.num_parameters())
        reduced, class_map = shrink_staged_resnet(
            self.server_model,
            self.train_set,
            width_fraction=width,
            class_subset=frequent,
            epochs=self.reduce_epochs,
            seed=self.seed,
        )
        self.cached = ReducedClassModel(
            model=reduced,
            class_map=class_map,
            confidence_threshold=self.confidence_threshold,
        )
        self._cached_ratio = (
            reduced.num_parameters() / self.server_model.num_parameters()
        )
        self.stats.installs += 1
        self._recent_hits.clear()

    def _maybe_invalidate(self) -> None:
        if self.cached is None or len(self._recent_hits) < self._recent_hits.maxlen:
            return
        rate = sum(self._recent_hits) / len(self._recent_hits)
        if rate < self.min_hit_rate:
            self.cached = None
            self.stats.invalidations += 1
            self.tracker.reset()
            self._recent_hits.clear()

    def _server_predict(self, x: np.ndarray) -> Tuple[int, float]:
        probs = self.server_model.predict_proba(x[None] if x.ndim == 3 else x)[-1][0]
        return int(probs.argmax()), float(probs.max())

    def query(self, x: np.ndarray) -> Dict[str, object]:
        """Serve one input; returns prediction, confidence, and provenance."""
        if self.cached is not None:
            prediction, confidence = self.cached.predict(x)
            if prediction is not None:
                self.stats.local_hits += 1
                self._recent_hits.append(True)
                self.tracker.observe(prediction)
                return {
                    "prediction": prediction,
                    "confidence": confidence,
                    "source": "cache",
                }
            self.stats.local_misses += 1
            self._recent_hits.append(False)
            prediction, confidence = self._server_predict(x)
            self.tracker.observe(prediction)
            self._maybe_invalidate()
            return {
                "prediction": prediction,
                "confidence": confidence,
                "source": "server-after-miss",
            }
        self.stats.server_only += 1
        prediction, confidence = self._server_predict(x)
        self.tracker.observe(prediction)
        self._maybe_install()
        return {
            "prediction": prediction,
            "confidence": confidence,
            "source": "server",
        }

    # ------------------------------------------------------------------
    def estimated_latency_ms(self, source: str, server_infer_ms: float = 30.0) -> float:
        """Modelled per-query latency for each provenance class."""
        device_infer = server_infer_ms * self.device.compute_slowdown
        if source == "cache":
            # Reduced model is far smaller; scale by parameter ratio.  With
            # no model currently installed, fall back to the ratio of the
            # last one installed: an invalidated cache's miss-time local
            # attempts ran *that* model, so charging the full device cost
            # (ratio 1.0) would overstate the miss penalty.
            if self.cached is not None:
                ratio = (
                    self.cached.model.num_parameters()
                    / self.server_model.num_parameters()
                )
            elif self._cached_ratio is not None:
                ratio = self._cached_ratio
            else:
                ratio = 1.0
            return device_infer * ratio
        if source == "server-after-miss":
            return self.estimated_latency_ms("cache") + (
                self.device.network_rtt_ms + server_infer_ms
            )
        return self.device.network_rtt_ms + server_infer_ms
