"""Model reduction and caching (Sec. II-B) — the DeepIoT substrate.

Implements both compression families the paper contrasts:

- **edge pruning** (the baseline): remove low-magnitude weights, producing a
  sparse matrix whose computational savings do *not* scale with sparsity
  because sparse algebra carries per-element overhead;
- **node pruning** (DeepIoT [5]): remove whole nodes/channels, producing a
  smaller *dense* model that keeps dense-algebra efficiency.

On top of these, :mod:`repro.compression.cache` implements the paper's model
caching: detect frequent classes at a device, train/reduce a small model for
just those classes, push it to the device, and treat low-confidence or
unknown-class outputs as cache misses that fall back to the full server
model.
"""

from .pruning import (
    EdgePruneResult,
    NodePruneResult,
    magnitude_edge_prune,
    node_prune_mlp,
    shrink_staged_resnet,
    sparse_storage_ratio,
    sparse_time_ratio,
)
from .cache import (
    CachedInferenceService,
    CacheStats,
    DeviceProfile,
    FrequencyTracker,
    ReducedClassModel,
)

__all__ = [
    "magnitude_edge_prune",
    "node_prune_mlp",
    "shrink_staged_resnet",
    "sparse_time_ratio",
    "sparse_storage_ratio",
    "EdgePruneResult",
    "NodePruneResult",
    "FrequencyTracker",
    "ReducedClassModel",
    "CachedInferenceService",
    "CacheStats",
    "DeviceProfile",
]
