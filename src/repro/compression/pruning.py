"""Edge pruning vs node pruning (Sec. II-B).

The paper's argument, reproduced here quantitatively:

    "prior work has shown that these reductions do not scale proportionally
    to the fraction of zero entries in the sparse matrix ... because sparse
    matrix algebra is not as efficient as dense matrix algebra ...  A
    promising solution ... removes nodes instead of edges ...  Removal of
    entire nodes ... produces a new matrix that is also dense, but that has
    smaller dimensions."

:func:`sparse_time_ratio` models the sparse-overhead effect;
:func:`node_prune_mlp` actually rebuilds smaller dense layers; and
:func:`shrink_staged_resnet` is the service-level reduction used by the
caching layer — it trains a narrower staged network (fewer channels per
stage) on a target class subset, optionally distilling from the full model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..nn import functional as F
from ..nn.data import Dataset
from ..nn.layers import Dense, Module, ReLU, Sequential
from ..nn.resnet import StagedResNet, StagedResNetConfig
from ..nn.tensor import Tensor
from ..nn.training import train_staged_model


# ----------------------------------------------------------------------
# Sparse-execution cost models (the "why edge pruning disappoints" math)
# ----------------------------------------------------------------------
def sparse_time_ratio(sparsity: float, overhead: float = 4.0) -> float:
    """Relative execution time of a sparsity-pruned layer vs its dense original.

    Sparse formats pay ``overhead`` x per nonzero (index chasing, poor
    vectorization), and a runtime would fall back to dense execution when
    sparse would be slower, so the ratio is ``min(1, overhead * nnz_frac)``.
    With the default 4x overhead, pruning pays off only past 75% sparsity —
    the non-proportional scaling the paper points at.
    """
    if not 0.0 <= sparsity <= 1.0:
        raise ValueError("sparsity must be in [0, 1]")
    if overhead < 1.0:
        raise ValueError("sparse overhead cannot be below 1")
    return min(1.0, overhead * (1.0 - sparsity))


def sparse_storage_ratio(sparsity: float, index_overhead: float = 1.0) -> float:
    """Relative storage of CSR-style sparse vs dense (value + index per nnz)."""
    if not 0.0 <= sparsity <= 1.0:
        raise ValueError("sparsity must be in [0, 1]")
    return min(1.0, (1.0 + index_overhead) * (1.0 - sparsity))


# ----------------------------------------------------------------------
# Edge pruning
# ----------------------------------------------------------------------
@dataclass
class EdgePruneResult:
    """Outcome of magnitude edge pruning."""

    target_sparsity: float
    achieved_sparsity: float
    pruned_parameters: int
    total_parameters: int

    @property
    def time_ratio(self) -> float:
        """Modelled execution-time ratio of the pruned (sparse) model."""
        return sparse_time_ratio(self.achieved_sparsity)

    @property
    def storage_ratio(self) -> float:
        return sparse_storage_ratio(self.achieved_sparsity)


def magnitude_edge_prune(model: Module, sparsity: float) -> EdgePruneResult:
    """Zero the globally smallest-magnitude weights of ``model`` in place.

    Biases and batch-norm affine parameters are spared (standard practice —
    they are O(nodes), not O(edges)).
    """
    if not 0.0 <= sparsity < 1.0:
        raise ValueError("sparsity must be in [0, 1)")
    weights = [
        p for name, p in model.named_parameters()
        if name.endswith("weight") and p.data.ndim >= 2
    ]
    if not weights:
        raise ValueError("model has no prunable weight matrices")
    all_magnitudes = np.concatenate([np.abs(p.data).reshape(-1) for p in weights])
    total = all_magnitudes.size
    k = int(round(sparsity * total))
    if k > 0:
        threshold = np.partition(all_magnitudes, k - 1)[k - 1]
        pruned = 0
        for p in weights:
            mask = np.abs(p.data) > threshold
            pruned += int((~mask).sum())
            p.data = p.data * mask
    else:
        pruned = 0
    return EdgePruneResult(
        target_sparsity=sparsity,
        achieved_sparsity=pruned / total,
        pruned_parameters=pruned,
        total_parameters=total,
    )


# ----------------------------------------------------------------------
# Node pruning (DeepIoT-style, on MLPs)
# ----------------------------------------------------------------------
@dataclass
class NodePruneResult:
    """Outcome of node pruning: a new, smaller dense network."""

    model: Sequential
    kept_nodes: List[np.ndarray]
    original_parameters: int
    pruned_parameters: int

    @property
    def parameter_ratio(self) -> float:
        return self.pruned_parameters / self.original_parameters

    @property
    def time_ratio(self) -> float:
        """Dense algebra: execution time tracks the (dense) parameter count."""
        return self.parameter_ratio


def _node_importance(incoming: np.ndarray, outgoing: np.ndarray) -> np.ndarray:
    """Importance of hidden nodes: product of incoming and outgoing energy.

    A node matters only if it both receives signal and forwards it — the
    same intuition DeepIoT's compressor network learns, computed here in
    closed form from weight magnitudes.
    """
    in_energy = np.sqrt((incoming**2).sum(axis=0))
    out_energy = np.sqrt((outgoing**2).sum(axis=1))
    return in_energy * out_energy


def node_prune_mlp(model: Sequential, keep_fraction: float) -> NodePruneResult:
    """Rebuild an MLP keeping the top ``keep_fraction`` of each hidden layer.

    ``model`` must be a Sequential of Dense layers (ReLU and other stateless
    activations allowed between them).  Input and output dimensions are
    preserved; every hidden width is reduced, and surviving weights are
    copied so the pruned model needs only light fine-tuning.
    """
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError("keep_fraction must be in (0, 1]")
    dense_layers = [m for m in model if isinstance(m, Dense)]
    if len(dense_layers) < 2:
        raise ValueError("node pruning needs at least two Dense layers")

    # Decide survivors per hidden interface (between consecutive Dense layers).
    kept: List[np.ndarray] = []
    for a, b in zip(dense_layers[:-1], dense_layers[1:]):
        importance = _node_importance(a.weight.data, b.weight.data)
        n_keep = max(1, int(round(keep_fraction * len(importance))))
        survivors = np.sort(np.argsort(importance)[::-1][:n_keep])
        kept.append(survivors)

    # Rebuild the Sequential, slicing weights along kept dimensions.
    new_layers: List[Module] = []
    dense_idx = 0
    for layer in model:
        if not isinstance(layer, Dense):
            new_layers.append(type(layer)())
            continue
        in_keep = kept[dense_idx - 1] if dense_idx > 0 else np.arange(layer.in_features)
        out_keep = (
            kept[dense_idx]
            if dense_idx < len(dense_layers) - 1
            else np.arange(layer.out_features)
        )
        new_dense = Dense(len(in_keep), len(out_keep), bias=layer.bias is not None)
        new_dense.weight.data = layer.weight.data[np.ix_(in_keep, out_keep)].copy()
        if layer.bias is not None:
            new_dense.bias.data = layer.bias.data[out_keep].copy()
        new_layers.append(new_dense)
        dense_idx += 1

    pruned_model = Sequential(*new_layers)
    return NodePruneResult(
        model=pruned_model,
        kept_nodes=kept,
        original_parameters=model.num_parameters(),
        pruned_parameters=pruned_model.num_parameters(),
    )


# ----------------------------------------------------------------------
# Service-level reduction of the staged ResNet (feeds the caching layer)
# ----------------------------------------------------------------------
def shrink_staged_resnet(
    reference: StagedResNet,
    train_set: Dataset,
    width_fraction: float = 0.5,
    class_subset: Optional[Sequence[int]] = None,
    epochs: int = 6,
    lr: float = 1e-2,
    seed: int = 0,
) -> Tuple[StagedResNet, Dict[int, int]]:
    """Train a reduced staged network, optionally specialized to a class subset.

    This is the reduction service of Sec. II-B: given the full model and the
    data pool, produce a narrower network (``width_fraction`` of every stage's
    channels).  With ``class_subset`` the reduced model is trained only on
    those classes **plus a catch-all "other" class** built from the remaining
    samples — predicting "other" is how the device detects a cache miss.

    Returns ``(model, class_map)`` where ``class_map`` maps original class id
    to the reduced model's output index; the "other" class occupies the last
    index and is absent from the map.
    """
    if not 0.0 < width_fraction <= 1.0:
        raise ValueError("width_fraction must be in (0, 1]")
    cfg = reference.config
    channels = tuple(max(2, int(round(c * width_fraction))) for c in cfg.stage_channels)

    if class_subset is None:
        class_map = {c: c for c in range(cfg.num_classes)}
        inputs, labels = train_set.inputs, train_set.labels
        num_out = cfg.num_classes
    else:
        class_subset = sorted(set(int(c) for c in class_subset))
        if not class_subset:
            raise ValueError("class_subset must not be empty")
        if any(c < 0 or c >= cfg.num_classes for c in class_subset):
            raise ValueError("class_subset contains an unknown class")
        class_map = {c: i for i, c in enumerate(class_subset)}
        other_index = len(class_subset)
        labels = np.array(
            [class_map.get(int(y), other_index) for y in train_set.labels]
        )
        inputs = train_set.inputs
        num_out = len(class_subset) + 1

    reduced_cfg = StagedResNetConfig(
        num_classes=num_out,
        in_channels=cfg.in_channels,
        image_size=cfg.image_size,
        stage_channels=channels,
        blocks_per_stage=cfg.blocks_per_stage,
        seed=seed,
    )
    reduced = StagedResNet(reduced_cfg)
    train_staged_model(
        reduced, Dataset(inputs, labels), epochs=epochs, lr=lr, seed=seed
    )
    return reduced, class_map
