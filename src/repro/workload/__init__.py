"""repro.workload — million-request workload engine with tenancy.

The north star claims "heavy traffic from millions of users"; this
package is the layer that makes the claim testable instead of a slogan
(ROADMAP item 5, with IBM Deep Learning Service — PAPERS.md — as the
reference shape for the multi-tenant cloud tier):

- :mod:`repro.workload.tenants` — tenant populations: per-tenant arrival
  rates, fair-share weights and endpoint mixes over all 11 service
  endpoints.
- :mod:`repro.workload.trace` — seeded trace generators (inhomogeneous
  Poisson by thinning): diurnal cycles, MMPP bursts and correlated flash
  crowds, producing packed numpy arrival arrays that scale to millions
  of requests.
- :mod:`repro.workload.engine` — a purpose-built discrete-event
  simulator pushing a trace through the *real*
  :class:`~repro.admission.AdmissionController` on virtual time, with
  deficit-round-robin dispatch and per-tenant latency/goodput/shed
  accounting.  ≥10⁶ requests in seconds of wall clock.
- :mod:`repro.workload.driver` — the live half: the same trace replayed
  against a real :func:`~repro.cluster.make_cluster` router through
  tenant-stamped :class:`~repro.service.EugeneClient`\\ s, with exact
  per-tenant accounting cross-checked against the router's
  ``cluster_snapshot()``.

The isolation experiment (:mod:`repro.experiments.isolation`, gated by
``make isolation``) composes all four: it proves one abusive tenant at
10x its quota cannot degrade a compliant tenant's p99 by more than 25%
nor its goodput by more than 5% versus running alone.
"""

from .driver import ClusterDriver, DriverReport, TenantOutcome
from .engine import EngineConfig, TenantReport, WorkloadEngine, WorkloadReport
from .tenants import ENDPOINTS, TenantSpec, uniform_mix
from .trace import FlashCrowd, Trace, generate_trace

__all__ = [
    "ENDPOINTS",
    "TenantSpec",
    "uniform_mix",
    "FlashCrowd",
    "Trace",
    "generate_trace",
    "EngineConfig",
    "WorkloadEngine",
    "WorkloadReport",
    "TenantReport",
    "ClusterDriver",
    "DriverReport",
    "TenantOutcome",
]
