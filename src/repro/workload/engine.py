"""The workload engine: a million-request DES over the real admission path.

A purpose-built discrete-event loop (deliberately *not* the oracle-table
:class:`~repro.scheduler.simulator.PoolSimulator`, which models staged
execution in detail and costs far too much per event for 10⁶-request
traces).  The engine models the serving tier at the queueing level:

- arrivals come from a packed :class:`~repro.workload.trace.Trace`;
- every arrival passes through a **real**
  :class:`~repro.admission.AdmissionController` driven at virtual time
  (``admit(..., now=t)``) — the same code path, token buckets and
  weighted-fair tenant quotas the live service runs;
- admitted requests queue per tenant and are dispatched to ``servers``
  identical servers by deficit-round-robin with quanta proportional to
  tenant weights (fair queueing at the dispatch layer, mirroring the
  fair sharing at admission);
- service times are exponential with per-endpoint means.

Accounting is exact by construction: the engine counts every arrival
into per-tenant integers and cross-checks them against the controller's
own :meth:`~repro.admission.AdmissionController.tenant_stats` — the
acceptance gate of ``make isolation``.
"""

from __future__ import annotations

import heapq
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..admission import AdmissionController
from ..telemetry.metrics import Histogram
from .tenants import ENDPOINTS
from .trace import Trace

#: Default per-endpoint mean service times (seconds) — shaped like the
#: relative endpoint costs of the live service (training-like endpoints
#: orders of magnitude heavier than serving reads).
DEFAULT_SERVICE_TIMES_S: Dict[str, float] = {
    "train": 0.50,
    "train_deepsense": 0.40,
    "train_estimator": 0.10,
    "classify": 0.004,
    "label": 0.08,
    "reduce": 0.12,
    "profile": 0.003,
    "calibrate": 0.06,
    "estimate": 0.002,
    "infer": 0.008,
    "delete": 0.001,
}


@dataclass(frozen=True)
class EngineConfig:
    """Knobs of the queueing model."""

    servers: int = 8
    service_times_s: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_SERVICE_TIMES_S)
    )
    #: bound on the total admitted-but-unserved queue; beyond it new
    #: admissions are shed (the admission layer should be sized to make
    #: this rare — it models the hard memory bound of a real tier).
    max_queue: int = 10_000
    #: a served request counts toward goodput when its sojourn time
    #: (arrival → completion) is within this bound.
    slo_s: float = 1.0

    def __post_init__(self) -> None:
        if self.servers < 1:
            raise ValueError("servers must be >= 1")
        if self.max_queue < 1:
            raise ValueError("max_queue must be >= 1")
        if self.slo_s <= 0:
            raise ValueError("slo_s must be positive")
        for endpoint, mean in self.service_times_s.items():
            if endpoint not in ENDPOINTS:
                raise ValueError(f"unknown endpoint {endpoint!r}")
            if mean <= 0:
                raise ValueError("service times must be positive")


@dataclass
class TenantReport:
    """One tenant's outcome over a run (exact integer accounting)."""

    arrivals: int = 0
    admitted: int = 0
    rejected: int = 0
    queue_shed: int = 0
    served: int = 0
    within_slo: int = 0
    borrowed: int = 0
    p50_ms: float = float("nan")
    p95_ms: float = float("nan")
    p99_ms: float = float("nan")
    #: within-SLO completions per second of trace time.
    goodput_per_s: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return dict(self.__dict__)


@dataclass
class WorkloadReport:
    """Engine run outcome: totals, per-tenant reports, invariant checks."""

    duration_s: float
    #: virtual time at which the last admitted request finished (the
    #: offered window plus the drain tail).
    completed_s: float
    total_arrivals: int
    total_admitted: int
    total_rejected: int
    total_served: int
    tenants: Dict[str, TenantReport]
    #: True when per-tenant integers sum exactly to the totals AND match
    #: the admission controller's own accounting.
    accounting_exact: bool
    accounting_detail: str = ""

    def as_dict(self) -> Dict[str, object]:
        return {
            "duration_s": self.duration_s,
            "completed_s": self.completed_s,
            "total_arrivals": self.total_arrivals,
            "total_admitted": self.total_admitted,
            "total_rejected": self.total_rejected,
            "total_served": self.total_served,
            "accounting_exact": self.accounting_exact,
            "accounting_detail": self.accounting_detail,
            "tenants": {t: r.as_dict() for t, r in self.tenants.items()},
        }


class _TenantRun:
    """Mutable per-tenant state during a run."""

    __slots__ = (
        "name", "weight", "queue", "deficit", "granted", "report", "latency",
    )

    def __init__(self, name: str, weight: float) -> None:
        self.name = name
        self.weight = weight
        self.queue: deque = deque()
        self.deficit = 0.0
        #: quantum already granted for the current head-of-rotation visit
        #: (a visit can span many dispatch() calls as servers free).
        self.granted = False
        self.report = TenantReport()
        self.latency = Histogram(f"workload.latency.{name}", lo=1e-5)


class WorkloadEngine:
    """Drives a :class:`Trace` through admission + queueing on virtual time.

    ``weights`` assigns the deficit-round-robin dispatch quanta (default
    1.0 per tenant — equal service shares once admitted); pass the same
    weights the controller's :class:`~repro.admission.TenantQuota`\\ s
    use so dispatch fairness mirrors admission fairness.
    """

    def __init__(
        self,
        config: Optional[EngineConfig] = None,
        admission: Optional[AdmissionController] = None,
        weights: Optional[Mapping[str, float]] = None,
        seed: int = 0,
    ) -> None:
        self.config = config or EngineConfig()
        self.admission = admission
        self.weights = dict(weights or {})
        for name, weight in self.weights.items():
            if weight <= 0:
                raise ValueError(f"weight for {name!r} must be positive")
        self.seed = seed

    def run(self, trace: Trace) -> WorkloadReport:
        cfg = self.config
        admission = self.admission
        rng = np.random.default_rng(self.seed)
        tenants = [
            _TenantRun(name, self.weights.get(name, 1.0))
            for name in trace.tenant_names
        ]
        service_means = np.array(
            [cfg.service_times_s.get(e, 0.005) for e in ENDPOINTS]
        )
        times = trace.times
        tenant_idx = trace.tenant_idx
        endpoint_idx = trace.endpoint_idx
        n = len(times)
        # Pre-drawn exponential service factors — one vectorised draw
        # instead of 10⁶ scalar rng calls inside the loop.
        service_draws = rng.exponential(1.0, size=n)
        free_servers = cfg.servers
        departures: List[Tuple[float, int, int, float]] = []  # (t, tenant, _, arrival_t)
        active: deque = deque()  # round-robin order of tenants with work
        active_set = [False] * len(tenants)
        queued_total = 0
        total_admitted = 0
        total_rejected = 0
        total_served = 0
        seq = 0
        i = 0
        now = 0.0

        def dispatch(now: float) -> None:
            """Deficit-round-robin: hand free servers to queued tenants.

            A tenant's quantum (== its weight) is granted exactly once per
            visit to the head of the rotation and consumed across however
            many dispatch() calls the visit spans — servers usually free
            one at a time, so re-granting per call would erase the
            weights and serve every backlogged tenant 1:1.  The head
            rotates to the back only once its quantum is spent; an
            emptied tenant leaves the rotation and forfeits its deficit.
            """
            nonlocal free_servers, queued_total, total_served, seq
            while free_servers > 0 and active:
                ti = active[0]
                run = tenants[ti]
                if not run.queue:
                    active.popleft()
                    active_set[ti] = False
                    run.deficit = 0.0
                    run.granted = False
                    continue
                if not run.granted:
                    run.deficit += run.weight
                    run.granted = True
                if run.deficit < 1.0:
                    # Quantum spent with backlog remaining: rotate.  The
                    # head must never keep first claim on every freed
                    # server, or a flooding tenant would starve the rest.
                    # (Sub-unit weights keep their deficit and accumulate
                    # it across visits.)
                    run.granted = False
                    active.rotate(-1)
                    continue
                run.deficit -= 1.0
                arrival_t, draw_idx = run.queue.popleft()
                queued_total -= 1
                mean = service_means[endpoint_idx[draw_idx]]
                finish = now + mean * service_draws[draw_idx]
                seq += 1
                heapq.heappush(departures, (finish, ti, seq, arrival_t))
                free_servers -= 1

        while i < n or departures:
            take_arrival = i < n and (
                not departures or times[i] <= departures[0][0]
            )
            if take_arrival:
                now = times[i]
                ti = int(tenant_idx[i])
                run = tenants[ti]
                run.report.arrivals += 1
                decision = None
                if admission is not None:
                    decision = admission.admit(
                        ENDPOINTS[endpoint_idx[i]],
                        tenant=run.name,
                        now=now,
                    )
                if decision is not None and not decision.admitted:
                    run.report.rejected += 1
                    total_rejected += 1
                elif queued_total >= cfg.max_queue:
                    run.report.queue_shed += 1
                    run.report.rejected += 1
                    total_rejected += 1
                else:
                    run.report.admitted += 1
                    if decision is not None and decision.borrowed:
                        run.report.borrowed += 1
                    total_admitted += 1
                    run.queue.append((now, i))
                    queued_total += 1
                    if not active_set[ti]:
                        active.append(ti)
                        active_set[ti] = True
                    if free_servers > 0:
                        dispatch(now)
                i += 1
            else:
                finish, ti, _seq, arrival_t = heapq.heappop(departures)
                now = finish
                run = tenants[ti]
                sojourn = finish - arrival_t
                run.report.served += 1
                total_served += 1
                if sojourn <= cfg.slo_s:
                    run.report.within_slo += 1
                run.latency.observe(sojourn)
                free_servers += 1
                if active:
                    dispatch(now)

        # Goodput normalizes to the *offered* window, not the drain tail:
        # a heavier run finishing its backlog later must not deflate the
        # per-second rates of every tenant.
        duration = trace.duration_s
        reports: Dict[str, TenantReport] = {}
        for run in tenants:
            rep = run.report
            if rep.served:
                q = run.latency.percentiles()
                rep.p50_ms = 1e3 * q["p50"]
                rep.p95_ms = 1e3 * q["p95"]
                rep.p99_ms = 1e3 * q["p99"]
            rep.goodput_per_s = rep.within_slo / duration
            reports[run.name] = rep
        exact, detail = self._check_accounting(
            reports, n, total_admitted, total_rejected, total_served
        )
        return WorkloadReport(
            duration_s=duration,
            completed_s=max(duration, now),
            total_arrivals=n,
            total_admitted=total_admitted,
            total_rejected=total_rejected,
            total_served=total_served,
            tenants=reports,
            accounting_exact=exact,
            accounting_detail=detail,
        )

    def _check_accounting(
        self,
        reports: Dict[str, TenantReport],
        total_arrivals: int,
        total_admitted: int,
        total_rejected: int,
        total_served: int,
    ) -> Tuple[bool, str]:
        """Exactness: per-tenant sums equal totals; controller agrees."""
        sum_arrivals = sum(r.arrivals for r in reports.values())
        sum_admitted = sum(r.admitted for r in reports.values())
        sum_rejected = sum(r.rejected for r in reports.values())
        sum_served = sum(r.served for r in reports.values())
        problems = []
        if sum_arrivals != total_arrivals:
            problems.append(
                f"arrivals {sum_arrivals} != total {total_arrivals}"
            )
        if sum_admitted != total_admitted:
            problems.append(
                f"admitted {sum_admitted} != total {total_admitted}"
            )
        if sum_rejected != total_rejected:
            problems.append(
                f"rejected {sum_rejected} != total {total_rejected}"
            )
        if sum_admitted + sum_rejected != total_arrivals:
            problems.append("admitted + rejected != arrivals")
        if sum_served != total_served:
            problems.append(f"served {sum_served} != total {total_served}")
        if self.admission is not None:
            stats = self.admission.tenant_stats()
            for name, rep in reports.items():
                s = stats.get(name)
                if s is None:
                    if rep.arrivals:
                        problems.append(f"controller missing tenant {name}")
                    continue
                # The controller never saw queue-shed requests as
                # rejections (they were admitted, then shed at the queue
                # bound), so its split differs by exactly that count.
                if s["admitted"] != rep.admitted + rep.queue_shed:
                    problems.append(
                        f"controller admitted {s['admitted']} != engine "
                        f"{rep.admitted} + queue_shed {rep.queue_shed} "
                        f"for {name}"
                    )
                if s["rejected"] != rep.rejected - rep.queue_shed:
                    problems.append(
                        f"controller rejected {s['rejected']} != engine "
                        f"{rep.rejected} - queue_shed {rep.queue_shed} "
                        f"for {name}"
                    )
        return (not problems, "; ".join(problems))
