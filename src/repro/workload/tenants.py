"""Tenant populations for workload generation.

A :class:`TenantSpec` describes one tenant's traffic: base arrival rate,
admission fair-share weight, endpoint mix over all 11 service endpoints,
and the shape knobs the trace generator modulates (diurnal cycle, MMPP
bursts, flash-crowd membership).  Specs are pure data — the same specs
drive the DES engine and the real-cluster driver, and translate directly
into :class:`~repro.admission.TenantQuota` entries for the controller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

#: Every endpoint of the Eugene service API, in one canonical order —
#: the trace encodes endpoints as indices into this tuple.
ENDPOINTS: Tuple[str, ...] = (
    "train",
    "train_deepsense",
    "train_estimator",
    "classify",
    "label",
    "reduce",
    "profile",
    "calibrate",
    "estimate",
    "infer",
    "delete",
)


def uniform_mix() -> Dict[str, float]:
    """An even endpoint mix over all 11 endpoints."""
    p = 1.0 / len(ENDPOINTS)
    return {endpoint: p for endpoint in ENDPOINTS}


def serving_mix() -> Dict[str, float]:
    """A read-heavy mix shaped like a serving tier in steady state.

    Inference-style endpoints dominate; lifecycle endpoints (train,
    reduce, delete, …) trickle, mirroring how a deployed model is
    trained once and served many times.  Still covers all 11 endpoints.
    """
    return {
        "classify": 0.38,
        "estimate": 0.27,
        "profile": 0.15,
        "infer": 0.10,
        "calibrate": 0.02,
        "label": 0.02,
        "reduce": 0.02,
        "delete": 0.015,
        "train_estimator": 0.015,
        "train": 0.005,
        "train_deepsense": 0.005,
    }


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's traffic description.

    ``rate_per_s`` is the base mean arrival rate; the trace generator
    modulates it with the diurnal cycle, burst state and any flash crowd
    the tenant's ``flash_group`` joins.  ``weight`` is the tenant's
    admission fair-share weight (see :class:`~repro.admission.
    TenantQuota`).
    """

    name: str
    rate_per_s: float
    weight: float = 1.0
    endpoint_mix: Mapping[str, float] = field(default_factory=serving_mix)
    #: relative diurnal swing in [0, 1]: rate(t) scales by
    #: ``1 + amplitude * sin(2π t / period + phase)``.
    diurnal_amplitude: float = 0.0
    diurnal_period_s: float = 86400.0
    diurnal_phase: float = 0.0
    #: MMPP burst modulation: while in the burst state the rate is
    #: multiplied by ``burst_multiplier``; the tenant spends
    #: ``burst_fraction`` of its time there in expectation, in bursts of
    #: mean length ``burst_mean_s``.
    burst_multiplier: float = 1.0
    burst_fraction: float = 0.0
    burst_mean_s: float = 10.0
    #: flash-crowd membership: tenants sharing a group name spike
    #: together when a :class:`~repro.workload.trace.FlashCrowd` with
    #: that group fires (correlated demand).
    flash_group: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("tenant name must not be empty")
        if self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if not 0.0 <= self.diurnal_amplitude <= 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1]")
        if self.diurnal_period_s <= 0:
            raise ValueError("diurnal_period_s must be positive")
        if self.burst_multiplier < 1.0:
            raise ValueError("burst_multiplier must be >= 1")
        if not 0.0 <= self.burst_fraction < 1.0:
            raise ValueError("burst_fraction must be in [0, 1)")
        if self.burst_mean_s <= 0:
            raise ValueError("burst_mean_s must be positive")
        mix = dict(self.endpoint_mix)
        if not mix:
            raise ValueError("endpoint_mix must not be empty")
        unknown = set(mix) - set(ENDPOINTS)
        if unknown:
            raise ValueError(f"unknown endpoints in mix: {sorted(unknown)}")
        total = sum(mix.values())
        if total <= 0 or any(p < 0 for p in mix.values()):
            raise ValueError("endpoint_mix must be non-negative with mass")

    def normalized_mix(self) -> Tuple[float, ...]:
        """The mix as probabilities aligned with :data:`ENDPOINTS`."""
        mix = dict(self.endpoint_mix)
        total = sum(mix.values())
        return tuple(mix.get(endpoint, 0.0) / total for endpoint in ENDPOINTS)
