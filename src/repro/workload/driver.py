"""The live half of the workload engine: replay a trace onto a real cluster.

The :class:`ClusterDriver` takes the same :class:`~repro.workload.trace.
Trace` the DES consumes and pushes it through a real
:func:`~repro.cluster.make_cluster` router with tenant-stamped
:class:`~repro.service.EugeneClient`\\ s — every request travels the full
path (client resilience → router dedup/admission → replica service →
response), exercising all 11 endpoints with payloads sized for volume.

Replay is closed-loop at maximum throughput (inter-arrival gaps are not
honoured — the trace supplies *which* tenant calls *what*, in order; the
point is volume and accounting, not wall-clock realism).  Every feeder
thread counts its own outcomes per tenant in plain integers, and
:meth:`ClusterDriver.run` cross-checks those exact client-side counts
against the router's ``cluster_snapshot()`` tenant section and the
admission controller's accounting — the "per-tenant accounting exact"
half of the ``make isolation`` gate.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..cluster import make_cluster
from ..cluster.router import RouterConfig, ServiceRouter
from ..faults import BackpressureError, CircuitBreaker, RetryPolicy
from ..nn.data import Dataset
from ..nn.resnet import StagedResNet, StagedResNetConfig
from ..service.client import EugeneClient
from .tenants import ENDPOINTS
from .trace import Trace

_TINY_STAGED = StagedResNetConfig(
    num_classes=3, image_size=8, stage_channels=(4, 8), blocks_per_stage=1,
    seed=0,
)


@dataclass
class TenantOutcome:
    """Client-side exact accounting for one tenant."""

    issued: int = 0
    ok: int = 0
    rejected: int = 0
    errors: int = 0

    def merge(self, other: "TenantOutcome") -> None:
        self.issued += other.issued
        self.ok += other.ok
        self.rejected += other.rejected
        self.errors += other.errors


@dataclass
class DriverReport:
    """Outcome of one replay: totals, per-tenant outcomes, checks."""

    requests: int
    per_tenant: Dict[str, TenantOutcome]
    elapsed_s: float
    accounting_exact: bool
    accounting_detail: str = ""
    snapshot: Dict = field(default_factory=dict)

    @property
    def throughput_per_s(self) -> float:
        return self.requests / self.elapsed_s if self.elapsed_s else 0.0

    def as_dict(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "elapsed_s": self.elapsed_s,
            "throughput_per_s": self.throughput_per_s,
            "accounting_exact": self.accounting_exact,
            "accounting_detail": self.accounting_detail,
            "per_tenant": {
                t: dict(o.__dict__) for t, o in self.per_tenant.items()
            },
        }


def _no_trip_breaker() -> CircuitBreaker:
    # The driver wants every rejection surfaced individually (rejections
    # are data here, not faults) — a breaker that effectively never opens.
    return CircuitBreaker(failure_threshold=1_000_000_000)


class ClusterDriver:
    """Replays a trace against a real router with per-tenant clients."""

    def __init__(
        self,
        trace: Trace,
        num_replicas: int = 2,
        num_threads: int = 8,
        backend: str = "thread",
        admission=None,
        config: Optional[RouterConfig] = None,
        seed: int = 0,
    ) -> None:
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        self.trace = trace
        self.num_replicas = num_replicas
        self.num_threads = num_threads
        self.backend = backend
        self.admission = admission
        self.config = config or RouterConfig(call_timeout_s=30.0)
        self.seed = seed

    # ------------------------------------------------------------------
    def _build_estimator_request(self, rng: np.random.Generator):
        from ..service.messages import EstimatorTrainRequest

        return EstimatorTrainRequest(
            inputs=rng.normal(size=(12, 3)),
            targets=rng.normal(size=12),
            hidden=4,
            steps=5,
            name="wl-estimator",
        )

    def _client(self, router: ServiceRouter, tenant: str) -> EugeneClient:
        return EugeneClient(
            router,
            retry_policy=RetryPolicy(max_attempts=1),
            breaker_factory=_no_trip_breaker,
            tenant=tenant,
        )

    def _sweep_endpoints(
        self, router: ServiceRouter, models: Dict[str, str],
        rng: np.random.Generator,
    ) -> None:
        """Touch every endpoint once up front (coverage, placement warm)."""
        client = self._client(router, "__setup__")
        x1 = rng.normal(size=(1, 3, 8, 8))
        xs = rng.normal(size=(6, 3, 8, 8))
        ys = rng.integers(0, 3, size=6)
        tr = client.train(xs, ys, model_config=_TINY_STAGED, epochs=1,
                          batch_size=6)
        client.classify(models["staged"], x1)
        client.profile(models["staged"])
        client.calibrate(models["staged"], xs, ys, epochs=1)
        client.label(xs[:4], ys[:4], xs[4:], num_classes=3,
                     method="self-training", rounds=1)
        reduced = client.reduce(models["staged"], width_fraction=0.5, epochs=1)
        client.infer(models["staged"], x1, latency_constraint_s=10.0,
                     num_workers=1)
        ds = client.train_deepsense(
            rng.normal(size=(8, 2, 3, 4)), rng.integers(0, 2, size=8), steps=2
        )
        client.estimate(models["estimator"], rng.normal(size=(2, 3)))
        client.delete(reduced.model_id)
        client.delete(tr.model_id, cascade=True)
        client.delete(ds.model_id)

    # ------------------------------------------------------------------
    def run(self, limit: Optional[int] = None) -> DriverReport:
        """Replay the trace; returns exact per-tenant accounting.

        ``limit`` caps the number of replayed arrivals (smoke runs).
        """
        import time as _time

        trace = self.trace
        n = len(trace) if limit is None else min(limit, len(trace))
        router = make_cluster(
            self.num_replicas,
            backend=self.backend,
            seed=self.seed,
            admission=self.admission,
            config=self.config,
        )
        report: DriverReport
        with router:
            rng = np.random.default_rng(self.seed)
            inputs = rng.normal(size=(16, 3, 8, 8))
            labels = rng.integers(0, 3, size=16)
            staged = router.register_model(
                "wl-staged", StagedResNet(_TINY_STAGED),
                train_set=Dataset(inputs, labels),
            )
            est = router.train_estimator(self._build_estimator_request(rng))
            models = {"staged": staged, "estimator": est.model_id}
            self._sweep_endpoints(router, models, rng)
            setup_snapshot = router.cluster_snapshot()
            baseline = {
                t: dict(v)
                for t, v in setup_snapshot.get("tenants", {}).items()
            }
            # Disposable-model pool feeding ``delete`` (refilled by
            # ``reduce``/``train_estimator`` calls during the replay).
            disposables: deque = deque()
            outcomes: List[Dict[str, TenantOutcome]] = []
            start = _time.perf_counter()
            threads = []
            for j in range(self.num_threads):
                out: Dict[str, TenantOutcome] = {}
                outcomes.append(out)
                t = threading.Thread(
                    target=self._feed,
                    args=(router, models, disposables, out, j, n),
                    name=f"wl-feeder-{j}",
                    daemon=True,
                )
                threads.append(t)
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            elapsed = _time.perf_counter() - start
            merged: Dict[str, TenantOutcome] = {}
            for out in outcomes:
                for tenant, outcome in out.items():
                    merged.setdefault(tenant, TenantOutcome()).merge(outcome)
            snapshot = router.cluster_snapshot()
            exact, detail = self._check_accounting(
                merged, snapshot, baseline
            )
            report = DriverReport(
                requests=sum(o.issued for o in merged.values()),
                per_tenant=merged,
                elapsed_s=elapsed,
                accounting_exact=exact,
                accounting_detail=detail,
                snapshot=snapshot,
            )
        return report

    # ------------------------------------------------------------------
    def _feed(
        self,
        router: ServiceRouter,
        models: Dict[str, str],
        disposables: deque,
        out: Dict[str, TenantOutcome],
        thread_index: int,
        n: int,
    ) -> None:
        """One feeder thread: replays arrivals ``thread_index::T``."""
        trace = self.trace
        rng = np.random.default_rng((self.seed, thread_index))
        x1 = rng.normal(size=(1, 3, 8, 8))
        xs = rng.normal(size=(6, 3, 8, 8))
        ys = rng.integers(0, 3, size=6)
        xe = rng.normal(size=(1, 3))
        clients: Dict[str, EugeneClient] = {}
        staged = models["staged"]
        estimator = models["estimator"]

        def outcome(tenant: str) -> TenantOutcome:
            o = out.get(tenant)
            if o is None:
                o = out[tenant] = TenantOutcome()
            return o

        def call(tenant: str, fn) -> bool:
            """Issue one router call; returns True when served."""
            o = outcome(tenant)
            o.issued += 1
            try:
                fn()
            except BackpressureError:
                o.rejected += 1
                return False
            except Exception:
                o.errors += 1
                return False
            o.ok += 1
            return True

        for i in range(thread_index, n, self.num_threads):
            tenant = trace.tenant_names[trace.tenant_idx[i]]
            endpoint = ENDPOINTS[trace.endpoint_idx[i]]
            client = clients.get(tenant)
            if client is None:
                client = clients[tenant] = self._client(router, tenant)
            if endpoint == "classify":
                call(tenant, lambda: client.classify(staged, x1))
            elif endpoint == "estimate":
                call(tenant, lambda: client.estimate(estimator, xe))
            elif endpoint == "profile":
                call(tenant, lambda: client.profile(staged))
            elif endpoint == "infer":
                call(tenant, lambda: client.infer(
                    staged, x1, latency_constraint_s=10.0, num_workers=1
                ))
            elif endpoint == "calibrate":
                call(tenant, lambda: client.calibrate(staged, xs, ys, epochs=1))
            elif endpoint == "label":
                call(tenant, lambda: client.label(
                    xs[:4], ys[:4], xs[4:], num_classes=3,
                    method="self-training", rounds=1,
                ))
            elif endpoint == "reduce":
                result = {}

                def _reduce():
                    result["r"] = client.reduce(
                        staged, width_fraction=0.5, epochs=1
                    )

                if call(tenant, _reduce):
                    disposables.append(result["r"].model_id)
            elif endpoint == "train_estimator":
                result = {}

                def _train_est():
                    result["r"] = client.train_estimator(
                        xe.repeat(8, axis=0), rng.normal(size=8),
                        hidden=2, steps=2,
                    )

                if call(tenant, _train_est):
                    disposables.append(result["r"].model_id)
            elif endpoint == "train":
                result = {}

                def _train():
                    result["r"] = client.train(
                        xs, ys, model_config=_TINY_STAGED, epochs=1,
                        batch_size=6,
                    )

                if call(tenant, _train):
                    disposables.append(result["r"].model_id)
            elif endpoint == "train_deepsense":
                result = {}

                def _train_ds():
                    result["r"] = client.train_deepsense(
                        rng.normal(size=(8, 2, 3, 4)),
                        rng.integers(0, 2, size=8),
                        steps=1,
                    )

                if call(tenant, _train_ds):
                    disposables.append(result["r"].model_id)
            elif endpoint == "delete":
                try:
                    victim = disposables.popleft()
                except IndexError:
                    victim = None
                if victim is None:
                    # Nothing to delete yet: create-and-delete a tiny
                    # estimator (two calls, both counted).
                    result = {}

                    def _mk():
                        result["r"] = client.train_estimator(
                            xe.repeat(8, axis=0), rng.normal(size=8),
                            hidden=2, steps=1,
                        )

                    if call(tenant, _mk):
                        victim = result["r"].model_id
                if victim is not None:
                    call(
                        tenant,
                        lambda: client.delete(victim, cascade=True),
                    )

    # ------------------------------------------------------------------
    def _check_accounting(
        self,
        merged: Dict[str, TenantOutcome],
        snapshot: Dict,
        baseline: Dict[str, Dict],
    ) -> "tuple[bool, str]":
        """Client-side exact counts must reconcile with the router's view.

        ``baseline`` holds the tenant section right after setup, so the
        replay-phase deltas are compared (the setup sweep used its own
        ``__setup__`` tenant, but registration/training calls also pass
        through ``_routed``).
        """
        problems = []
        tenants_section = snapshot.get("tenants", {})
        total_issued = sum(o.issued for o in merged.values())
        total_ok = sum(o.ok for o in merged.values())
        total_rejected = sum(o.rejected for o in merged.values())
        total_errors = sum(o.errors for o in merged.values())
        if total_ok + total_rejected + total_errors != total_issued:
            problems.append("outcome split does not sum to issued")
        for tenant, outcome in merged.items():
            entry = tenants_section.get(tenant)
            if entry is None:
                problems.append(f"router snapshot missing tenant {tenant}")
                continue
            base = baseline.get(tenant, {})
            calls = entry.get("calls", 0.0) - base.get("calls", 0.0)
            served = entry.get("served", 0.0) - base.get("served", 0.0)
            rejected = entry.get("rejected", 0.0) - base.get("rejected", 0.0)
            if int(calls) != outcome.issued:
                problems.append(
                    f"{tenant}: router calls {int(calls)} != issued "
                    f"{outcome.issued}"
                )
            if int(rejected) != outcome.rejected:
                problems.append(
                    f"{tenant}: router rejected {int(rejected)} != client "
                    f"rejected {outcome.rejected}"
                )
            # An endpoint error propagates as an exception: the router
            # counted the call but neither served nor rejected it.
            if int(served) != outcome.ok:
                problems.append(
                    f"{tenant}: router served {int(served)} != client ok "
                    f"{outcome.ok}"
                )
            if int(calls - served - rejected) != outcome.errors:
                problems.append(
                    f"{tenant}: router unaccounted "
                    f"{int(calls - served - rejected)} != client errors "
                    f"{outcome.errors}"
                )
        return (not problems, "; ".join(problems))
