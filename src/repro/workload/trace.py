"""Seeded trace generation: inhomogeneous Poisson arrivals by thinning.

Each tenant's arrival process is a Poisson process whose instantaneous
rate is the base rate modulated by three multiplicative shapes:

- **diurnal cycle** — ``1 + A·sin(2π t/T + φ)``, the day/night swing;
- **MMPP bursts** — a two-state Markov-modulated process: sojourns in
  the burst state multiply the rate by ``burst_multiplier``;
- **flash crowds** — externally scheduled windows that multiply the
  rate of *every* tenant in a group at once (correlated demand — the
  case per-tenant quotas exist for).

Generation uses the standard thinning construction, fully vectorised:
draw a homogeneous Poisson at the peak rate, then keep each candidate
with probability ``rate(t)/rate_max``.  A million-request trace builds
in well under a second and packs into three numpy arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .tenants import ENDPOINTS, TenantSpec


@dataclass(frozen=True)
class FlashCrowd:
    """One correlated demand spike: every tenant whose ``flash_group``
    matches ``group`` runs at ``multiplier`` times its rate during
    ``[start_s, start_s + duration_s)``."""

    group: str
    start_s: float
    duration_s: float
    multiplier: float

    def __post_init__(self) -> None:
        if not self.group:
            raise ValueError("group must not be empty")
        if self.start_s < 0:
            raise ValueError("start_s must be non-negative")
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")


@dataclass
class Trace:
    """A packed arrival trace: parallel arrays sorted by arrival time."""

    #: arrival times in seconds from trace start (sorted, float64).
    times: np.ndarray
    #: index into :attr:`tenant_names` per arrival (int32).
    tenant_idx: np.ndarray
    #: index into :data:`~repro.workload.tenants.ENDPOINTS` (int8).
    endpoint_idx: np.ndarray
    tenant_names: Tuple[str, ...]
    duration_s: float
    seed: int

    def __len__(self) -> int:
        return len(self.times)

    def per_tenant_counts(self) -> Dict[str, int]:
        counts = np.bincount(self.tenant_idx, minlength=len(self.tenant_names))
        return {
            name: int(counts[i]) for i, name in enumerate(self.tenant_names)
        }

    def per_endpoint_counts(self) -> Dict[str, int]:
        counts = np.bincount(self.endpoint_idx, minlength=len(ENDPOINTS))
        return {
            endpoint: int(counts[i]) for i, endpoint in enumerate(ENDPOINTS)
        }


def _burst_state_boundaries(
    spec: TenantSpec, duration_s: float, rng: np.random.Generator
) -> Tuple[Optional[np.ndarray], bool]:
    """Sojourn boundaries of the two-state MMPP, and the starting state.

    Returns ``(boundaries, starts_bursty)``; ``boundaries`` is ``None``
    when the tenant has no burst modulation.
    """
    if spec.burst_fraction <= 0.0 or spec.burst_multiplier <= 1.0:
        return None, False
    mean_burst = spec.burst_mean_s
    # Stationary fraction f in the burst state: mean off sojourn is
    # burst_mean · (1-f)/f.
    f = spec.burst_fraction
    mean_off = mean_burst * (1.0 - f) / f
    starts_bursty = bool(rng.random() < f)
    # Draw alternating sojourns until the timeline is covered; the
    # expected count is duration / mean_sojourn, padded generously.
    mean_sojourn = 0.5 * (mean_burst + mean_off)
    est = max(16, int(4 * duration_s / max(mean_sojourn, 1e-9)))
    bursty = starts_bursty
    sojourns: List[np.ndarray] = []
    total = 0.0
    while total < duration_s:
        means = np.empty(est)
        means[0::2] = mean_burst if bursty else mean_off
        means[1::2] = mean_off if bursty else mean_burst
        chunk = rng.exponential(means)
        sojourns.append(chunk)
        total += float(chunk.sum())
        bursty = bursty if est % 2 == 0 else not bursty
    return np.cumsum(np.concatenate(sojourns)), starts_bursty


def _rate_multiplier(
    spec: TenantSpec,
    times: np.ndarray,
    boundaries: Optional[np.ndarray],
    starts_bursty: bool,
    flash_crowds: Sequence[FlashCrowd],
) -> np.ndarray:
    """Instantaneous rate multiplier (relative to base) at ``times``."""
    mult = 1.0 + spec.diurnal_amplitude * np.sin(
        2.0 * np.pi * times / spec.diurnal_period_s + spec.diurnal_phase
    )
    if boundaries is not None:
        # Interval index at each t; parity decides the MMPP state.
        interval = np.searchsorted(boundaries, times, side="right")
        in_burst = (interval % 2 == 0) == starts_bursty
        mult = mult * np.where(in_burst, spec.burst_multiplier, 1.0)
    for crowd in flash_crowds:
        if crowd.group != spec.flash_group:
            continue
        window = (times >= crowd.start_s) & (
            times < crowd.start_s + crowd.duration_s
        )
        mult = mult * np.where(window, crowd.multiplier, 1.0)
    return mult


def _peak_multiplier(
    spec: TenantSpec, flash_crowds: Sequence[FlashCrowd]
) -> float:
    peak = 1.0 + spec.diurnal_amplitude
    if spec.burst_fraction > 0.0:
        peak *= spec.burst_multiplier
    flash_peak = 1.0
    for crowd in flash_crowds:
        if crowd.group == spec.flash_group:
            flash_peak = max(flash_peak, crowd.multiplier)
    return peak * flash_peak


def generate_trace(
    tenants: Sequence[TenantSpec],
    duration_s: float,
    seed: int,
    flash_crowds: Sequence[FlashCrowd] = (),
) -> Trace:
    """Build one seeded arrival trace for a tenant population.

    Deterministic in ``(tenants, duration_s, seed, flash_crowds)``: each
    tenant draws from its own child generator, so adding a tenant never
    perturbs another tenant's arrivals (the isolation experiment relies
    on this to compare a tenant's traffic with and without an abuser).
    """
    if not tenants:
        raise ValueError("at least one tenant is required")
    if len({t.name for t in tenants}) != len(tenants):
        raise ValueError("tenant names must be unique")
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    all_times: List[np.ndarray] = []
    all_tenants: List[np.ndarray] = []
    all_endpoints: List[np.ndarray] = []
    root = np.random.SeedSequence(seed)
    for index, spec in enumerate(tenants):
        # Child seed from the tenant *name*, not the position: the same
        # tenant gets the same arrivals whether or not others exist.
        child = np.random.SeedSequence(
            entropy=root.entropy,
            spawn_key=(int.from_bytes(spec.name.encode(), "little") % (2**63),),
        )
        rng = np.random.default_rng(child)
        boundaries, starts_bursty = _burst_state_boundaries(
            spec, duration_s, rng
        )
        rate_max = spec.rate_per_s * _peak_multiplier(spec, flash_crowds)
        count = rng.poisson(rate_max * duration_s)
        if count == 0:
            continue
        candidates = np.sort(rng.uniform(0.0, duration_s, count))
        rates = spec.rate_per_s * _rate_multiplier(
            spec, candidates, boundaries, starts_bursty, flash_crowds
        )
        keep = rng.random(count) < rates / rate_max
        times = candidates[keep]
        if len(times) == 0:
            continue
        mix = np.asarray(spec.normalized_mix())
        endpoints = rng.choice(
            len(ENDPOINTS), size=len(times), p=mix
        ).astype(np.int8)
        all_times.append(times)
        all_tenants.append(np.full(len(times), index, dtype=np.int32))
        all_endpoints.append(endpoints)
    if not all_times:
        times = np.empty(0)
        tenant_idx = np.empty(0, dtype=np.int32)
        endpoint_idx = np.empty(0, dtype=np.int8)
    else:
        times = np.concatenate(all_times)
        tenant_idx = np.concatenate(all_tenants)
        endpoint_idx = np.concatenate(all_endpoints)
        order = np.argsort(times, kind="stable")
        times = times[order]
        tenant_idx = tenant_idx[order]
        endpoint_idx = endpoint_idx[order]
    return Trace(
        times=times,
        tenant_idx=tenant_idx,
        endpoint_idx=endpoint_idx,
        tenant_names=tuple(t.name for t in tenants),
        duration_s=float(duration_s),
        seed=seed,
    )
