"""Exception taxonomy of the fault-injection and resilience layer.

Two families:

- *Injected* faults — raised (or simulated) at a :func:`repro.faults.inject`
  site because the installed :class:`~repro.faults.plan.FaultPlan` decided
  to fire.  They model failures of the underlying system (a flaky network
  hop, a crashing worker process), not bugs in the caller.
- *Resilience* errors — raised by the recovery machinery itself when its
  budget runs out (retries exhausted, request deadline passed, circuit
  open).  These are the errors a well-behaved client surfaces to its user.
"""

from __future__ import annotations


class InjectedFault(RuntimeError):
    """Base class of every failure produced by an armed fault plan."""


class TransientServiceError(InjectedFault):
    """A retryable endpoint failure (the RPC analogue of a 503).

    :class:`~repro.faults.resilience.RetryPolicy` treats exactly this type
    (and its subclasses) as retryable; anything else propagates unchanged.
    """


class WorkerCrash(InjectedFault):
    """A worker thread dies mid-item; the runtime must respawn it."""


class CorruptedPayload(InjectedFault):
    """A stage result arrived mangled (NaN confidences, wrong shapes)."""


class BackpressureError(RuntimeError):
    """A typed admission rejection (the RPC analogue of a 429).

    Raised client-side when the service answers with a
    :class:`~repro.service.messages.RejectedResponse` — not an injected
    fault and not a caller bug, but the service explicitly refusing work
    under overload.  :class:`~repro.faults.resilience.RetryPolicy` treats
    it as retryable and honours ``retry_after_s`` when backing off.
    """

    def __init__(
        self,
        message: str,
        retry_after_s: float = 0.0,
        reason: str = "overload",
        endpoint: str = "",
    ) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)
        self.reason = reason
        self.endpoint = endpoint

    def __reduce__(self):
        # Default exception pickling only replays ``args`` (the message),
        # silently resetting the typed fields; a rejection crossing the
        # process-replica boundary must keep its retry_after_s.
        return (
            type(self),
            (self.args[0], self.retry_after_s, self.reason, self.endpoint),
        )


class ResilienceError(RuntimeError):
    """Base class of errors raised when recovery budgets are exhausted."""


class RetriesExhaustedError(ResilienceError):
    """Every retry attempt failed; carries the last underlying error."""

    def __init__(self, message: str, last_error: Exception) -> None:
        super().__init__(message)
        self.last_error = last_error

    def __reduce__(self):
        # ``args`` holds only the message while ``__init__`` demands two
        # positionals — without this, unpickling (e.g. crossing the
        # process-replica boundary) raises TypeError instead of
        # reconstructing the error.
        return (type(self), (self.args[0], self.last_error))


class RequestTimeoutError(ResilienceError, TimeoutError):
    """The per-request time budget ran out before an attempt succeeded."""


class CircuitOpenError(ResilienceError):
    """The endpoint's circuit breaker is open; the call was not attempted."""
