"""repro.faults — deterministic fault injection + the resilience layer.

Eugene's pitch is *predictable* intelligence-as-a-service; this package
provides the machinery that lets the test suite prove the serving stack
keeps its promises when the substrate misbehaves:

- :class:`FaultPlan` / :class:`FaultSpec` — a seeded, deterministic plan
  of faults (latency spikes, worker crashes/hangs, dropped stage results,
  corrupted payloads, transient endpoint errors) fired at *named sites*
  in the runtime, the service endpoints and the client;
- :class:`RetryPolicy` / :class:`CircuitBreaker` — the client-side
  recovery the injections exercise;
- :func:`install` / :func:`uninstall` / :func:`active` /
  :func:`plan_session` — the global session, mirroring
  :mod:`repro.telemetry`.

**Disarmed by default.**  Every injection site reduces to one
module-attribute read and a ``None`` check when no plan is installed, so
the serving fast path (guarded by ``make bench-fast`` /
``make bench-telemetry``) is untouched until a plan is explicitly armed::

    from repro import faults

    plan = faults.FaultPlan(seed=7, specs=[
        faults.FaultSpec("runtime.worker.stage", faults.CRASH, at=(1,)),
        faults.FaultSpec("service.classify", faults.ERROR, probability=0.3),
    ])
    with faults.plan_session(plan):
        ... drive the stack; inspect plan.log ...
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from typing import Callable, Iterator, Optional

from .errors import (
    BackpressureError,
    CircuitOpenError,
    CorruptedPayload,
    InjectedFault,
    RequestTimeoutError,
    ResilienceError,
    RetriesExhaustedError,
    TransientServiceError,
    WorkerCrash,
)
from .plan import (
    CORRUPT,
    CRASH,
    DROP,
    ERROR,
    FAULT_KINDS,
    HANG,
    LATENCY,
    FaultDecision,
    FaultLog,
    FaultPlan,
    FaultSpec,
)
from .resilience import CLOSED, HALF_OPEN, OPEN, CircuitBreaker, RetryPolicy

#: The module-global plan; ``None`` means injection is disarmed.  Sites
#: read this exactly once per invocation (via :func:`active`).
_plan: Optional[FaultPlan] = None


def install(plan: FaultPlan) -> FaultPlan:
    """Arm ``plan`` globally; replaces any previously installed plan."""
    global _plan
    _plan = plan
    return plan


def uninstall() -> None:
    """Disarm injection; every site reverts to a no-op."""
    global _plan
    _plan = None


def active() -> Optional[FaultPlan]:
    """The armed plan, or ``None`` when injection is disarmed."""
    return _plan


def armed() -> bool:
    return _plan is not None


@contextmanager
def plan_session(plan: Optional[FaultPlan] = None) -> Iterator[FaultPlan]:
    """Arm a plan for a scope, restoring the prior state on exit."""
    global _plan
    previous = _plan
    _plan = plan if plan is not None else FaultPlan()
    try:
        yield _plan
    finally:
        _plan = previous


def inject(site: str) -> Optional[FaultDecision]:
    """Consult the armed plan at ``site``; the disarmed fast path is one
    global read and a ``None`` check."""
    plan = _plan
    if plan is None:
        return None
    return plan.decide(site)


def perform(decision: Optional[FaultDecision]) -> Optional[FaultDecision]:
    """Apply the *generic* behaviours of a decision at the current site.

    ``latency``/``hang`` sleep; ``error`` raises
    :class:`TransientServiceError`; ``crash`` raises :class:`WorkerCrash`.
    ``drop`` and ``corrupt`` are returned unhandled — their meaning is
    site-specific (what exactly gets swallowed or mangled), so the call
    site must act on them itself.
    """
    if decision is None:
        return None
    if decision.kind in (LATENCY, HANG):
        if decision.latency_s > 0:
            time.sleep(decision.latency_s)
        return None
    if decision.kind == ERROR:
        raise TransientServiceError(
            f"injected transient error at {decision.site} "
            f"(invocation {decision.index})"
        )
    if decision.kind == CRASH:
        raise WorkerCrash(
            f"injected worker crash at {decision.site} "
            f"(invocation {decision.index})"
        )
    return decision


def endpoint(site: str) -> Callable:
    """Decorator arming a service endpoint as an injection site.

    Stacks *under* ``@telemetry.timed`` so injected errors are counted by
    the endpoint's ``service.errors.*`` telemetry.  Only the generic kinds
    make sense at an endpoint boundary: ``latency``/``hang`` stall the
    call, ``error`` raises a retryable :class:`TransientServiceError`.
    """

    def decorate(fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            plan = _plan
            if plan is not None:
                perform(plan.decide(site))
            return fn(*args, **kwargs)

        return wrapper

    return decorate


__all__ = [
    # plan
    "FaultPlan",
    "FaultSpec",
    "FaultDecision",
    "FaultLog",
    "FAULT_KINDS",
    "LATENCY",
    "HANG",
    "CRASH",
    "DROP",
    "CORRUPT",
    "ERROR",
    # session
    "install",
    "uninstall",
    "active",
    "armed",
    "plan_session",
    "inject",
    "perform",
    "endpoint",
    # resilience
    "RetryPolicy",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    # errors
    "InjectedFault",
    "TransientServiceError",
    "WorkerCrash",
    "CorruptedPayload",
    "ResilienceError",
    "RetriesExhaustedError",
    "RequestTimeoutError",
    "CircuitOpenError",
    "BackpressureError",
]
