"""Client-side recovery machinery: bounded retries and circuit breakers.

The fault plan injects failures; this module is the other half of the
contract — the handling that makes injection survivable.  Both pieces are
deliberately small and deterministic so chaos tests can assert exact
behaviour (attempt counts, breaker state transitions) rather than
statistics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterator, Optional, TypeVar

from .errors import (
    BackpressureError,
    CircuitOpenError,
    RequestTimeoutError,
    RetriesExhaustedError,
    TransientServiceError,
)

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff over :class:`TransientServiceError`.

    ``max_attempts`` counts *calls*, not retries: 4 attempts = 1 call + 3
    retries.  ``timeout_s`` is the per-request budget across all attempts
    (including backoff sleeps); when the budget cannot cover the next sleep
    the call fails with :class:`RequestTimeoutError` instead of overrunning.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.002
    multiplier: float = 2.0
    max_delay_s: float = 0.05
    timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_delay_s < 0:
            raise ValueError("base_delay_s must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.max_delay_s < self.base_delay_s:
            raise ValueError("max_delay_s must be >= base_delay_s")
        if self.timeout_s is not None and self.timeout_s <= 0:
            raise ValueError("timeout_s must be positive when given")

    def delays(self) -> Iterator[float]:
        """The backoff sleep before retry i (``max_attempts - 1`` values)."""
        delay = self.base_delay_s
        for _ in range(self.max_attempts - 1):
            yield min(delay, self.max_delay_s)
            delay *= self.multiplier

    def call(
        self,
        fn: Callable[[], T],
        on_retry: Optional[Callable[[int, Exception], None]] = None,
    ) -> T:
        """Run ``fn`` under this policy.

        Only :class:`TransientServiceError` and :class:`BackpressureError`
        are retried; any other exception propagates on the first
        occurrence.  A backpressure rejection carries a retry-after hint
        from the service's admission controller, and the backoff honours
        it: the sleep before the next attempt is at least that hint (still
        within the ``timeout_s`` budget).  ``on_retry(attempt, error)`` is
        invoked before each backoff sleep (telemetry hooks plug in here).
        """
        start = time.monotonic()
        delays = self.delays()
        last_error: Exception
        for attempt in range(1, self.max_attempts + 1):
            if (
                self.timeout_s is not None
                and time.monotonic() - start > self.timeout_s
            ):
                raise RequestTimeoutError(
                    f"request exceeded {self.timeout_s:g}s budget "
                    f"after {attempt - 1} attempt(s)"
                )
            try:
                return fn()
            except (TransientServiceError, BackpressureError) as error:
                last_error = error
                if attempt == self.max_attempts:
                    break
                delay = next(delays)
                if isinstance(error, BackpressureError):
                    delay = max(delay, error.retry_after_s)
                if (
                    self.timeout_s is not None
                    and time.monotonic() - start + delay > self.timeout_s
                ):
                    raise RequestTimeoutError(
                        f"request budget {self.timeout_s:g}s cannot cover the "
                        f"next {delay:g}s backoff after {attempt} attempt(s)"
                    ) from error
                if on_retry is not None:
                    on_retry(attempt, error)
                if delay > 0:
                    time.sleep(delay)
        raise RetriesExhaustedError(
            f"all {self.max_attempts} attempts failed "
            f"(last error: {last_error})",
            last_error,
        )


#: Circuit-breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Per-endpoint circuit breaker (closed → open → half-open → closed).

    ``failure_threshold`` *consecutive* failures open the circuit; while
    open, :meth:`allow` is ``False`` (callers fast-fail with
    :class:`CircuitOpenError` without touching the endpoint).  After
    ``cooldown_s`` the breaker admits a single probe (half-open): success
    closes it, failure re-opens it for another cooldown.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_s: float = 0.05,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be non-negative")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probe_outstanding = False

    @property
    def state(self) -> str:
        self._maybe_half_open()
        return self._state

    def _maybe_half_open(self) -> None:
        if (
            self._state == OPEN
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.cooldown_s
        ):
            self._state = HALF_OPEN
            self._probe_outstanding = False

    def allow(self) -> bool:
        """May a call proceed right now?"""
        self._maybe_half_open()
        if self._state == CLOSED:
            return True
        if self._state == HALF_OPEN and not self._probe_outstanding:
            self._probe_outstanding = True
            return True
        return False

    def record_success(self) -> None:
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = None
        self._probe_outstanding = False

    def record_failure(self) -> None:
        if self._state == HALF_OPEN:
            self._trip()
            return
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.failure_threshold:
            self._trip()

    def _trip(self) -> None:
        self._state = OPEN
        self._opened_at = self._clock()
        self._consecutive_failures = 0
        self._probe_outstanding = False

    def guard(self, endpoint: str) -> None:
        """Raise :class:`CircuitOpenError` unless a call may proceed."""
        if not self.allow():
            raise CircuitOpenError(
                f"circuit for endpoint {endpoint!r} is {self._state}; "
                f"retry after the {self.cooldown_s:g}s cooldown"
            )
