"""Seeded, deterministic fault plans.

A :class:`FaultPlan` is the chaos counterpart of a telemetry session: a
single object installed globally (see :func:`repro.faults.install`) that
every named injection site consults.  Determinism is the design center —
whether a given invocation of a site faults is a *pure function* of
``(plan seed, site name, invocation index)``:

- probabilistic specs draw their uniform from a generator seeded with
  exactly that triple, so thread interleaving between sites cannot change
  any decision;
- scheduled specs (``at=(0, 3)``) fire at fixed invocation indices;
- the :class:`FaultLog` export is sorted by ``(site, index)``, so two runs
  whose sites are invoked the same number of times produce byte-identical
  logs regardless of thread timing.

Fault kinds are a closed vocabulary; what each kind *means* is defined by
the site that handles the decision (see ``docs/FAULTS.md`` for the site
catalogue):

========== ==========================================================
``latency``  stall the site for ``latency_s`` seconds, then proceed
``hang``     stall long enough to look dead (lost-item watchdogs fire)
``crash``    kill the executing worker (thread exits; runtime respawns)
``drop``     swallow the site's result (nothing is ever reported back)
``corrupt``  deliver a mangled payload (NaN confidences) downstream
``error``    raise :class:`~repro.faults.errors.TransientServiceError`
========== ==========================================================
"""

from __future__ import annotations

import threading
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

#: The closed set of fault kinds a spec may request.
LATENCY = "latency"
HANG = "hang"
CRASH = "crash"
DROP = "drop"
CORRUPT = "corrupt"
ERROR = "error"

FAULT_KINDS = frozenset({LATENCY, HANG, CRASH, DROP, CORRUPT, ERROR})


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule: *at this site, fire this kind, this often*.

    Either ``probability`` (per-invocation Bernoulli, deterministic per
    index) or ``at`` (explicit invocation indices) — or both — select the
    invocations that fault.  ``max_injections`` caps the total number of
    times the spec fires; ``latency_s`` parameterizes ``latency``/``hang``.
    """

    site: str
    kind: str
    probability: float = 0.0
    at: Tuple[int, ...] = ()
    latency_s: float = 0.01
    max_injections: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.site:
            raise ValueError("spec needs a site name")
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {sorted(FAULT_KINDS)}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if self.probability == 0.0 and not self.at:
            raise ValueError("spec fires never: give probability > 0 or at=(...)")
        if any(i < 0 for i in self.at):
            raise ValueError("schedule indices must be non-negative")
        if self.latency_s < 0:
            raise ValueError("latency_s must be non-negative")
        if self.max_injections is not None and self.max_injections < 1:
            raise ValueError("max_injections must be >= 1 when given")
        object.__setattr__(self, "at", tuple(sorted(set(self.at))))


@dataclass(frozen=True)
class FaultDecision:
    """One fired fault: which site invocation faulted, and how."""

    site: str
    index: int
    kind: str
    latency_s: float = 0.0


class FaultLog:
    """Thread-safe record of every fired fault, with deterministic export."""

    def __init__(self) -> None:
        self._decisions: List[FaultDecision] = []
        self._lock = threading.Lock()

    def append(self, decision: FaultDecision) -> None:
        with self._lock:
            self._decisions.append(decision)

    def decisions(self) -> List[FaultDecision]:
        with self._lock:
            return list(self._decisions)

    def counts(self) -> Dict[str, int]:
        """Fired faults per site."""
        out: Dict[str, int] = {}
        for d in self.decisions():
            out[d.site] = out.get(d.site, 0) + 1
        return dict(sorted(out.items()))

    def export_text(self) -> str:
        """One line per fired fault, sorted by ``(site, index)``.

        Sorting (not arrival order) is what makes the export byte-identical
        across runs: thread timing may reorder *when* decisions land in the
        log, but never *which* decisions are made.
        """
        rows = sorted(self.decisions(), key=lambda d: (d.site, d.index))
        return "\n".join(
            f"{d.site}\t{d.index}\t{d.kind}\t{d.latency_s:.6f}" for d in rows
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._decisions)

    def clear(self) -> None:
        with self._lock:
            self._decisions.clear()


def _site_uniform(seed: int, site: str, index: int) -> float:
    """The deterministic U[0,1) draw for one site invocation.

    ``zlib.crc32`` (not ``hash``) keys the site so the stream survives
    process restarts and ``PYTHONHASHSEED``.
    """
    return float(
        np.random.default_rng([seed & 0xFFFFFFFF, zlib.crc32(site.encode()), index])
        .random()
    )


class FaultPlan:
    """A seeded set of :class:`FaultSpec` rules plus the log they feed.

    The plan is consulted through :meth:`decide`: each call accounts for one
    invocation of ``site`` and returns the fired :class:`FaultDecision` (the
    first matching spec wins, in spec order) or ``None``.  Decisions are
    recorded in :attr:`log` and — when a telemetry session is live — as
    ``faults.injected.*`` counters and ``fault-inject`` trace events.
    """

    def __init__(self, seed: int = 0, specs: Sequence[FaultSpec] = ()) -> None:
        self.seed = int(seed)
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        self.log = FaultLog()
        self._by_site: Dict[str, List[Tuple[int, FaultSpec]]] = {}
        for position, spec in enumerate(self.specs):
            self._by_site.setdefault(spec.site, []).append((position, spec))
        self._invocations: Dict[str, int] = {}
        self._fired: Dict[int, int] = {}  # spec position -> times fired
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def sites(self) -> List[str]:
        return sorted(self._by_site)

    def invocations(self, site: str) -> int:
        with self._lock:
            return self._invocations.get(site, 0)

    def reset(self) -> None:
        """Forget all counters and the log (specs and seed stay)."""
        with self._lock:
            self._invocations.clear()
            self._fired.clear()
        self.log.clear()

    # ------------------------------------------------------------------
    def decide(self, site: str) -> Optional[FaultDecision]:
        """Account one invocation of ``site``; maybe fire a fault."""
        specs = self._by_site.get(site)
        if not specs:
            return None
        with self._lock:
            index = self._invocations.get(site, 0)
            self._invocations[site] = index + 1
            decision: Optional[FaultDecision] = None
            for position, spec in specs:
                fired = self._fired.get(position, 0)
                if spec.max_injections is not None and fired >= spec.max_injections:
                    continue
                scheduled = index in spec.at
                drawn = (
                    spec.probability > 0.0
                    and _site_uniform(self.seed, site, index) < spec.probability
                )
                if not (scheduled or drawn):
                    continue
                self._fired[position] = fired + 1
                decision = FaultDecision(
                    site=site,
                    index=index,
                    kind=spec.kind,
                    latency_s=spec.latency_s
                    if spec.kind in (LATENCY, HANG)
                    else 0.0,
                )
                break
        if decision is not None:
            self.log.append(decision)
            self._record_telemetry(decision)
        return decision

    @staticmethod
    def _record_telemetry(decision: FaultDecision) -> None:
        from .. import telemetry

        tel = telemetry.active()
        if tel is None:
            return
        tel.registry.counter(f"faults.injected.{decision.site}").inc()
        tel.registry.counter(f"faults.injected.kind.{decision.kind}").inc()
        # Fault events are stamped with the site invocation index, not
        # episode time — the plan has no episode clock; seq still orders.
        tel.trace.fault_inject(0.0, decision.site, decision.kind, decision.index)
