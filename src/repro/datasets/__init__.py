"""Synthetic datasets substituting for CIFAR-10 and mobile-sensing corpora.

No public dataset ships with this offline reproduction, so we generate
structured, seeded synthetic data whose *statistical properties* match what
the Eugene experiments rely on (see DESIGN.md §2): a 10-class image
distribution with a per-sample difficulty spectrum, and multi-sensor time
series for the DeepSense-style training service.
"""

from .synthetic_images import (
    SyntheticImageConfig,
    SyntheticImageGenerator,
    make_image_dataset,
)
from .timeseries import SensorTimeSeriesConfig, make_sensor_dataset

__all__ = [
    "SyntheticImageConfig",
    "SyntheticImageGenerator",
    "make_image_dataset",
    "SensorTimeSeriesConfig",
    "make_sensor_dataset",
]
