"""Synthetic multi-sensor time series — stand-in for mobile-sensing corpora.

The DeepSense-style training service (Section II-A of the paper) operates on
time-series from multiple sensors (e.g. accelerometer + gyroscope), aligned
and divided into intervals.  This module generates a seeded activity-
recognition-like dataset: each class is a distinct mixture of oscillation
frequencies and amplitudes per sensor, corrupted by realistic noise that is
correlated across time (AR(1)) rather than white — matching the paper's
argument that real noise is "non-linear, non-additive, correlated".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..nn.data import Dataset


@dataclass
class SensorTimeSeriesConfig:
    num_classes: int = 6
    num_sensors: int = 2
    channels_per_sensor: int = 3
    num_intervals: int = 8
    samples_per_interval: int = 16
    noise_scale: float = 0.4
    #: AR(1) coefficient of the correlated noise process.
    noise_correlation: float = 0.7
    seed: int = 13


def _class_signature(
    rng: np.random.Generator, cfg: SensorTimeSeriesConfig
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Frequencies, amplitudes and phases defining one activity class."""
    shape = (cfg.num_sensors, cfg.channels_per_sensor)
    freqs = rng.uniform(0.5, 4.0, size=shape)
    amps = rng.uniform(0.5, 1.5, size=shape)
    phases = rng.uniform(0, 2 * np.pi, size=shape)
    return freqs, amps, phases


def _ar1_noise(
    rng: np.random.Generator, rho: float, scale: float, shape: Tuple[int, ...]
) -> np.ndarray:
    """Temporally correlated noise along the last axis."""
    white = rng.normal(scale=scale, size=shape)
    out = np.empty_like(white)
    out[..., 0] = white[..., 0]
    for t in range(1, shape[-1]):
        out[..., t] = rho * out[..., t - 1] + np.sqrt(1 - rho**2) * white[..., t]
    return out


def make_sensor_dataset(
    n: int,
    config: Optional[SensorTimeSeriesConfig] = None,
    seed: int = 0,
) -> Dataset:
    """Generate ``n`` labelled multi-sensor samples.

    Each sample is shaped ``(num_sensors * channels_per_sensor, num_intervals,
    samples_per_interval)`` — i.e. an NCHW-compatible layout where the
    "image" is the (interval x time) grid per sensor channel, directly
    consumable by the Conv2D layers of :mod:`repro.nn` the way DeepSense
    applies per-sensor CNNs to interval grids.
    """
    cfg = config or SensorTimeSeriesConfig()
    class_rng = np.random.default_rng(cfg.seed)
    signatures = [_class_signature(class_rng, cfg) for _ in range(cfg.num_classes)]

    rng = np.random.default_rng(seed)
    labels = rng.integers(0, cfg.num_classes, size=n)
    total_t = cfg.num_intervals * cfg.samples_per_interval
    t = np.linspace(0, 2 * np.pi, total_t)

    channels = cfg.num_sensors * cfg.channels_per_sensor
    inputs = np.empty((n, channels, cfg.num_intervals, cfg.samples_per_interval))
    for i in range(n):
        freqs, amps, phases = signatures[labels[i]]
        jitter = rng.normal(1.0, 0.05, size=freqs.shape)
        signal = amps[..., None] * np.sin(
            (freqs * jitter)[..., None] * t[None, None, :] + phases[..., None]
        )
        noise = _ar1_noise(
            rng, cfg.noise_correlation, cfg.noise_scale, signal.shape
        )
        sample = (signal + noise).reshape(
            channels, cfg.num_intervals, cfg.samples_per_interval
        )
        inputs[i] = sample
    return Dataset(inputs, labels)
