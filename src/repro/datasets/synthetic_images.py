"""Synthetic 10-class image dataset — the offline stand-in for CIFAR-10.

Each class is defined by a smooth random texture template (a low-frequency
Gaussian random field per channel).  A sample is drawn by taking its class
template, applying a random spatial shift, blending in a *difficulty*-
controlled amount of pixel noise and distractor texture, and optionally
occluding a patch.  Difficulty is sampled per image from a Beta distribution,
producing the spectrum the Eugene experiments need: easy images that a
stage-1 classifier already nails with high confidence, and hard images whose
classification only firms up (or never does) at deeper stages.  This mirrors
the paper's observation that "identifying a face in a picture could be a very
easy or a very difficult task, depending on the picture".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..nn.data import Dataset


@dataclass
class SyntheticImageConfig:
    """Knobs of the synthetic image distribution."""

    num_classes: int = 10
    image_size: int = 16
    channels: int = 3
    #: Beta(a, b) parameters of the per-sample difficulty distribution.
    difficulty_alpha: float = 2.0
    difficulty_beta: float = 2.0
    #: Template smoothness — larger means lower spatial frequency.
    smoothness: float = 3.0
    #: Maximum absolute spatial shift in pixels.
    max_shift: int = 2
    #: Probability a sample carries an occluding patch.
    occlusion_prob: float = 0.3
    seed: int = 7


def _smooth_field(
    rng: np.random.Generator, size: int, channels: int, smoothness: float
) -> np.ndarray:
    """A smooth random field in [-1, 1]^(channels, size, size).

    Built by upsampling coarse white noise bilinearly — cheap and
    dependency-free low-frequency texture.
    """
    coarse = max(2, int(round(size / smoothness)))
    noise = rng.normal(size=(channels, coarse, coarse))
    # Bilinear upsample to (size, size).
    xs = np.linspace(0, coarse - 1, size)
    x0 = np.clip(np.floor(xs).astype(int), 0, coarse - 2)
    frac = xs - x0
    # Interpolate rows then columns.
    rows = (
        noise[:, x0, :] * (1 - frac)[None, :, None]
        + noise[:, x0 + 1, :] * frac[None, :, None]
    )
    field = (
        rows[:, :, x0] * (1 - frac)[None, None, :]
        + rows[:, :, x0 + 1] * frac[None, None, :]
    )
    peak = np.abs(field).max()
    return field / (peak + 1e-12)


class SyntheticImageGenerator:
    """Seeded generator of the synthetic 10-class image distribution."""

    def __init__(self, config: Optional[SyntheticImageConfig] = None) -> None:
        self.config = config or SyntheticImageConfig()
        cfg = self.config
        if cfg.num_classes < 2:
            raise ValueError("need at least two classes")
        template_rng = np.random.default_rng(cfg.seed)
        self.templates = np.stack(
            [
                _smooth_field(template_rng, cfg.image_size, cfg.channels, cfg.smoothness)
                for _ in range(cfg.num_classes)
            ]
        )
        # A pool of distractor textures used to corrupt hard samples.
        self.distractors = np.stack(
            [
                _smooth_field(template_rng, cfg.image_size, cfg.channels, cfg.smoothness)
                for _ in range(cfg.num_classes)
            ]
        )

    def sample(
        self,
        n: int,
        rng: np.random.Generator,
        difficulty: Optional[np.ndarray] = None,
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Draw ``n`` images.

        Returns ``(images, labels, difficulties)`` with images shaped
        ``(n, channels, size, size)``.  ``difficulty`` may be supplied
        explicitly (values in [0, 1]); otherwise it is sampled from the
        configured Beta distribution.
        """
        cfg = self.config
        labels = rng.integers(0, cfg.num_classes, size=n)
        if difficulty is None:
            difficulty = rng.beta(cfg.difficulty_alpha, cfg.difficulty_beta, size=n)
        else:
            difficulty = np.asarray(difficulty, dtype=np.float64)
            if difficulty.shape != (n,):
                raise ValueError(f"difficulty must have shape ({n},)")
            if difficulty.min() < 0 or difficulty.max() > 1:
                raise ValueError("difficulty values must lie in [0, 1]")

        size = cfg.image_size
        images = np.empty((n, cfg.channels, size, size), dtype=np.float64)
        for i in range(n):
            d = difficulty[i]
            template = self.templates[labels[i]]
            # Random integer shift (wraparound keeps energy constant).
            if cfg.max_shift > 0:
                dy, dx = rng.integers(-cfg.max_shift, cfg.max_shift + 1, size=2)
                template = np.roll(template, (dy, dx), axis=(1, 2))
            # Signal fades and distractor + noise grow with difficulty.
            signal = (1.0 - 0.8 * d) * template
            distractor = self.distractors[rng.integers(0, len(self.distractors))]
            corrupted = signal + 0.9 * d * distractor
            corrupted = corrupted + (0.15 + 0.85 * d) * rng.normal(size=template.shape)
            if rng.random() < cfg.occlusion_prob * d:
                ph = rng.integers(size // 4, size // 2 + 1)
                pw = rng.integers(size // 4, size // 2 + 1)
                top = rng.integers(0, size - ph + 1)
                left = rng.integers(0, size - pw + 1)
                corrupted[:, top : top + ph, left : left + pw] = 0.0
            images[i] = corrupted
        return images, labels, difficulty


def make_image_dataset(
    n: int,
    config: Optional[SyntheticImageConfig] = None,
    seed: int = 0,
    with_difficulty: bool = False,
):
    """Convenience builder returning a :class:`repro.nn.data.Dataset`.

    With ``with_difficulty=True``, returns ``(dataset, difficulties)`` so
    experiments can stratify by difficulty.
    """
    generator = SyntheticImageGenerator(config)
    rng = np.random.default_rng(seed)
    images, labels, difficulty = generator.sample(n, rng)
    dataset = Dataset(images, labels)
    if with_difficulty:
        return dataset, difficulty
    return dataset
