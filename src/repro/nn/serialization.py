"""Model serialization: the wire format of the Eugene caching service.

The caching service pushes reduced models to edge devices (Sec. II-B); this
module defines the artifact it ships: a single ``.npz`` holding the model's
configuration and its full state dict (parameters *and* buffers).  The
format is dependency-free and versioned.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from .resnet import StagedResNet, StagedResNetConfig

_FORMAT_VERSION = 1


def save_staged_model(model: StagedResNet, path: Union[str, Path]) -> Path:
    """Serialize a staged model (config + weights + buffers) to ``path``."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    cfg = model.config
    meta = {
        "format_version": _FORMAT_VERSION,
        "num_classes": cfg.num_classes,
        "in_channels": cfg.in_channels,
        "image_size": cfg.image_size,
        "stage_channels": list(cfg.stage_channels),
        "blocks_per_stage": cfg.blocks_per_stage,
        "seed": cfg.seed,
    }
    arrays = {f"state/{k}": v for k, v in model.state_dict().items()}
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)
    return path


def load_staged_model(path: Union[str, Path]) -> StagedResNet:
    """Reconstruct a staged model saved by :func:`save_staged_model`."""
    path = Path(path)
    with np.load(path) as archive:
        if "__meta__" not in archive:
            raise ValueError(f"{path} is not a staged-model archive")
        meta = json.loads(bytes(archive["__meta__"]).decode("utf-8"))
        if meta.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported archive version {meta.get('format_version')}"
            )
        config = StagedResNetConfig(
            num_classes=meta["num_classes"],
            in_channels=meta["in_channels"],
            image_size=meta["image_size"],
            stage_channels=tuple(meta["stage_channels"]),
            blocks_per_stage=meta["blocks_per_stage"],
            seed=meta["seed"],
        )
        state = {
            key[len("state/"):]: archive[key]
            for key in archive.files
            if key.startswith("state/")
        }
    model = StagedResNet(config)
    model.load_state_dict(state)
    model.eval()
    return model


def model_size_bytes(path: Union[str, Path]) -> int:
    """On-disk size of a serialized model — the caching download cost."""
    return Path(path).stat().st_size
