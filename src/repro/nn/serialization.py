"""Model serialization: the wire format of the Eugene caching service.

The caching service pushes reduced models to edge devices (Sec. II-B); this
module defines the artifact it ships: a single ``.npz`` holding the model's
configuration and its full state dict (parameters *and* buffers).  The
format is dependency-free and versioned.

It also defines the **ndarray header** — the minimal self-describing
metadata (dtype with explicit endianness, shape, byte count) needed to
reconstruct an array from a raw byte buffer.  The shared-memory tensor
transport of :mod:`repro.cluster.shm` ships this header in its pickled
control messages while the array bytes travel through the shm arena, so
a process on either side of the boundary can map the block back into a
correctly typed view without trusting anything stored in shared memory
itself.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Tuple, Union

import numpy as np

from .resnet import StagedResNet, StagedResNetConfig

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class NdarrayHeader:
    """Self-describing metadata of one contiguous ndarray payload.

    ``dtype`` is the numpy *byte-order-explicit* dtype string (e.g.
    ``"<f8"``), so a header written on one architecture reconstructs
    identically on another; ``nbytes`` double-checks that the buffer the
    header is applied to actually holds the array it claims to.
    """

    dtype: str
    shape: Tuple[int, ...]
    nbytes: int

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        expected = int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize
        if expected != self.nbytes:
            raise ValueError(
                f"inconsistent ndarray header: shape {self.shape} of dtype "
                f"{self.dtype!r} needs {expected} bytes, header says {self.nbytes}"
            )


def ndarray_header(array: np.ndarray) -> NdarrayHeader:
    """Header describing ``array`` (which must be dtype-simple).

    Object/structured dtypes have no flat byte representation and are
    rejected — callers fall back to pickling such payloads whole.
    """
    array = np.asarray(array)
    if array.dtype.hasobject or array.dtype.names is not None:
        raise ValueError(
            f"dtype {array.dtype!r} has no raw-byte representation"
        )
    # `dtype.str` spells the byte order explicitly ('<f8', '>i4', '|u1');
    # native-order shorthand ('=') would not survive a cross-arch hop.
    return NdarrayHeader(
        dtype=array.dtype.str,
        shape=tuple(int(d) for d in array.shape),
        nbytes=int(array.nbytes),
    )


def ndarray_to_bytes(array: np.ndarray, out: memoryview) -> NdarrayHeader:
    """Write ``array``'s raw bytes into ``out`` and return its header."""
    array = np.ascontiguousarray(array)
    header = ndarray_header(array)
    if len(out) < header.nbytes:
        raise ValueError(
            f"buffer of {len(out)} bytes cannot hold {header.nbytes}"
        )
    out[: header.nbytes] = array.view(np.uint8).reshape(-1).data
    return header


def ndarray_from_buffer(
    buffer, header: NdarrayHeader, *, copy: bool = True
) -> np.ndarray:
    """Reconstruct the array a header describes from a raw byte buffer.

    With ``copy=False`` the result is a **read-only view** into the
    buffer — zero-copy, but its lifetime is the buffer's; consumers that
    retain the array beyond the buffer's life must pass ``copy=True``.
    """
    view = memoryview(buffer)[: header.nbytes]
    if len(view) != header.nbytes:
        raise ValueError(
            f"buffer holds {len(view)} bytes, header needs {header.nbytes}"
        )
    array = np.frombuffer(view, dtype=np.dtype(header.dtype)).reshape(header.shape)
    if copy:
        return array.copy()
    array.flags.writeable = False
    return array


def save_staged_model(model: StagedResNet, path: Union[str, Path]) -> Path:
    """Serialize a staged model (config + weights + buffers) to ``path``."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    cfg = model.config
    meta = {
        "format_version": _FORMAT_VERSION,
        "num_classes": cfg.num_classes,
        "in_channels": cfg.in_channels,
        "image_size": cfg.image_size,
        "stage_channels": list(cfg.stage_channels),
        "blocks_per_stage": cfg.blocks_per_stage,
        "seed": cfg.seed,
    }
    arrays = {f"state/{k}": v for k, v in model.state_dict().items()}
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta).encode("utf-8"), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)
    return path


def load_staged_model(path: Union[str, Path]) -> StagedResNet:
    """Reconstruct a staged model saved by :func:`save_staged_model`."""
    path = Path(path)
    with np.load(path) as archive:
        if "__meta__" not in archive:
            raise ValueError(f"{path} is not a staged-model archive")
        meta = json.loads(bytes(archive["__meta__"]).decode("utf-8"))
        if meta.get("format_version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported archive version {meta.get('format_version')}"
            )
        config = StagedResNetConfig(
            num_classes=meta["num_classes"],
            in_channels=meta["in_channels"],
            image_size=meta["image_size"],
            stage_channels=tuple(meta["stage_channels"]),
            blocks_per_stage=meta["blocks_per_stage"],
            seed=meta["seed"],
        )
        state = {
            key[len("state/"):]: archive[key]
            for key in archive.files
            if key.startswith("state/")
        }
    model = StagedResNet(config)
    model.load_state_dict(state)
    model.eval()
    return model


def model_size_bytes(path: Union[str, Path]) -> int:
    """On-disk size of a serialized model — the caching download cost."""
    return Path(path).stat().st_size
