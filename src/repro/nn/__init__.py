"""Numpy deep-learning substrate (replaces TensorFlow in the reproduction).

Public surface:

- :class:`~repro.nn.tensor.Tensor` — reverse-mode autograd array
- :mod:`repro.nn.functional` — conv2d / pooling / softmax ops
- :mod:`repro.nn.layers` — Module, Dense, Conv2D, BatchNorm, Dropout, ...
- :mod:`repro.nn.losses` — cross entropy, Eq. (4) entropy regularizer, RDeepSense loss
- :mod:`repro.nn.optim` — SGD / Adam / StepLR
- :class:`~repro.nn.resnet.StagedResNet` — the paper's Fig. 3 topology
- :mod:`repro.nn.training` — joint staged training loops
"""

from . import functional
from .data import DataLoader, Dataset
from .layers import (
    BatchNorm1D,
    BatchNorm2D,
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2D,
    MaxPool2D,
    Module,
    Parameter,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from .losses import (
    cross_entropy,
    entropy,
    entropy_regularized_ce,
    gaussian_nll,
    gaussian_nll_mse,
    mae,
    mse,
)
from .optim import SGD, Adam, StepLR, clip_grad_norm
from .resnet import ResidualBlock, StageClassifier, StagedResNet, StagedResNetConfig
from .rnn import GRU, GRUCell
from .serialization import load_staged_model, model_size_bytes, save_staged_model
from .deepsense import DeepSense, DeepSenseConfig
from .tensor import (
    Tensor,
    as_tensor,
    concatenate,
    is_grad_enabled,
    no_grad,
    numeric_gradient,
    set_grad_enabled,
    stack,
    where,
)
from .training import (
    TrainReport,
    collect_stage_outputs,
    evaluate_stage_accuracy,
    staged_loss,
    train_staged_model,
)

__all__ = [
    "Tensor",
    "as_tensor",
    "concatenate",
    "stack",
    "where",
    "no_grad",
    "is_grad_enabled",
    "set_grad_enabled",
    "numeric_gradient",
    "functional",
    "Dataset",
    "DataLoader",
    "Module",
    "Parameter",
    "Dense",
    "Conv2D",
    "BatchNorm1D",
    "BatchNorm2D",
    "Dropout",
    "Flatten",
    "GlobalAvgPool2D",
    "MaxPool2D",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Sequential",
    "cross_entropy",
    "entropy",
    "entropy_regularized_ce",
    "gaussian_nll",
    "gaussian_nll_mse",
    "mae",
    "mse",
    "SGD",
    "Adam",
    "StepLR",
    "clip_grad_norm",
    "StagedResNet",
    "GRU",
    "GRUCell",
    "DeepSense",
    "DeepSenseConfig",
    "save_staged_model",
    "load_staged_model",
    "model_size_bytes",
    "StagedResNetConfig",
    "ResidualBlock",
    "StageClassifier",
    "TrainReport",
    "staged_loss",
    "train_staged_model",
    "evaluate_stage_accuracy",
    "collect_stage_outputs",
]
