"""Weight initializers for the :mod:`repro.nn` substrate."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Fan-in / fan-out of a dense ``(in, out)`` or conv ``(out, in, k, k)`` shape."""
    if len(shape) == 2:
        return shape[0], shape[1]
    if len(shape) == 4:
        receptive = int(np.prod(shape[2:]))
        return shape[1] * receptive, shape[0] * receptive
    raise ValueError(f"unsupported parameter shape {shape}")


def he_normal(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Kaiming-normal init, suited to ReLU networks (used by our ResNet)."""
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape: Tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """Glorot-uniform init for tanh/sigmoid layers."""
    fan_in, fan_out = _fan_in_out(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float64)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float64)
