"""Training loops for staged models.

The staged ResNet is trained with a joint objective: the sum of per-stage
cross entropies, so every early-exit classifier is useful on its own.  The
same loop accepts the entropy regularizer of Eq. (4), which is how the
RTDeepIoT calibration fine-tuning is implemented (see
:mod:`repro.calibration.entropy_reg`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from . import functional as F
from .data import DataLoader, Dataset
from .losses import cross_entropy, entropy
from .optim import Adam, Optimizer, clip_grad_norm
from .resnet import StagedResNet
from .tensor import Tensor


@dataclass
class TrainReport:
    """Per-epoch training trace."""

    epoch_losses: List[float] = field(default_factory=list)
    epoch_accuracies: List[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")


def staged_loss(
    logits: Sequence[Tensor],
    labels: np.ndarray,
    stage_weights: Optional[Sequence[float]] = None,
    alpha: float = 0.0,
) -> Tensor:
    """Weighted sum of per-stage cross entropies, plus optional entropy term.

    ``alpha`` follows Eq. (4): positive alpha penalizes high-entropy
    (low-confidence) outputs, negative alpha rewards them.
    """
    if stage_weights is None:
        stage_weights = [1.0] * len(logits)
    if len(stage_weights) != len(logits):
        raise ValueError("one weight per stage required")
    total: Optional[Tensor] = None
    for weight, stage_logits in zip(stage_weights, logits):
        term = cross_entropy(stage_logits, labels)
        if alpha != 0.0:
            probs = F.softmax(stage_logits, axis=-1)
            term = term + alpha * entropy(probs)
        term = weight * term
        total = term if total is None else total + term
    assert total is not None
    return total


def train_staged_model(
    model: StagedResNet,
    train_set: Dataset,
    epochs: int = 5,
    batch_size: int = 64,
    lr: float = 1e-3,
    alpha: float = 0.0,
    stage_weights: Optional[Sequence[float]] = None,
    optimizer: Optional[Optimizer] = None,
    grad_clip: float = 5.0,
    seed: int = 0,
    on_epoch_end: Optional[Callable[[int, float], None]] = None,
) -> TrainReport:
    """Train a staged model with the joint per-stage objective."""
    optimizer = optimizer or Adam(model.parameters(), lr=lr)
    loader = DataLoader(train_set, batch_size=batch_size, shuffle=True, seed=seed)
    report = TrainReport()
    model.train()
    for epoch in range(epochs):
        losses: List[float] = []
        correct = 0
        seen = 0
        for inputs, labels in loader:
            logits = model(Tensor(inputs))
            loss = staged_loss(logits, labels, stage_weights, alpha=alpha)
            optimizer.zero_grad()
            loss.backward()
            if grad_clip:
                clip_grad_norm(model.parameters(), grad_clip)
            optimizer.step()
            losses.append(loss.item())
            correct += int((logits[-1].data.argmax(axis=-1) == labels).sum())
            seen += len(labels)
        epoch_loss = float(np.mean(losses))
        report.epoch_losses.append(epoch_loss)
        report.epoch_accuracies.append(correct / max(seen, 1))
        if on_epoch_end is not None:
            on_epoch_end(epoch, epoch_loss)
    model.eval()
    return report


def evaluate_stage_accuracy(
    model: StagedResNet, dataset: Dataset, batch_size: int = 128
) -> np.ndarray:
    """Top-1 accuracy of every stage classifier on ``dataset``."""
    model.eval()
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
    correct = np.zeros(model.num_stages, dtype=np.int64)
    total = 0
    for inputs, labels in loader:
        probs = model.predict_proba(inputs)
        for s, p in enumerate(probs):
            correct[s] += int((p.argmax(axis=-1) == labels).sum())
        total += len(labels)
    return correct / max(total, 1)


def collect_stage_outputs(
    model: StagedResNet, dataset: Dataset, batch_size: int = 128
) -> dict:
    """Run the model over ``dataset`` and gather per-stage outputs.

    Returns a dict with keys:

    - ``confidences``: (num_stages, N) top-1 confidence per stage
    - ``predictions``: (num_stages, N) argmax class per stage
    - ``correct``: (num_stages, N) boolean correctness per stage
    - ``labels``: (N,) ground truth

    This is the raw material for the ECE evaluation (Table II), the GP
    confidence-curve models (Table III) and the scheduling experiments
    (Fig. 4).
    """
    model.eval()
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
    confs: List[np.ndarray] = []
    preds: List[np.ndarray] = []
    labels_all: List[np.ndarray] = []
    for inputs, labels in loader:
        probs = model.predict_proba(inputs)
        confs.append(np.stack([p.max(axis=-1) for p in probs], axis=0))
        preds.append(np.stack([p.argmax(axis=-1) for p in probs], axis=0))
        labels_all.append(labels)
    confidences = np.concatenate(confs, axis=1)
    predictions = np.concatenate(preds, axis=1)
    labels_arr = np.concatenate(labels_all)
    return {
        "confidences": confidences,
        "predictions": predictions,
        "correct": predictions == labels_arr[None, :],
        "labels": labels_arr,
    }
