"""Reverse-mode automatic differentiation over numpy arrays.

This module is the foundation of the :mod:`repro.nn` deep-learning substrate
that replaces TensorFlow in the Eugene reproduction (see DESIGN.md, S1).  It
implements a small but complete define-by-run autograd engine: every
:class:`Tensor` records the operation that produced it and a closure that
propagates gradients to its parents; :meth:`Tensor.backward` performs a
topological sweep over that graph.

All arithmetic is broadcast-aware: gradients flowing into a broadcast operand
are reduced back to the operand's original shape by :func:`unbroadcast`.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

ArrayLike = Union[np.ndarray, float, int, "Tensor", Sequence]

_DEFAULT_DTYPE = np.float64


class _GradMode(threading.local):
    """Thread-local autograd switch.

    Thread-local (not global) because the inference runtime's worker threads
    run forward passes in no-grad mode while a training loop may be
    backpropagating concurrently on another thread.
    """

    def __init__(self) -> None:
        self.enabled = True


_grad_mode = _GradMode()


def is_grad_enabled() -> bool:
    """Whether operations on tensors currently record an autograd graph."""
    return _grad_mode.enabled


def set_grad_enabled(enabled: bool) -> bool:
    """Set the autograd switch for this thread; returns the previous value."""
    previous = _grad_mode.enabled
    _grad_mode.enabled = bool(enabled)
    return previous


class no_grad:
    """Context manager / decorator that disables graph construction.

    Inside the context every produced :class:`Tensor` is a detached leaf:
    no parents, no backward closure, ``requires_grad=False``.  Forward
    values are identical to the recording path; only the tape is skipped.
    """

    def __enter__(self) -> "no_grad":
        self._previous = set_grad_enabled(False)
        return self

    def __exit__(self, *exc_info) -> None:
        set_grad_enabled(self._previous)

    def __call__(self, fn: Callable) -> Callable:
        def wrapped(*args, **kwargs):
            with no_grad():
                return fn(*args, **kwargs)

        wrapped.__name__ = getattr(fn, "__name__", "wrapped")
        wrapped.__doc__ = fn.__doc__
        return wrapped


def unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` (the gradient of a broadcast result) to ``shape``.

    Numpy broadcasting either prepends new axes or stretches axes of size 1.
    The adjoint of broadcasting is summation over the broadcast axes.
    """
    if grad.shape == shape:
        return grad
    # Sum over prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were stretched from size 1.
    stretched = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if stretched:
        grad = grad.sum(axis=stretched, keepdims=True)
    return grad.reshape(shape)


def _as_array(value: ArrayLike) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    arr = np.asarray(value)
    if arr.dtype.kind in "fiub":
        arr = arr.astype(_DEFAULT_DTYPE, copy=False)
    return arr


def as_tensor(value: ArrayLike) -> "Tensor":
    """Coerce ``value`` into a :class:`Tensor` (no copy when already one)."""
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


class Tensor:
    """A numpy array with an autograd tape.

    Parameters
    ----------
    data:
        Anything convertible to ``np.ndarray``.  Float/integer/bool inputs are
        promoted to float64, the engine's working dtype.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward_fn", "op")

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _parents: Tuple["Tensor", ...] = (),
        _backward_fn: Optional[Callable[[np.ndarray], None]] = None,
        op: str = "leaf",
    ) -> None:
        self.data = _as_array(data)
        self.requires_grad = bool(requires_grad)
        self.grad: Optional[np.ndarray] = None
        self._parents = _parents
        self._backward_fn = _backward_fn
        self.op = op

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, op={self.op!r}{grad_flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """A new leaf tensor sharing this tensor's data, cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------
    # Graph construction / backward
    # ------------------------------------------------------------------
    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy() if grad.base is not None else grad
        else:
            self.grad = self.grad + grad

    def backward(self, grad: Optional[np.ndarray] = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to ones (so calling ``backward()`` on a scalar loss
        computes standard gradients).
        """
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"backward grad shape {grad.shape} != tensor shape {self.data.shape}"
                )

        topo: List[Tensor] = []
        visited = set()
        stack: List[Tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward_fn is not None and node.grad is not None:
                node._backward_fn(node.grad)

    @staticmethod
    def _make(
        data: np.ndarray,
        parents: Tuple["Tensor", ...],
        backward_fn: Callable[[np.ndarray], None],
        op: str,
    ) -> "Tensor":
        requires = _grad_mode.enabled and any(p.requires_grad for p in parents)
        grad_parents = tuple(p for p in parents if p.requires_grad) if requires else ()
        return Tensor(
            data,
            requires_grad=requires,
            _parents=grad_parents,
            _backward_fn=backward_fn if requires else None,
            op=op,
        )

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(unbroadcast(grad, other.shape))

        return Tensor._make(out_data, (self, other), backward_fn, "add")

    __radd__ = __add__

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(unbroadcast(grad * self.data, other.shape))

        return Tensor._make(out_data, (self, other), backward_fn, "mul")

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(-grad)

        return Tensor._make(-self.data, (self,), backward_fn, "neg")

    def __sub__(self, other: ArrayLike) -> "Tensor":
        return self + (-as_tensor(other))

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) + (-self)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                self._accumulate(unbroadcast(grad / other.data, self.shape))
            if other.requires_grad:
                other._accumulate(
                    unbroadcast(-grad * self.data / (other.data**2), other.shape)
                )

        return Tensor._make(out_data, (self, other), backward_fn, "div")

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise TypeError("Tensor.__pow__ supports scalar exponents only")
        out_data = self.data**exponent

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward_fn, "pow")

    # ------------------------------------------------------------------
    # Comparison (no gradient; returns plain arrays)
    # ------------------------------------------------------------------
    def __gt__(self, other: ArrayLike) -> np.ndarray:
        return self.data > _as_array(other)

    def __lt__(self, other: ArrayLike) -> np.ndarray:
        return self.data < _as_array(other)

    def __ge__(self, other: ArrayLike) -> np.ndarray:
        return self.data >= _as_array(other)

    def __le__(self, other: ArrayLike) -> np.ndarray:
        return self.data <= _as_array(other)

    # ------------------------------------------------------------------
    # Unary math
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data)

        return Tensor._make(out_data, (self,), backward_fn, "exp")

    def log(self) -> "Tensor":
        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data)

        return Tensor._make(np.log(self.data), (self,), backward_fn, "log")

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad * 0.5 / out_data)

        return Tensor._make(out_data, (self,), backward_fn, "sqrt")

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - out_data**2))

        return Tensor._make(out_data, (self,), backward_fn, "tanh")

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward_fn, "sigmoid")

    def relu(self) -> "Tensor":
        mask = self.data > 0

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(self.data * mask, (self,), backward_fn, "relu")

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        mask = self.data > 0
        scale = np.where(mask, 1.0, negative_slope)

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad * scale)

        return Tensor._make(self.data * scale, (self,), backward_fn, "leaky_relu")

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad * sign)

        return Tensor._make(np.abs(self.data), (self,), backward_fn, "abs")

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad * mask)

        return Tensor._make(np.clip(self.data, low, high), (self,), backward_fn, "clip")

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(
        self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False
    ) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward_fn(grad: np.ndarray) -> None:
            g = grad
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                axes = tuple(a % self.ndim for a in axes)
                g = np.expand_dims(g, axis=tuple(sorted(axes)))
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return Tensor._make(out_data, (self,), backward_fn, "sum")

    def mean(
        self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False
    ) -> "Tensor":
        if axis is None:
            count = self.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = int(np.prod([self.shape[a % self.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(
        self, axis: Optional[Union[int, Tuple[int, ...]]] = None, keepdims: bool = False
    ) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(
        self, axis: Optional[int] = None, keepdims: bool = False
    ) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward_fn(grad: np.ndarray) -> None:
            if axis is None:
                mask = self.data == out_data
                g = grad * mask / mask.sum()
            else:
                expanded = out_data if keepdims else np.expand_dims(out_data, axis)
                mask = self.data == expanded
                g = grad if keepdims else np.expand_dims(grad, axis)
                g = g * mask / mask.sum(axis=axis, keepdims=True)
            self._accumulate(g)

        return Tensor._make(out_data, (self,), backward_fn, "max")

    # ------------------------------------------------------------------
    # Linear algebra / shape ops
    # ------------------------------------------------------------------
    def __matmul__(self, other: ArrayLike) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward_fn(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.ndim == 1:
                    self._accumulate(np.outer(grad, other.data).reshape(self.shape))
                else:
                    g = grad @ np.swapaxes(other.data, -1, -2)
                    self._accumulate(unbroadcast(g, self.shape))
            if other.requires_grad:
                if self.ndim == 1:
                    other._accumulate(np.outer(self.data, grad).reshape(other.shape))
                else:
                    g = np.swapaxes(self.data, -1, -2) @ grad
                    other._accumulate(unbroadcast(g, other.shape))

        return Tensor._make(out_data, (self, other), backward_fn, "matmul")

    def reshape(self, *shape: int) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(original))

        return Tensor._make(out_data, (self,), backward_fn, "reshape")

    def transpose(self, *axes: int) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        inverse = np.argsort(axes)

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad.transpose(inverse))

        return Tensor._make(self.data.transpose(axes), (self,), backward_fn, "transpose")

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward_fn(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full)

        return Tensor._make(out_data, (self,), backward_fn, "getitem")

    def pad2d(self, pad: int) -> "Tensor":
        """Zero-pad the last two axes symmetrically by ``pad`` pixels."""
        if pad == 0:
            return self
        widths = [(0, 0)] * (self.ndim - 2) + [(pad, pad), (pad, pad)]
        out_data = np.pad(self.data, widths)
        slices = tuple(
            [slice(None)] * (self.ndim - 2)
            + [slice(pad, -pad), slice(pad, -pad)]
        )

        def backward_fn(grad: np.ndarray) -> None:
            self._accumulate(grad[slices])

        return Tensor._make(out_data, (self,), backward_fn, "pad2d")


# ----------------------------------------------------------------------
# Module-level helpers operating on tensors
# ----------------------------------------------------------------------
def concatenate(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward_fn(grad: np.ndarray) -> None:
        for tensor, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            if tensor.requires_grad:
                idx = [slice(None)] * grad.ndim
                idx[axis] = slice(start, stop)
                tensor._accumulate(grad[tuple(idx)])

    out = Tensor._make(out_data, tuple(tensors), backward_fn, "concat")
    return out


def stack(tensors: Sequence[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new axis with gradient support."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = np.stack([t.data for t in tensors], axis=axis)

    def backward_fn(grad: np.ndarray) -> None:
        pieces = np.moveaxis(grad, axis, 0)
        for tensor, piece in zip(tensors, pieces):
            if tensor.requires_grad:
                tensor._accumulate(piece)

    return Tensor._make(out_data, tuple(tensors), backward_fn, "stack")


def where(condition: np.ndarray, a: ArrayLike, b: ArrayLike) -> Tensor:
    """Differentiable selection: gradient flows to whichever branch was taken."""
    a, b = as_tensor(a), as_tensor(b)
    cond = np.asarray(condition, dtype=bool)
    out_data = np.where(cond, a.data, b.data)

    def backward_fn(grad: np.ndarray) -> None:
        if a.requires_grad:
            a._accumulate(unbroadcast(grad * cond, a.shape))
        if b.requires_grad:
            b._accumulate(unbroadcast(grad * ~cond, b.shape))

    return Tensor._make(out_data, (a, b), backward_fn, "where")


def numeric_gradient(
    fn: Callable[[np.ndarray], float], x: np.ndarray, eps: float = 1e-6
) -> np.ndarray:
    """Central-difference gradient of a scalar function, for gradient checks."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        hi = fn(x)
        flat[i] = original - eps
        lo = fn(x)
        flat[i] = original
        grad_flat[i] = (hi - lo) / (2 * eps)
    return grad
