"""Neural-network operations built on the :mod:`repro.nn.tensor` autograd engine.

Implements the convolution/pooling/softmax machinery required by the staged
ResNet of the Eugene paper (Fig. 3).  Convolutions use the im2col lowering so
the heavy lifting happens inside a single BLAS matmul per layer, which keeps
pure-numpy training of the synthetic-CIFAR models tractable.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

import numpy as np

from .tensor import Tensor, as_tensor, no_grad


# ----------------------------------------------------------------------
# im2col / col2im lowering
# ----------------------------------------------------------------------
def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution along one axis."""
    return (size + 2 * pad - kernel) // stride + 1


class _ScratchPool(threading.local):
    """Per-thread reusable buffers for the inference fast path.

    Keyed by (shape, dtype).  Thread-local so the runtime's worker threads
    never hand each other a buffer mid-write.  Buffers are only reused on
    the no-grad path: the autograd path retains ``cols`` inside backward
    closures, so it must own a fresh allocation per call.
    """

    MAX_ENTRIES = 16

    def __init__(self) -> None:
        self.buffers: Dict[tuple, np.ndarray] = {}

    def get(self, shape: Tuple[int, ...], dtype: np.dtype) -> np.ndarray:
        key = (shape, np.dtype(dtype).str)
        buf = self.buffers.get(key)
        if buf is None:
            if len(self.buffers) >= self.MAX_ENTRIES:
                self.buffers.clear()
            buf = np.empty(shape, dtype=dtype)
            self.buffers[key] = buf
        return buf


_scratch = _ScratchPool()


def _patch_view(x: np.ndarray, kernel: int, stride: int) -> np.ndarray:
    """Zero-copy (N, C, k, k, out_h, out_w) sliding-patch view of ``x``.

    Pure stride arithmetic via ``as_strided`` — no data is moved; the view
    aliases ``x`` and is marked read-only.
    """
    n, c, h, w = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    sn, sc, sh, sw = x.strides
    return np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, kernel, kernel, out_h, out_w),
        strides=(sn, sc, sh, sw, sh * stride, sw * stride),
        writeable=False,
    )


def im2col(
    x: np.ndarray, kernel: int, stride: int, pad: int, reuse_scratch: bool = False
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Lower NCHW input to column form.

    Returns ``(cols, (out_h, out_w))`` where ``cols`` has shape
    ``(N, C * kernel * kernel, out_h * out_w)``.

    Patch gathering is a single strided copy out of an ``as_strided`` view
    (no per-offset python loop).  With ``reuse_scratch=True`` the column
    buffer comes from a per-thread pool and is overwritten by the next
    scratch call — valid only when the caller does not retain it (the
    no-grad inference path).
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, pad)
    out_w = conv_output_size(w, kernel, stride, pad)
    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    view = _patch_view(x, kernel, stride)
    shape = (n, c, kernel, kernel, out_h, out_w)
    if reuse_scratch:
        cols = _scratch.get((n, c * kernel * kernel, out_h * out_w), x.dtype)
    else:
        cols = np.empty((n, c * kernel * kernel, out_h * out_w), dtype=x.dtype)
    np.copyto(cols.reshape(shape), view)
    return cols, (out_h, out_w)


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add columns back to NCHW."""
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kernel, stride, pad)
    out_w = conv_output_size(w, kernel, stride, pad)
    cols = cols.reshape(n, c, kernel, kernel, out_h, out_w)
    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    for ki in range(kernel):
        i_max = ki + stride * out_h
        for kj in range(kernel):
            j_max = kj + stride * out_w
            padded[:, :, ki:i_max:stride, kj:j_max:stride] += cols[:, :, ki, kj, :, :]
    if pad > 0:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded


# ----------------------------------------------------------------------
# Convolution / pooling
# ----------------------------------------------------------------------
def _conv2d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray],
    stride: int,
    padding: int,
    reuse_scratch: bool = False,
) -> Tuple[np.ndarray, np.ndarray]:
    """Shared raw-ndarray convolution forward; returns ``(out, cols)``.

    Both the autograd op and the no-grad fast path run exactly this code,
    so their outputs are bit-identical by construction.
    """
    n = x.shape[0]
    out_c, in_c, kernel, kernel_w = weight.shape
    if kernel != kernel_w:
        raise ValueError("only square kernels are supported")
    if x.shape[1] != in_c:
        raise ValueError(
            f"input has {x.shape[1]} channels but weight expects {in_c}"
        )
    cols, (out_h, out_w) = im2col(x, kernel, stride, padding,
                                  reuse_scratch=reuse_scratch)
    w2 = weight.reshape(out_c, -1)
    out = np.einsum("of,nfp->nop", w2, cols, optimize=True)
    out = out.reshape(n, out_c, out_h, out_w)
    if bias is not None:
        out = out + bias.reshape(1, out_c, 1, 1)
    return out, cols


def conv2d_infer(
    x: np.ndarray,
    weight: np.ndarray,
    bias: Optional[np.ndarray] = None,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """No-graph, no-Tensor convolution using the reusable column scratch."""
    out, _ = _conv2d_forward(x, weight, bias, stride, padding, reuse_scratch=True)
    return out


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution over NCHW input.

    ``weight`` has shape ``(out_channels, in_channels, k, k)``; ``bias`` (if
    given) has shape ``(out_channels,)``.
    """
    x, weight = as_tensor(x), as_tensor(weight)
    n = x.shape[0]
    out_c = weight.shape[0]
    kernel = weight.shape[2]
    out_data, cols = _conv2d_forward(
        x.data, weight.data, None if bias is None else bias.data, stride, padding
    )
    out_h, out_w = out_data.shape[2], out_data.shape[3]
    w2 = weight.data.reshape(out_c, -1)

    input_shape = x.shape

    def backward_fn(grad: np.ndarray) -> None:
        grad2 = grad.reshape(n, out_c, out_h * out_w)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))
        if weight.requires_grad:
            dw = np.einsum("nop,nfp->of", grad2, cols, optimize=True)
            weight._accumulate(dw.reshape(weight.shape))
        if x.requires_grad:
            dcols = np.einsum("of,nop->nfp", w2, grad2, optimize=True)
            x._accumulate(col2im(dcols, input_shape, kernel, stride, padding))

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._make(out_data, parents, backward_fn, "conv2d")


def _max_pool2d_forward(
    x: np.ndarray, kernel: int, stride: int, reuse_scratch: bool = False
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Tuple[int, int]]:
    """Shared max-pool forward; returns ``(out, cols, argmax, (out_h, out_w))``."""
    n, c, h, w = x.shape
    cols, (out_h, out_w) = im2col(
        x.reshape(n * c, 1, h, w), kernel, stride, 0, reuse_scratch=reuse_scratch
    )
    # cols: (n*c, kernel*kernel, out_h*out_w)
    argmax = cols.argmax(axis=1)
    out = np.take_along_axis(cols, argmax[:, None, :], axis=1)[:, 0, :]
    return out.reshape(n, c, out_h, out_w), cols, argmax, (out_h, out_w)


def max_pool2d_infer(x: np.ndarray, kernel: int = 2, stride: Optional[int] = None) -> np.ndarray:
    """No-graph max pooling on raw arrays (scratch-buffered)."""
    out, _, _, _ = _max_pool2d_forward(x, kernel, stride or kernel, reuse_scratch=True)
    return out


def max_pool2d(x: Tensor, kernel: int = 2, stride: Optional[int] = None) -> Tensor:
    """Max pooling over NCHW input (non-overlapping by default)."""
    x = as_tensor(x)
    stride = stride or kernel
    n, c, h, w = x.shape
    out_data, cols, argmax, (out_h, out_w) = _max_pool2d_forward(x.data, kernel, stride)

    def backward_fn(grad: np.ndarray) -> None:
        dcols = np.zeros_like(cols)
        np.put_along_axis(
            dcols, argmax[:, None, :], grad.reshape(n * c, 1, out_h * out_w), axis=1
        )
        dx = col2im(dcols, (n * c, 1, h, w), kernel, stride, 0)
        x._accumulate(dx.reshape(n, c, h, w))

    return Tensor._make(out_data, (x,), backward_fn, "max_pool2d")


def _avg_pool2d_forward(
    x: np.ndarray, kernel: int, stride: int, reuse_scratch: bool = False
) -> Tuple[np.ndarray, Tuple[int, int]]:
    n, c, h, w = x.shape
    cols, (out_h, out_w) = im2col(
        x.reshape(n * c, 1, h, w), kernel, stride, 0, reuse_scratch=reuse_scratch
    )
    return cols.mean(axis=1).reshape(n, c, out_h, out_w), (out_h, out_w)


def avg_pool2d_infer(x: np.ndarray, kernel: int = 2, stride: Optional[int] = None) -> np.ndarray:
    """No-graph average pooling on raw arrays (scratch-buffered)."""
    out, _ = _avg_pool2d_forward(x, kernel, stride or kernel, reuse_scratch=True)
    return out


def avg_pool2d(x: Tensor, kernel: int = 2, stride: Optional[int] = None) -> Tensor:
    """Average pooling over NCHW input."""
    x = as_tensor(x)
    stride = stride or kernel
    n, c, h, w = x.shape
    out_data, (out_h, out_w) = _avg_pool2d_forward(x.data, kernel, stride)
    denom = kernel * kernel

    def backward_fn(grad: np.ndarray) -> None:
        # The pooling gradient is constant across each kernel window, so
        # scatter-add the (scaled) output gradient directly at every kernel
        # offset instead of materializing a dense dcols copy via
        # broadcast_to(...).astype(...).
        g = grad.reshape(n * c, 1, out_h, out_w) / denom
        dx = np.zeros((n * c, 1, h, w), dtype=g.dtype)
        for ki in range(kernel):
            i_max = ki + stride * out_h
            for kj in range(kernel):
                j_max = kj + stride * out_w
                dx[:, :, ki:i_max:stride, kj:j_max:stride] += g
        x._accumulate(dx.reshape(n, c, h, w))

    return Tensor._make(out_data, (x,), backward_fn, "avg_pool2d")


def global_avg_pool2d_infer(x: np.ndarray) -> np.ndarray:
    """Raw-array global average pool, bit-identical to the Tensor path.

    :meth:`Tensor.mean` computes ``sum * (1/count)`` (not ``sum / count``),
    so the fast path repeats that exact arithmetic.
    """
    count = x.shape[2] * x.shape[3]
    return x.sum(axis=(2, 3)) * (1.0 / count)


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Spatially average NCHW features to (N, C)."""
    return x.mean(axis=(2, 3))


# ----------------------------------------------------------------------
# Softmax family
# ----------------------------------------------------------------------
def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    logsumexp = np.log(exp.sum(axis=axis, keepdims=True))
    out_data = shifted - logsumexp
    softmax_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward_fn(grad: np.ndarray) -> None:
        x._accumulate(grad - softmax_data * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (x,), backward_fn, "log_softmax")


def softmax_infer(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax on raw arrays (same arithmetic as softmax)."""
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def relu_infer(x: np.ndarray) -> np.ndarray:
    """Raw-array ReLU, bit-identical to :meth:`Tensor.relu` (``x * (x > 0)``)."""
    return x * (x > 0)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax."""
    x = as_tensor(x)
    out_data = softmax_infer(x.data, axis=axis)

    def backward_fn(grad: np.ndarray) -> None:
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        x._accumulate(out_data * (grad - dot))

    return Tensor._make(out_data, (x,), backward_fn, "softmax")


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: scales kept activations by ``1/(1-rate)``."""
    if not training or rate <= 0.0:
        return x
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    x = as_tensor(x)
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep) / keep

    def backward_fn(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    return Tensor._make(x.data * mask, (x,), backward_fn, "dropout")


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer labels ``(N,)`` to a one-hot float matrix ``(N, num_classes)``."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError("labels must be a 1-D integer array")
    if labels.min(initial=0) < 0 or (labels.size and labels.max() >= num_classes):
        raise ValueError("label out of range")
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight + bias`` (weight shape: (in, out))."""
    out = as_tensor(x) @ weight
    if bias is not None:
        out = out + bias
    return out
