"""Neural-network operations built on the :mod:`repro.nn.tensor` autograd engine.

Implements the convolution/pooling/softmax machinery required by the staged
ResNet of the Eugene paper (Fig. 3).  Convolutions use the im2col lowering so
the heavy lifting happens inside a single BLAS matmul per layer, which keeps
pure-numpy training of the synthetic-CIFAR models tractable.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .tensor import Tensor, as_tensor


# ----------------------------------------------------------------------
# im2col / col2im lowering
# ----------------------------------------------------------------------
def conv_output_size(size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution along one axis."""
    return (size + 2 * pad - kernel) // stride + 1


def im2col(
    x: np.ndarray, kernel: int, stride: int, pad: int
) -> Tuple[np.ndarray, Tuple[int, int]]:
    """Lower NCHW input to column form.

    Returns ``(cols, (out_h, out_w))`` where ``cols`` has shape
    ``(N, C * kernel * kernel, out_h * out_w)``.
    """
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kernel, stride, pad)
    out_w = conv_output_size(w, kernel, stride, pad)
    if pad > 0:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))

    cols = np.empty((n, c, kernel, kernel, out_h, out_w), dtype=x.dtype)
    for ki in range(kernel):
        i_max = ki + stride * out_h
        for kj in range(kernel):
            j_max = kj + stride * out_w
            cols[:, :, ki, kj, :, :] = x[:, :, ki:i_max:stride, kj:j_max:stride]
    return cols.reshape(n, c * kernel * kernel, out_h * out_w), (out_h, out_w)


def col2im(
    cols: np.ndarray,
    input_shape: Tuple[int, int, int, int],
    kernel: int,
    stride: int,
    pad: int,
) -> np.ndarray:
    """Adjoint of :func:`im2col`: scatter-add columns back to NCHW."""
    n, c, h, w = input_shape
    out_h = conv_output_size(h, kernel, stride, pad)
    out_w = conv_output_size(w, kernel, stride, pad)
    cols = cols.reshape(n, c, kernel, kernel, out_h, out_w)
    padded = np.zeros((n, c, h + 2 * pad, w + 2 * pad), dtype=cols.dtype)
    for ki in range(kernel):
        i_max = ki + stride * out_h
        for kj in range(kernel):
            j_max = kj + stride * out_w
            padded[:, :, ki:i_max:stride, kj:j_max:stride] += cols[:, :, ki, kj, :, :]
    if pad > 0:
        return padded[:, :, pad:-pad, pad:-pad]
    return padded


# ----------------------------------------------------------------------
# Convolution / pooling
# ----------------------------------------------------------------------
def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D convolution over NCHW input.

    ``weight`` has shape ``(out_channels, in_channels, k, k)``; ``bias`` (if
    given) has shape ``(out_channels,)``.
    """
    x, weight = as_tensor(x), as_tensor(weight)
    n = x.shape[0]
    out_c, in_c, kernel, kernel_w = weight.shape
    if kernel != kernel_w:
        raise ValueError("only square kernels are supported")
    if x.shape[1] != in_c:
        raise ValueError(
            f"input has {x.shape[1]} channels but weight expects {in_c}"
        )

    cols, (out_h, out_w) = im2col(x.data, kernel, stride, padding)
    w2 = weight.data.reshape(out_c, -1)
    out_data = np.einsum("of,nfp->nop", w2, cols, optimize=True)
    out_data = out_data.reshape(n, out_c, out_h, out_w)
    if bias is not None:
        out_data = out_data + bias.data.reshape(1, out_c, 1, 1)

    input_shape = x.shape

    def backward_fn(grad: np.ndarray) -> None:
        grad2 = grad.reshape(n, out_c, out_h * out_w)
        if bias is not None and bias.requires_grad:
            bias._accumulate(grad.sum(axis=(0, 2, 3)))
        if weight.requires_grad:
            dw = np.einsum("nop,nfp->of", grad2, cols, optimize=True)
            weight._accumulate(dw.reshape(weight.shape))
        if x.requires_grad:
            dcols = np.einsum("of,nop->nfp", w2, grad2, optimize=True)
            x._accumulate(col2im(dcols, input_shape, kernel, stride, padding))

    parents = (x, weight) if bias is None else (x, weight, bias)
    return Tensor._make(out_data, parents, backward_fn, "conv2d")


def max_pool2d(x: Tensor, kernel: int = 2, stride: Optional[int] = None) -> Tensor:
    """Max pooling over NCHW input (non-overlapping by default)."""
    x = as_tensor(x)
    stride = stride or kernel
    n, c, h, w = x.shape
    cols, (out_h, out_w) = im2col(
        x.data.reshape(n * c, 1, h, w), kernel, stride, 0
    )
    # cols: (n*c, kernel*kernel, out_h*out_w)
    argmax = cols.argmax(axis=1)
    out_data = np.take_along_axis(cols, argmax[:, None, :], axis=1)[:, 0, :]
    out_data = out_data.reshape(n, c, out_h, out_w)

    def backward_fn(grad: np.ndarray) -> None:
        dcols = np.zeros_like(cols)
        np.put_along_axis(
            dcols, argmax[:, None, :], grad.reshape(n * c, 1, out_h * out_w), axis=1
        )
        dx = col2im(dcols, (n * c, 1, h, w), kernel, stride, 0)
        x._accumulate(dx.reshape(n, c, h, w))

    return Tensor._make(out_data, (x,), backward_fn, "max_pool2d")


def avg_pool2d(x: Tensor, kernel: int = 2, stride: Optional[int] = None) -> Tensor:
    """Average pooling over NCHW input."""
    x = as_tensor(x)
    stride = stride or kernel
    n, c, h, w = x.shape
    cols, (out_h, out_w) = im2col(x.data.reshape(n * c, 1, h, w), kernel, stride, 0)
    out_data = cols.mean(axis=1).reshape(n, c, out_h, out_w)
    denom = kernel * kernel

    def backward_fn(grad: np.ndarray) -> None:
        g = grad.reshape(n * c, 1, out_h * out_w) / denom
        dcols = np.broadcast_to(g, cols.shape).astype(grad.dtype)
        dx = col2im(dcols, (n * c, 1, h, w), kernel, stride, 0)
        x._accumulate(dx.reshape(n, c, h, w))

    return Tensor._make(out_data, (x,), backward_fn, "avg_pool2d")


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Spatially average NCHW features to (N, C)."""
    return x.mean(axis=(2, 3))


# ----------------------------------------------------------------------
# Softmax family
# ----------------------------------------------------------------------
def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    logsumexp = np.log(exp.sum(axis=axis, keepdims=True))
    out_data = shifted - logsumexp
    softmax_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward_fn(grad: np.ndarray) -> None:
        x._accumulate(grad - softmax_data * grad.sum(axis=axis, keepdims=True))

    return Tensor._make(out_data, (x,), backward_fn, "log_softmax")


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax."""
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)

    def backward_fn(grad: np.ndarray) -> None:
        dot = (grad * out_data).sum(axis=axis, keepdims=True)
        x._accumulate(out_data * (grad - dot))

    return Tensor._make(out_data, (x,), backward_fn, "softmax")


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: scales kept activations by ``1/(1-rate)``."""
    if not training or rate <= 0.0:
        return x
    if not 0.0 <= rate < 1.0:
        raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
    x = as_tensor(x)
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep) / keep

    def backward_fn(grad: np.ndarray) -> None:
        x._accumulate(grad * mask)

    return Tensor._make(x.data * mask, (x,), backward_fn, "dropout")


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer labels ``(N,)`` to a one-hot float matrix ``(N, num_classes)``."""
    labels = np.asarray(labels, dtype=np.int64)
    if labels.ndim != 1:
        raise ValueError("labels must be a 1-D integer array")
    if labels.min(initial=0) < 0 or (labels.size and labels.max() >= num_classes):
        raise ValueError("label out of range")
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float64)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight + bias`` (weight shape: (in, out))."""
    out = as_tensor(x) @ weight
    if bias is not None:
        out = out + bias
    return out
