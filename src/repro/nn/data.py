"""Dataset / DataLoader utilities for training :mod:`repro.nn` models."""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

import numpy as np


class Dataset:
    """An in-memory supervised dataset of (inputs, labels)."""

    def __init__(self, inputs: np.ndarray, labels: np.ndarray) -> None:
        inputs = np.asarray(inputs)
        labels = np.asarray(labels)
        if len(inputs) != len(labels):
            raise ValueError(
                f"inputs ({len(inputs)}) and labels ({len(labels)}) differ in length"
            )
        self.inputs = inputs
        self.labels = labels

    def __len__(self) -> int:
        return len(self.inputs)

    def __getitem__(self, index) -> Tuple[np.ndarray, np.ndarray]:
        return self.inputs[index], self.labels[index]

    def subset(self, indices: Sequence[int]) -> "Dataset":
        indices = np.asarray(indices)
        return Dataset(self.inputs[indices], self.labels[indices])

    def split(
        self, fraction: float, rng: Optional[np.random.Generator] = None
    ) -> Tuple["Dataset", "Dataset"]:
        """Random split into (first, second) with ``fraction`` going to first."""
        if not 0.0 < fraction < 1.0:
            raise ValueError(f"fraction must be in (0, 1), got {fraction}")
        rng = rng or np.random.default_rng(0)
        order = rng.permutation(len(self))
        cut = int(round(fraction * len(self)))
        return self.subset(order[:cut]), self.subset(order[cut:])


class DataLoader:
    """Mini-batch iterator over a :class:`Dataset`."""

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int = 32,
        shuffle: bool = True,
        seed: int = 0,
        drop_last: bool = False,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        stop = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, stop, self.batch_size):
            idx = order[start : start + self.batch_size]
            if self.drop_last and len(idx) < self.batch_size:
                break
            yield self.dataset.inputs[idx], self.dataset.labels[idx]
