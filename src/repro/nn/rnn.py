"""Recurrent layers for the :mod:`repro.nn` substrate.

DeepSense (Sec. II-A) stacks a recurrent network on top of its convolutional
sensor-fusion layers "to extract temporal trends".  This module provides a
GRU cell/layer built on the autograd engine — sufficient for interval-level
temporal modelling at numpy-trainable scale.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from . import init as initializers
from .layers import Module, Parameter
from .tensor import Tensor, as_tensor, stack


class GRUCell(Module):
    """A single gated-recurrent-unit step.

    h' = (1 - z) * h + z * tanh(W_n x + b_n + r * (U_n h))
    with update gate z and reset gate r computed from (x, h).
    """

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.input_size = input_size
        self.hidden_size = hidden_size
        # One fused weight per source, producing [r | z | n] pre-activations.
        self.w_input = Parameter(
            initializers.xavier_uniform((input_size, 3 * hidden_size), rng)
        )
        self.w_hidden = Parameter(
            initializers.xavier_uniform((hidden_size, 3 * hidden_size), rng)
        )
        self.bias = Parameter(initializers.zeros((3 * hidden_size,)))

    def forward(self, x: Tensor, hidden: Optional[Tensor] = None) -> Tensor:
        x = as_tensor(x)
        if x.ndim != 2 or x.shape[1] != self.input_size:
            raise ValueError(
                f"expected input (N, {self.input_size}), got {x.shape}"
            )
        if hidden is None:
            hidden = Tensor(np.zeros((x.shape[0], self.hidden_size)))
        h = self.hidden_size
        gates_x = x @ self.w_input + self.bias
        gates_h = hidden @ self.w_hidden
        r = (gates_x[:, 0:h] + gates_h[:, 0:h]).sigmoid()
        z = (gates_x[:, h : 2 * h] + gates_h[:, h : 2 * h]).sigmoid()
        n = (gates_x[:, 2 * h : 3 * h] + r * gates_h[:, 2 * h : 3 * h]).tanh()
        one = Tensor(np.ones_like(z.data))
        return (one - z) * hidden + z * n

    def infer(self, x: np.ndarray, hidden: Optional[np.ndarray] = None) -> np.ndarray:
        """Raw-ndarray GRU step, arithmetic-identical to :meth:`forward`."""
        if hidden is None:
            hidden = np.zeros((x.shape[0], self.hidden_size))
        h = self.hidden_size
        gates_x = x @ self.w_input.data + self.bias.data
        gates_h = hidden @ self.w_hidden.data
        r = 1.0 / (1.0 + np.exp(-(gates_x[:, 0:h] + gates_h[:, 0:h])))
        z = 1.0 / (1.0 + np.exp(-(gates_x[:, h : 2 * h] + gates_h[:, h : 2 * h])))
        n = np.tanh(gates_x[:, 2 * h : 3 * h] + r * gates_h[:, 2 * h : 3 * h])
        return (np.ones_like(z) - z) * hidden + z * n


class GRU(Module):
    """Unidirectional GRU over a (N, T, F) sequence."""

    def __init__(self, input_size: int, hidden_size: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.cell = GRUCell(input_size, hidden_size, rng=rng)
        self.input_size = input_size
        self.hidden_size = hidden_size

    def forward(self, x: Tensor, hidden: Optional[Tensor] = None) -> Tuple[Tensor, Tensor]:
        """Returns ``(outputs, last_hidden)``; outputs shaped (N, T, H)."""
        x = as_tensor(x)
        if x.ndim != 3 or x.shape[2] != self.input_size:
            raise ValueError(f"expected (N, T, {self.input_size}), got {x.shape}")
        steps: List[Tensor] = []
        state = hidden
        for t in range(x.shape[1]):
            state = self.cell(x[:, t, :], state)
            steps.append(state)
        outputs = stack(steps, axis=1)
        return outputs, state

    def last_output(self, x: Tensor) -> Tensor:
        """Convenience: just the final hidden state."""
        _, state = self.forward(x)
        return state

    def infer(self, x: np.ndarray, hidden: Optional[np.ndarray] = None) -> np.ndarray:
        """Raw-ndarray scan over the sequence; returns the final hidden state."""
        state = hidden
        for t in range(x.shape[1]):
            state = self.cell.infer(x[:, t, :], state)
        return state
