"""Classification metrics shared by the experiments and services."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np


def _validate_labels(predictions: np.ndarray, labels: np.ndarray) -> None:
    if predictions.shape != labels.shape or predictions.ndim != 1:
        raise ValueError("predictions and labels must be matching 1-D arrays")
    if predictions.size == 0:
        raise ValueError("cannot score zero samples")


def accuracy(predictions: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy."""
    predictions = np.asarray(predictions)
    labels = np.asarray(labels)
    _validate_labels(predictions, labels)
    return float((predictions == labels).mean())


def top_k_accuracy(probabilities: np.ndarray, labels: np.ndarray, k: int = 5) -> float:
    """Fraction of samples whose true label is among the k most probable."""
    probabilities = np.asarray(probabilities, dtype=np.float64)
    labels = np.asarray(labels, dtype=np.int64)
    if probabilities.ndim != 2 or len(probabilities) != len(labels):
        raise ValueError("probabilities must be (N, C) matching labels (N,)")
    if not 1 <= k <= probabilities.shape[1]:
        raise ValueError(f"k must be in [1, {probabilities.shape[1]}]")
    top = np.argpartition(probabilities, -k, axis=1)[:, -k:]
    return float((top == labels[:, None]).any(axis=1).mean())


def confusion_matrix(
    predictions: np.ndarray, labels: np.ndarray, num_classes: Optional[int] = None
) -> np.ndarray:
    """(num_classes, num_classes) matrix: rows = truth, columns = prediction."""
    predictions = np.asarray(predictions, dtype=np.int64)
    labels = np.asarray(labels, dtype=np.int64)
    _validate_labels(predictions, labels)
    if num_classes is None:
        num_classes = int(max(predictions.max(), labels.max())) + 1
    if predictions.min() < 0 or labels.min() < 0:
        raise ValueError("labels must be non-negative")
    if max(predictions.max(), labels.max()) >= num_classes:
        raise ValueError("label exceeds num_classes")
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix


def per_class_f1(
    predictions: np.ndarray, labels: np.ndarray, num_classes: Optional[int] = None
) -> np.ndarray:
    """Per-class F1 scores (0 where a class has no support and no predictions)."""
    matrix = confusion_matrix(predictions, labels, num_classes)
    tp = np.diag(matrix).astype(np.float64)
    fp = matrix.sum(axis=0) - tp
    fn = matrix.sum(axis=1) - tp
    denom = 2 * tp + fp + fn
    with np.errstate(invalid="ignore", divide="ignore"):
        f1 = np.where(denom > 0, 2 * tp / denom, 0.0)
    return f1


def macro_f1(
    predictions: np.ndarray, labels: np.ndarray, num_classes: Optional[int] = None
) -> float:
    """Unweighted mean of per-class F1 over classes that appear in truth."""
    matrix = confusion_matrix(predictions, labels, num_classes)
    support = matrix.sum(axis=1) > 0
    f1 = per_class_f1(predictions, labels, num_classes)
    return float(f1[support].mean())


def classification_report(
    predictions: np.ndarray, labels: np.ndarray, num_classes: Optional[int] = None
) -> Dict[str, float]:
    """Headline scalar metrics in one dict."""
    return {
        "accuracy": accuracy(predictions, labels),
        "macro_f1": macro_f1(predictions, labels, num_classes),
        "num_samples": float(len(np.asarray(labels))),
    }
