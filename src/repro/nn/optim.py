"""Gradient-descent optimizers for the :mod:`repro.nn` substrate."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from .layers import Parameter


class Optimizer:
    """Base optimizer over a list of parameters."""

    def __init__(self, params: Sequence[Parameter], lr: float) -> None:
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()


class SGD(Optimizer):
    """SGD with optional momentum and weight decay."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.params)

    def step(self) -> None:
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                if self._velocity[i] is None:
                    self._velocity[i] = np.zeros_like(p.data)
                self._velocity[i] = self.momentum * self._velocity[i] + grad
                grad = self._velocity[i]
            p.data = p.data - self.lr * grad


class Adam(Optimizer):
    """Adam optimizer (Kingma & Ba, 2015)."""

    def __init__(
        self,
        params: Sequence[Parameter],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: List[Optional[np.ndarray]] = [None] * len(self.params)
        self._v: List[Optional[np.ndarray]] = [None] * len(self.params)
        self._t = 0

    def step(self) -> None:
        self._t += 1
        bias1 = 1 - self.beta1**self._t
        bias2 = 1 - self.beta2**self._t
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self._m[i] is None:
                self._m[i] = np.zeros_like(p.data)
                self._v[i] = np.zeros_like(p.data)
            self._m[i] = self.beta1 * self._m[i] + (1 - self.beta1) * grad
            self._v[i] = self.beta2 * self._v[i] + (1 - self.beta2) * grad**2
            m_hat = self._m[i] / bias1
            v_hat = self._v[i] / bias2
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class StepLR:
    """Multiplies the optimizer learning rate by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self._epoch = 0

    def step(self) -> None:
        self._epoch += 1
        if self._epoch % self.step_size == 0:
            self.optimizer.lr *= self.gamma


def clip_grad_norm(params: Sequence[Parameter], max_norm: float) -> float:
    """Clip the global gradient norm in place; returns the pre-clip norm."""
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float((p.grad**2).sum())
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad = p.grad * scale
    return norm
