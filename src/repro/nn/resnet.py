"""Staged residual network with per-stage early-exit classifiers (paper Fig. 3).

The Eugene proof-of-concept divides a ResNet into three stages; except for the
bottom convolutional layer, each stage consists of six convolutional layers
with three residual shortcut connections.  A thin softmax classifier is
appended at the end of each stage so inference can stop early once the
scheduler decides confidence is high enough.

This module reproduces that topology at a scale trainable in pure numpy: the
same 3-stage / 3-residual-blocks-per-stage structure, with configurable
channel widths and input size so tests can use tiny instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from . import functional as F
from .layers import (
    BatchNorm2D,
    Conv2D,
    Dense,
    GlobalAvgPool2D,
    Module,
    Sequential,
)
from .tensor import Tensor, as_tensor


class ResidualBlock(Module):
    """Two 3x3 convolutions with a shortcut connection.

    When ``stride > 1`` or channel counts differ, the shortcut is a 1x1
    strided convolution (the standard ResNet projection shortcut).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        stride: int = 1,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.conv1 = Conv2D(in_channels, out_channels, 3, stride=stride, padding=1,
                            bias=False, rng=rng)
        self.bn1 = BatchNorm2D(out_channels)
        self.conv2 = Conv2D(out_channels, out_channels, 3, stride=1, padding=1,
                            bias=False, rng=rng)
        self.bn2 = BatchNorm2D(out_channels)
        if stride != 1 or in_channels != out_channels:
            self.shortcut: Optional[Module] = Sequential(
                Conv2D(in_channels, out_channels, 1, stride=stride, padding=0,
                       bias=False, rng=rng),
                BatchNorm2D(out_channels),
            )
        else:
            self.shortcut = None

    def forward(self, x: Tensor) -> Tensor:
        out = self.bn1(self.conv1(x)).relu()
        out = self.bn2(self.conv2(out))
        skip = x if self.shortcut is None else self.shortcut(x)
        return (out + skip).relu()

    def infer(self, x: np.ndarray) -> np.ndarray:
        out = F.relu_infer(self.bn1.infer(self.conv1.infer(x)))
        out = self.bn2.infer(self.conv2.infer(out))
        skip = x if self.shortcut is None else self.shortcut.infer(x)
        return F.relu_infer(out + skip)


class StageClassifier(Module):
    """Thin end-of-stage classifier: global average pool + affine + softmax."""

    def __init__(self, channels: int, num_classes: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.pool = GlobalAvgPool2D()
        self.fc = Dense(channels, num_classes, rng=rng)

    def forward(self, features: Tensor) -> Tensor:
        """Return logits (apply :func:`repro.nn.functional.softmax` for probs)."""
        return self.fc(self.pool(features))

    def infer(self, features: np.ndarray) -> np.ndarray:
        return self.fc.infer(self.pool.infer(features))


@dataclass
class StagedResNetConfig:
    """Hyperparameters of the staged ResNet.

    The defaults mirror the paper's three-stage topology (three residual
    blocks, i.e. six conv layers, per stage) at a numpy-trainable width.
    """

    num_classes: int = 10
    in_channels: int = 3
    image_size: int = 16
    stage_channels: Tuple[int, ...] = (8, 16, 32)
    blocks_per_stage: int = 3
    seed: int = 0

    @property
    def num_stages(self) -> int:
        return len(self.stage_channels)


class StagedResNet(Module):
    """Three-stage residual CNN with a classifier at every stage boundary.

    Two entry points matter for Eugene:

    - :meth:`forward` runs all stages, returning one logits tensor per stage
      (used for training with joint per-stage losses).
    - :meth:`run_stage` runs exactly one stage given the previous stage's
      feature map, returning ``(features, logits)``.  This is the unit of
      work the RTDeepIoT scheduler dispatches.
    """

    def __init__(self, config: Optional[StagedResNetConfig] = None) -> None:
        super().__init__()
        self.config = config or StagedResNetConfig()
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)

        # Bottom convolutional layer (the one layer outside all stages in Fig. 3).
        self.stem = Sequential(
            Conv2D(cfg.in_channels, cfg.stage_channels[0], 3, stride=1, padding=1,
                   bias=False, rng=rng),
            BatchNorm2D(cfg.stage_channels[0]),
        )

        stages: List[Sequential] = []
        classifiers: List[StageClassifier] = []
        prev = cfg.stage_channels[0]
        for stage_idx, channels in enumerate(cfg.stage_channels):
            blocks: List[Module] = []
            for block_idx in range(cfg.blocks_per_stage):
                stride = 2 if (block_idx == 0 and stage_idx > 0) else 1
                blocks.append(ResidualBlock(prev, channels, stride=stride, rng=rng))
                prev = channels
            stages.append(Sequential(*blocks))
            classifiers.append(StageClassifier(channels, cfg.num_classes, rng=rng))
        self.stages = stages
        self.classifiers = classifiers

    # ------------------------------------------------------------------
    @property
    def num_stages(self) -> int:
        return len(self.stages)

    def forward(self, x: Tensor) -> List[Tensor]:
        """Run all stages; return the list of per-stage logits."""
        x = as_tensor(x)
        features = self.stem(x).relu()
        logits: List[Tensor] = []
        for stage, classifier in zip(self.stages, self.classifiers):
            features = stage(features)
            logits.append(classifier(features))
        return logits

    def run_stem(self, x: Tensor) -> Tensor:
        """Run the bottom convolution; the result feeds :meth:`run_stage` (0)."""
        return self.stem(as_tensor(x)).relu()

    def run_stage(self, features: Tensor, stage_idx: int) -> Tuple[Tensor, Tensor]:
        """Execute stage ``stage_idx`` on ``features`` from the previous stage.

        Returns ``(new_features, logits)``.
        """
        if not 0 <= stage_idx < self.num_stages:
            raise IndexError(f"stage {stage_idx} out of range [0, {self.num_stages})")
        new_features = self.stages[stage_idx](features)
        logits = self.classifiers[stage_idx](new_features)
        return new_features, logits

    # ------------------------------------------------------------------
    # Numpy-facing inference helpers (the no-Tensor fast path)
    # ------------------------------------------------------------------
    def infer_stem(self, x: np.ndarray) -> np.ndarray:
        """Raw-ndarray stem: no autograd graph, no Tensor wrappers."""
        return F.relu_infer(self.stem.infer(np.asarray(x)))

    def infer_stage(self, features: np.ndarray, stage_idx: int) -> Tuple[np.ndarray, np.ndarray]:
        """Raw-ndarray counterpart of :meth:`run_stage`.

        Returns ``(new_features, logits)`` as plain arrays.  Activations are
        never wrapped in :class:`Tensor`, so per-stage serving pays neither
        graph construction nor backward-closure allocation.  Outputs are
        bit-identical to :meth:`run_stage` in eval mode.
        """
        if not 0 <= stage_idx < self.num_stages:
            raise IndexError(f"stage {stage_idx} out of range [0, {self.num_stages})")
        new_features = self.stages[stage_idx].infer(features)
        logits = self.classifiers[stage_idx].infer(new_features)
        return new_features, logits

    def predict_proba(self, x: np.ndarray) -> List[np.ndarray]:
        """Per-stage softmax probabilities for a batch (eval mode respected).

        In eval mode this runs the raw-ndarray fast path; during training
        (batch statistics, running-stat updates) it falls back to the
        recording forward.  Both produce bit-identical probabilities.
        """
        if self.training:
            logits = self.forward(Tensor(x))
            return [F.softmax(l, axis=-1).data for l in logits]
        features = self.infer_stem(np.asarray(x))
        probs: List[np.ndarray] = []
        for stage_idx in range(self.num_stages):
            features, logits = self.infer_stage(features, stage_idx)
            probs.append(F.softmax_infer(logits, axis=-1))
        return probs

    def predict(self, x: np.ndarray, stage: int = -1) -> np.ndarray:
        """Class predictions using the classifier of ``stage`` (default: last)."""
        return self.predict_proba(x)[stage].argmax(axis=-1)

    def stage_confidences(self, x: np.ndarray) -> np.ndarray:
        """Matrix (num_stages, N) of top-1 confidence at each stage."""
        probs = self.predict_proba(x)
        return np.stack([p.max(axis=-1) for p in probs], axis=0)

    def stage_layer_specs(self) -> List[List[dict]]:
        """Describe each stage's conv layers for the execution profiler.

        Returns, per stage, a list of dicts with ``in_channels``,
        ``out_channels``, ``kernel``, ``stride`` and ``input_size`` — the
        features the FastDeepIoT-style profiler (S8) regresses on.
        """
        specs: List[List[dict]] = []
        size = self.config.image_size
        for stage_idx, stage in enumerate(self.stages):
            layer_specs: List[dict] = []
            for block in stage:
                for conv in (block.conv1, block.conv2):
                    layer_specs.append(
                        {
                            "in_channels": conv.in_channels,
                            "out_channels": conv.out_channels,
                            "kernel": conv.kernel,
                            "stride": conv.stride,
                            "input_size": size,
                        }
                    )
                    if conv.stride > 1:
                        size //= conv.stride
            specs.append(layer_specs)
        return specs
