"""The DeepSense architecture (Sec. II-A, [4]) on the numpy substrate.

"Sensory data are aligned and divided into time intervals for processing.
For each interval, DeepSense first applies an individual CNN to each sensor
data stream, encoding relevant local features.  A (global) CNN is then
applied to the respective outputs to model interactions among multiple
sensors for effective sensor fusion.  Next, an RNN is applied to extract
temporal trends. ...  at the last stage, either an affine transformation or
a softmax output is used ... depending on whether the output is an
estimation or a classification result."

This module implements exactly that pipeline:

- per-sensor 1-D-over-time convolutions inside each interval (realized as
  Conv2D with a (1, k) receptive field by treating the channel axis as the
  sensor's measurement axes);
- a merge convolution across sensors;
- a GRU over the interval sequence;
- a softmax head (classification) or an affine head (estimation), the
  latter optionally emitting (mean, log-variance) pairs for the RDeepSense
  uncertainty extension.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from . import functional as F
from .layers import Conv2D, Dense, Module, Parameter, Sequential
from .rnn import GRU
from .tensor import Tensor, as_tensor, concatenate


@dataclass
class DeepSenseConfig:
    num_sensors: int = 2
    channels_per_sensor: int = 3
    num_intervals: int = 8
    samples_per_interval: int = 16
    #: channels of the per-sensor and merge convolutions.
    conv_channels: int = 8
    #: kernel length along the time axis within an interval.
    kernel: int = 3
    hidden_size: int = 32
    #: classification: number of classes; estimation: output dimension.
    output_dim: int = 6
    task: str = "classification"  # or "estimation"
    #: estimation only — also emit a log-variance per output (RDeepSense).
    predict_variance: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.task not in ("classification", "estimation"):
            raise ValueError(f"unknown task {self.task!r}")
        if self.task == "classification" and self.predict_variance:
            raise ValueError("variance output applies to estimation tasks only")
        if min(self.num_sensors, self.channels_per_sensor, self.num_intervals,
               self.samples_per_interval, self.conv_channels,
               self.hidden_size, self.output_dim) < 1:
            raise ValueError("all dimensions must be positive")


class DeepSense(Module):
    """Sensor-fusion network: per-sensor CNN -> merge CNN -> GRU -> head.

    Input layout matches :func:`repro.datasets.make_sensor_dataset`:
    ``(N, num_sensors * channels_per_sensor, num_intervals,
    samples_per_interval)``.
    """

    def __init__(self, config: Optional[DeepSenseConfig] = None) -> None:
        super().__init__()
        self.config = config or DeepSenseConfig()
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        pad = cfg.kernel // 2

        # One local CNN per sensor; convolution runs along the within-
        # interval time axis (width), with kernel height 1 realized by
        # keeping intervals separate (kernel k, padding over width only is
        # approximated with square kernels over the (interval, time) grid
        # restricted by interval height 1 slices in forward()).
        self.local_convs = [
            Sequential(
                Conv2D(cfg.channels_per_sensor, cfg.conv_channels, cfg.kernel,
                       stride=1, padding=pad, rng=rng),
            )
            for _ in range(cfg.num_sensors)
        ]
        self.merge_conv = Conv2D(
            cfg.num_sensors * cfg.conv_channels, cfg.conv_channels, cfg.kernel,
            stride=1, padding=pad, rng=rng,
        )
        self.gru = GRU(cfg.conv_channels * cfg.samples_per_interval,
                       cfg.hidden_size, rng=rng)
        head_out = cfg.output_dim * (2 if cfg.predict_variance else 1)
        self.head = Dense(cfg.hidden_size, head_out, rng=rng)

    # ------------------------------------------------------------------
    def _split_sensors(self, x: Tensor) -> List[Tensor]:
        cfg = self.config
        per = cfg.channels_per_sensor
        return [x[:, i * per : (i + 1) * per, :, :] for i in range(cfg.num_sensors)]

    def features(self, x: Tensor) -> Tensor:
        """Fused temporal features: the GRU's final hidden state (N, H)."""
        x = as_tensor(x)
        cfg = self.config
        expected = (cfg.num_sensors * cfg.channels_per_sensor,
                    cfg.num_intervals, cfg.samples_per_interval)
        if x.ndim != 4 or x.shape[1:] != expected:
            raise ValueError(f"expected input (N, {expected}), got {x.shape}")
        # Per-sensor local CNNs.
        encoded = [conv(s).relu() for conv, s in
                   zip(self.local_convs, self._split_sensors(x))]
        # Merge CNN across sensors.
        merged = self.merge_conv(concatenate(encoded, axis=1)).relu()
        # (N, C, I, T) -> sequence over intervals with flattened features.
        n = merged.shape[0]
        seq = merged.transpose(0, 2, 1, 3).reshape(
            n, cfg.num_intervals, cfg.conv_channels * cfg.samples_per_interval
        )
        _, state = self.gru(seq)
        return state

    def forward(self, x: Tensor) -> Tensor:
        """Logits (classification) or point estimates / (mean, log-var) pairs."""
        return self.head(self.features(x))

    # ------------------------------------------------------------------
    # Inference fast path: raw ndarrays end to end, no Tensor wrappers.
    # ------------------------------------------------------------------
    def infer_features(self, x: np.ndarray) -> np.ndarray:
        """Raw-ndarray counterpart of :meth:`features` (bit-identical)."""
        x = np.asarray(x)
        cfg = self.config
        expected = (cfg.num_sensors * cfg.channels_per_sensor,
                    cfg.num_intervals, cfg.samples_per_interval)
        if x.ndim != 4 or x.shape[1:] != expected:
            raise ValueError(f"expected input (N, {expected}), got {x.shape}")
        per = cfg.channels_per_sensor
        encoded = [
            F.relu_infer(conv.infer(x[:, i * per : (i + 1) * per, :, :]))
            for i, conv in enumerate(self.local_convs)
        ]
        merged = F.relu_infer(self.merge_conv.infer(np.concatenate(encoded, axis=1)))
        n = merged.shape[0]
        seq = merged.transpose(0, 2, 1, 3).reshape(
            n, cfg.num_intervals, cfg.conv_channels * cfg.samples_per_interval
        )
        return self.gru.infer(seq)

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Raw-ndarray head outputs (logits / estimates), no graph built."""
        return self.head.infer(self.infer_features(x))

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if self.config.task != "classification":
            raise RuntimeError("predict_proba applies to classification models")
        if self.training:
            return F.softmax(self.forward(Tensor(x)), axis=-1).data
        return F.softmax_infer(self.infer(np.asarray(x)), axis=-1)

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.config.task == "classification":
            return self.predict_proba(x).argmax(axis=-1)
        mean, _ = self.predict_with_uncertainty(x)
        return mean

    def split_mean_logvar(self, out: Tensor) -> Tuple[Tensor, Tensor]:
        """Split an estimation head's output into (mean, log_var)."""
        if not self.config.predict_variance:
            raise RuntimeError("model was built without variance outputs")
        d = self.config.output_dim
        return out[:, :d], out[:, d:]

    def predict_with_uncertainty(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(mean, std) for estimation models; std is zeros without variance head."""
        if self.config.task != "estimation":
            raise RuntimeError("uncertainty output applies to estimation models")
        if self.training:
            out = self.forward(Tensor(x)).data
        else:
            out = self.infer(np.asarray(x))
        if self.config.predict_variance:
            d = self.config.output_dim
            mean, log_var = out[:, :d], out[:, d:]
            return mean, np.exp(0.5 * log_var)
        return out, np.zeros_like(out)
