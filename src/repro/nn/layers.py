"""Layer and module abstractions for the :mod:`repro.nn` substrate.

A :class:`Module` owns named parameters and child modules, supports
train/eval mode switching (needed by Dropout and BatchNorm, and by the
RDeepSense MC-dropout calibration baseline which runs dropout at inference
time), and provides a flat ``state_dict`` for the Eugene model-caching
service to serialize reduced models.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from . import functional as F
from . import init as initializers
from .tensor import Tensor, no_grad


class Parameter(Tensor):
    """A trainable tensor — always requires grad."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for all layers and models."""

    def __init__(self) -> None:
        self.training = True

    # -- forward -------------------------------------------------------
    def forward(self, x: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Inference fast path: raw ndarray in, raw ndarray out, no graph.

        Subclasses on the hot path override this with Tensor-free numpy
        code whose arithmetic matches :meth:`forward` bit for bit.  The
        default falls back to a no-grad :meth:`forward`, so any module is
        at least graph-free under :func:`repro.nn.tensor.no_grad`.
        """
        with no_grad():
            return self.forward(Tensor(x)).data

    # -- traversal -----------------------------------------------------
    def children(self) -> Iterator["Module"]:
        for value in self.__dict__.values():
            if isinstance(value, Module):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        yield item

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        for name, value in self.__dict__.items():
            full = f"{prefix}{name}"
            if isinstance(value, Parameter):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_parameters(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_parameters(prefix=f"{full}.{i}.")
                    elif isinstance(item, Parameter):
                        yield f"{full}.{i}", item

    def parameters(self) -> List[Parameter]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # -- mode ----------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for child in self.children():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- serialization -------------------------------------------------
    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        """Non-trainable persistent arrays (e.g. batch-norm running stats).

        Any plain ``np.ndarray`` attribute of a module is treated as a
        buffer — trainable tensors are :class:`Parameter` instances and are
        reported by :meth:`named_parameters` instead.
        """
        for name, value in self.__dict__.items():
            full = f"{prefix}{name}"
            if isinstance(value, np.ndarray):
                yield full, value
            elif isinstance(value, Module):
                yield from value.named_buffers(prefix=f"{full}.")
            elif isinstance(value, (list, tuple)):
                for i, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_buffers(prefix=f"{full}.{i}.")

    def state_dict(self) -> Dict[str, np.ndarray]:
        """All parameters *and* buffers, keyed by dotted path."""
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        state.update({name: b.copy() for name, b in self.named_buffers()})
        return state

    def _set_buffer(self, dotted: str, value: np.ndarray) -> None:
        parts = dotted.split(".")
        target = self
        for part in parts[:-1]:
            if part.isdigit():
                target = target[int(part)] if hasattr(target, "__getitem__") else getattr(target, part)
            else:
                attr = getattr(target, part)
                target = attr
        setattr(target, parts[-1], value)

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        params = dict(self.named_parameters())
        buffers = dict(self.named_buffers())
        expected = set(params) | set(buffers)
        missing = expected - set(state)
        unexpected = set(state) - expected
        if missing or unexpected:
            raise KeyError(
                f"state dict mismatch: missing={sorted(missing)}, "
                f"unexpected={sorted(unexpected)}"
            )
        for name, p in params.items():
            if p.data.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for {name}: "
                    f"{p.data.shape} vs {state[name].shape}"
                )
            p.data = state[name].astype(np.float64, copy=True)
        for name, b in buffers.items():
            if b.shape != state[name].shape:
                raise ValueError(
                    f"shape mismatch for buffer {name}: "
                    f"{b.shape} vs {state[name].shape}"
                )
            self._set_buffer(name, state[name].astype(np.float64, copy=True))


class Dense(Module):
    """Fully connected layer: ``y = x @ W + b`` with ``W`` shaped (in, out)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(initializers.he_normal((in_features, out_features), rng))
        self.bias = Parameter(initializers.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def infer(self, x: np.ndarray) -> np.ndarray:
        out = x @ self.weight.data
        if self.bias is not None:
            out = out + self.bias.data
        return out


class Conv2D(Module):
    """2-D convolution over NCHW input with square kernels."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel: int = 3,
        stride: int = 1,
        padding: int = 1,
        bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel = kernel
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            initializers.he_normal((out_channels, in_channels, kernel, kernel), rng)
        )
        self.bias = Parameter(initializers.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def infer(self, x: np.ndarray) -> np.ndarray:
        return F.conv2d_infer(
            x,
            self.weight.data,
            None if self.bias is None else self.bias.data,
            stride=self.stride,
            padding=self.padding,
        )


class BatchNorm2D(Module):
    """Batch normalization over NCHW channels with running statistics."""

    def __init__(self, channels: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.channels = channels
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(initializers.ones((channels,)))
        self.beta = Parameter(initializers.zeros((channels,)))
        self.running_mean = np.zeros(channels, dtype=np.float64)
        self.running_var = np.ones(channels, dtype=np.float64)

    def forward(self, x: Tensor) -> Tensor:
        axes = (0, 2, 3)
        if self.training:
            mean = x.mean(axis=axes, keepdims=True)
            var = x.var(axis=axes, keepdims=True)
            m = self.momentum
            self.running_mean = (1 - m) * self.running_mean + m * mean.data.reshape(-1)
            self.running_var = (1 - m) * self.running_var + m * var.data.reshape(-1)
            normalized = (x - mean) / (var + self.eps).sqrt()
        else:
            mean = self.running_mean.reshape(1, -1, 1, 1)
            std = np.sqrt(self.running_var + self.eps).reshape(1, -1, 1, 1)
            normalized = (x - mean) * (1.0 / std)
        shape = (1, self.channels, 1, 1)
        return normalized * self.gamma.reshape(shape) + self.beta.reshape(shape)

    def infer(self, x: np.ndarray) -> np.ndarray:
        if self.training:
            # Batch statistics (and running-stat updates) need the full
            # forward; inference mode is an eval-time construct.
            return super().infer(x)
        mean = self.running_mean.reshape(1, -1, 1, 1)
        std = np.sqrt(self.running_var + self.eps).reshape(1, -1, 1, 1)
        normalized = (x - mean) * (1.0 / std)
        shape = (1, self.channels, 1, 1)
        return normalized * self.gamma.data.reshape(shape) + self.beta.data.reshape(shape)


class BatchNorm1D(Module):
    """Batch normalization over (N, features) input."""

    def __init__(self, features: int, momentum: float = 0.1, eps: float = 1e-5) -> None:
        super().__init__()
        self.features = features
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(initializers.ones((features,)))
        self.beta = Parameter(initializers.zeros((features,)))
        self.running_mean = np.zeros(features, dtype=np.float64)
        self.running_var = np.ones(features, dtype=np.float64)

    def forward(self, x: Tensor) -> Tensor:
        if self.training:
            mean = x.mean(axis=0, keepdims=True)
            var = x.var(axis=0, keepdims=True)
            m = self.momentum
            self.running_mean = (1 - m) * self.running_mean + m * mean.data.reshape(-1)
            self.running_var = (1 - m) * self.running_var + m * var.data.reshape(-1)
            normalized = (x - mean) / (var + self.eps).sqrt()
        else:
            mean = self.running_mean.reshape(1, -1)
            std = np.sqrt(self.running_var + self.eps).reshape(1, -1)
            normalized = (x - mean) * (1.0 / std)
        return normalized * self.gamma + self.beta

    def infer(self, x: np.ndarray) -> np.ndarray:
        if self.training:
            return super().infer(x)
        mean = self.running_mean.reshape(1, -1)
        std = np.sqrt(self.running_var + self.eps).reshape(1, -1)
        normalized = (x - mean) * (1.0 / std)
        return normalized * self.gamma.data + self.beta.data


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()

    def infer(self, x: np.ndarray) -> np.ndarray:
        return F.relu_infer(x)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()

    def infer(self, x: np.ndarray) -> np.ndarray:
        return np.tanh(x)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()

    def infer(self, x: np.ndarray) -> np.ndarray:
        return 1.0 / (1.0 + np.exp(-x))


class Dropout(Module):
    """Inverted dropout.

    ``always_on=True`` keeps dropout active in eval mode — this is the knob
    the RDeepSense-style MC-dropout calibration baseline uses to draw
    stochastic forward passes at inference time.
    """

    def __init__(self, rate: float = 0.5, seed: int = 0, always_on: bool = False) -> None:
        super().__init__()
        self.rate = rate
        self.always_on = always_on
        self._rng = np.random.default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        active = self.training or self.always_on
        return F.dropout(x, self.rate, self._rng, training=active)

    def infer(self, x: np.ndarray) -> np.ndarray:
        if self.training or self.always_on:
            # MC dropout needs a stochastic pass; take the no-grad fallback
            # so the mask comes from the same rng stream as forward().
            return super().infer(x)
        return x


class Flatten(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.reshape(x.shape[0], -1)

    def infer(self, x: np.ndarray) -> np.ndarray:
        return x.reshape(x.shape[0], -1)


class GlobalAvgPool2D(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)

    def infer(self, x: np.ndarray) -> np.ndarray:
        return F.global_avg_pool2d_infer(x)


class MaxPool2D(Module):
    def __init__(self, kernel: int = 2, stride: Optional[int] = None) -> None:
        super().__init__()
        self.kernel = kernel
        self.stride = stride

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel, self.stride)

    def infer(self, x: np.ndarray) -> np.ndarray:
        return F.max_pool2d_infer(x, self.kernel, self.stride)


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        self.layers = list(modules)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def infer(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.infer(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]
