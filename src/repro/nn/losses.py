"""Loss functions, including the paper's entropy-regularized objective.

Equation (4) of the Eugene paper defines the RTDeepIoT confidence-calibration
loss ``L = CE(p, y) + alpha * H(p)``: cross entropy plus a signed entropy
regularizer.  Minimizing with ``alpha < 0`` *rewards* entropy, lowering
confidence (use when the network is overconfident, i.e. conf > acc);
``alpha > 0`` penalizes entropy, raising confidence (use when the network is
underconfident).  See :func:`repro.calibration.entropy_reg.choose_alpha` for
the automated sign rule.  The weighted
MSE+NLL objective of RDeepSense (Section II-D) is provided as
:func:`gaussian_nll_mse` for the estimation-task service.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from . import functional as F
from .tensor import Tensor, as_tensor


def cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Mean cross entropy between logits ``(N, C)`` and integer labels ``(N,)``."""
    logits = as_tensor(logits)
    labels = np.asarray(labels, dtype=np.int64)
    log_probs = F.log_softmax(logits, axis=-1)
    n = logits.shape[0]
    picked = log_probs[np.arange(n), labels]
    return -picked.mean()


def entropy(probs: Tensor, axis: int = -1, eps: float = 1e-12) -> Tensor:
    """Shannon entropy ``H(p) = -sum p log p`` along ``axis`` (mean over batch)."""
    probs = as_tensor(probs)
    clipped = probs.clip(eps, 1.0)
    per_sample = -(probs * clipped.log()).sum(axis=axis)
    return per_sample.mean()


def entropy_regularized_ce(
    logits: Tensor, labels: np.ndarray, alpha: float
) -> Tensor:
    """The RTDeepIoT calibration loss of Eq. (4): ``CE + alpha * H(p)``."""
    probs = F.softmax(logits, axis=-1)
    return cross_entropy(logits, labels) + alpha * entropy(probs)


def mse(pred: Tensor, target: np.ndarray) -> Tensor:
    """Mean squared error."""
    pred = as_tensor(pred)
    diff = pred - np.asarray(target, dtype=np.float64)
    return (diff * diff).mean()


def mae(pred: Tensor, target: np.ndarray) -> Tensor:
    """Mean absolute error."""
    pred = as_tensor(pred)
    return (pred - np.asarray(target, dtype=np.float64)).abs().mean()


def gaussian_nll(
    mean: Tensor, log_var: Tensor, target: np.ndarray
) -> Tensor:
    """Negative log-likelihood of targets under N(mean, exp(log_var)).

    This is the nonlinear error term discussed in Section II-D: on its own it
    biases the mean and *overestimates* uncertainty.
    """
    target = np.asarray(target, dtype=np.float64)
    inv_var = (-log_var).exp()
    sq = (mean - target) ** 2
    return 0.5 * (log_var + sq * inv_var).mean()


def gaussian_nll_mse(
    mean: Tensor,
    log_var: Tensor,
    target: np.ndarray,
    weight: float = 0.5,
) -> Tensor:
    """RDeepSense's weighted-sum loss: ``w * MSE + (1 - w) * NLL``.

    MSE alone underestimates uncertainty and NLL alone overestimates it
    (Section II-D); the calibrated ``weight`` makes the two biases roughly
    cancel.
    """
    if not 0.0 <= weight <= 1.0:
        raise ValueError(f"weight must lie in [0, 1], got {weight}")
    return weight * mse(mean, target) + (1.0 - weight) * gaussian_nll(
        mean, log_var, target
    )
