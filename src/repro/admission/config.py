"""Queue-level admission configuration shared by runtime and simulator.

:class:`AdmissionConfig` bounds the *ingress queue* of a serving loop —
the tasks admitted but not yet executing — and decides what happens to the
excess: degrade it to an earlier exit stage first (cheap, still useful),
shed it outright second (explicit, typed, never silent).  It plugs into
:class:`~repro.scheduler.runtime.RuntimeConfig` and
:class:`~repro.scheduler.simulator.SimulationConfig`; ``None`` (the
default everywhere) keeps the pre-admission behaviour bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .shedding import SHED_POLICIES, UTILITY


@dataclass(frozen=True)
class AdmissionConfig:
    """Bounded-queue and overload-response knobs for one serving loop."""

    #: hard bound on tasks admitted but not executing; excess is shed.
    #: ``None`` = unbounded (the legacy behaviour).
    max_queue_depth: Optional[int] = None
    #: soft bound: above it, excess tasks are *degraded* (stage-capped to
    #: ``degrade_stage_cap``) instead of served in full — the
    #: degrade-before-drop mode.  Must be <= max_queue_depth when both set.
    degrade_queue_depth: Optional[int] = None
    #: early-exit stage cap applied to degraded tasks (1 = first exit only).
    degrade_stage_cap: int = 1
    #: which excess work to drop first: "utility" (lowest expected utility,
    #: via the scheduler's confidence predictions) or "tail" (newest first).
    shed_policy: str = UTILITY
    #: token-bucket arrival limit applied by the simulator's open-loop
    #: ingress (the runtime takes whole batches, so rate limiting lives at
    #: the service endpoints there).  ``None`` = unlimited.
    rate_limit_per_s: Optional[float] = None
    #: bucket size for ``rate_limit_per_s``; defaults to max(1, rate).
    burst: Optional[float] = None
    #: base retry-after hint attached to shed/rejected work.
    retry_after_s: float = 0.05

    def __post_init__(self) -> None:
        if self.max_queue_depth is not None and self.max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0 when given")
        if self.degrade_queue_depth is not None:
            if self.degrade_queue_depth < 0:
                raise ValueError("degrade_queue_depth must be >= 0 when given")
            if (
                self.max_queue_depth is not None
                and self.degrade_queue_depth > self.max_queue_depth
            ):
                raise ValueError(
                    "degrade_queue_depth must not exceed max_queue_depth: "
                    "degrade is the softer response and must trigger first"
                )
        if self.degrade_stage_cap < 1:
            raise ValueError("degrade_stage_cap must be >= 1")
        if self.shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"unknown shed policy {self.shed_policy!r}; "
                f"use one of {SHED_POLICIES}"
            )
        if self.rate_limit_per_s is not None and self.rate_limit_per_s <= 0:
            raise ValueError("rate_limit_per_s must be positive when given")
        if self.burst is not None:
            if self.rate_limit_per_s is None:
                raise ValueError("burst requires rate_limit_per_s")
            if self.burst < 1:
                raise ValueError("burst must allow at least one task")
        if self.retry_after_s < 0:
            raise ValueError("retry_after_s must be non-negative")

    @property
    def bounded(self) -> bool:
        """Does this config constrain anything at all?"""
        return (
            self.max_queue_depth is not None
            or self.degrade_queue_depth is not None
            or self.rate_limit_per_s is not None
        )
