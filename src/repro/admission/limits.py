"""Rate and concurrency limiters — the mechanical half of admission control.

Both limiters are deliberately tiny, deterministic, and clock-injectable:
the :class:`~repro.scheduler.simulator.PoolSimulator` drives them on
virtual time (every decision is a pure function of the timestamps it is
fed), while the live service drives them on ``time.monotonic``.  Thread
safety matters only for the live path, so each limiter carries its own
lock.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional


class ClockSourceMixError(ValueError):
    """A :class:`TokenBucket` was driven from two unrelated timelines.

    Calls that pass ``now=`` (virtual time) interleaved with calls that
    fall back to the bucket's own clock would move ``_refilled_at``
    between timelines with no common origin, silently minting or
    destroying tokens.  The bucket latches onto whichever source its
    first decision used and refuses the other one ever after.
    """


_INTERNAL = "internal"
_EXTERNAL = "external"


class TokenBucket:
    """Classic token-bucket rate limiter.

    Tokens refill continuously at ``rate_per_s`` up to ``burst``; each
    admitted request consumes one.  :meth:`retry_after` converts the token
    deficit back into the seconds a rejected caller should wait — the
    retry-after hint carried by a typed rejection.

    **One timeline per bucket.**  A bucket is driven either by its own
    ``clock`` (no ``now=`` argument — the live service) or by explicit
    ``now=`` timestamps (virtual time — the simulator and the workload
    engine), never both: the first decision latches the source and a call
    from the other source raises :class:`ClockSourceMixError` instead of
    corrupting ``_refilled_at``.
    """

    def __init__(
        self,
        rate_per_s: float,
        burst: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if burst is not None and burst < 1:
            raise ValueError("burst must allow at least one token")
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst) if burst is not None else max(1.0, rate_per_s)
        self._clock = clock
        self._tokens = self.burst
        self._refilled_at = clock()
        #: which timeline drives this bucket; latched by the first decision.
        self._source: Optional[str] = None
        self._lock = threading.Lock()

    def _now_locked(self, now: Optional[float]) -> float:
        """Resolve the decision timestamp, latching the clock source."""
        source = _INTERNAL if now is None else _EXTERNAL
        if self._source is None:
            self._source = source
            if source == _EXTERNAL:
                # The constructor stamped _refilled_at from the internal
                # clock; restart the timeline at the caller's origin so
                # the first virtual timestamp cannot mint/destroy tokens.
                self._refilled_at = now
        elif self._source != source:
            raise ClockSourceMixError(
                f"TokenBucket latched to its {self._source} clock source; "
                f"a call {'passing now=' if now is not None else 'without now='} "
                "would interleave an unrelated timeline (tokens would be "
                "minted or destroyed). Drive each bucket from one source."
            )
        return self._clock() if now is None else now

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._refilled_at)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate_per_s)
        self._refilled_at = now

    def try_acquire(self, now: Optional[float] = None) -> bool:
        """Consume one token if available; ``now`` overrides the clock
        (virtual-time callers must pass a monotone sequence)."""
        with self._lock:
            self._refill(self._now_locked(now))
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False

    def charge(self, now: Optional[float] = None) -> None:
        """Deduct one token unconditionally, allowing the balance to go
        negative (debt).  Used by hierarchical sharing: guaranteed-share
        admissions debit the shared pool so borrowers only ever see
        capacity that is genuinely unused — a failed best-effort charge
        would silently inflate the aggregate admitted rate instead."""
        with self._lock:
            self._refill(self._now_locked(now))
            self._tokens -= 1.0

    def retry_after(self, now: Optional[float] = None) -> float:
        """Seconds until one token will be available (0 if one already is)."""
        with self._lock:
            self._refill(self._now_locked(now))
            deficit = 1.0 - self._tokens
            return max(0.0, deficit / self.rate_per_s)

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens


class ConcurrencyLimiter:
    """Bounds the number of requests simultaneously past admission."""

    def __init__(self, max_concurrent: int) -> None:
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        self.max_concurrent = max_concurrent
        self._in_flight = 0
        self._lock = threading.Lock()

    def try_acquire(self) -> bool:
        with self._lock:
            if self._in_flight >= self.max_concurrent:
                return False
            self._in_flight += 1
            return True

    def release(self) -> None:
        with self._lock:
            if self._in_flight == 0:
                raise RuntimeError("release() without a matching acquire")
            self._in_flight -= 1

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight
