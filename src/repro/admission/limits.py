"""Rate and concurrency limiters — the mechanical half of admission control.

Both limiters are deliberately tiny, deterministic, and clock-injectable:
the :class:`~repro.scheduler.simulator.PoolSimulator` drives them on
virtual time (every decision is a pure function of the timestamps it is
fed), while the live service drives them on ``time.monotonic``.  Thread
safety matters only for the live path, so each limiter carries its own
lock.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional


class TokenBucket:
    """Classic token-bucket rate limiter.

    Tokens refill continuously at ``rate_per_s`` up to ``burst``; each
    admitted request consumes one.  :meth:`retry_after` converts the token
    deficit back into the seconds a rejected caller should wait — the
    retry-after hint carried by a typed rejection.
    """

    def __init__(
        self,
        rate_per_s: float,
        burst: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive")
        if burst is not None and burst < 1:
            raise ValueError("burst must allow at least one token")
        self.rate_per_s = float(rate_per_s)
        self.burst = float(burst) if burst is not None else max(1.0, rate_per_s)
        self._clock = clock
        self._tokens = self.burst
        self._refilled_at = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._refilled_at)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate_per_s)
        self._refilled_at = now

    def try_acquire(self, now: Optional[float] = None) -> bool:
        """Consume one token if available; ``now`` overrides the clock
        (virtual-time callers must pass a monotone sequence)."""
        with self._lock:
            self._refill(self._clock() if now is None else now)
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False

    def retry_after(self, now: Optional[float] = None) -> float:
        """Seconds until one token will be available (0 if one already is)."""
        with self._lock:
            self._refill(self._clock() if now is None else now)
            deficit = 1.0 - self._tokens
            return max(0.0, deficit / self.rate_per_s)

    @property
    def tokens(self) -> float:
        with self._lock:
            return self._tokens


class ConcurrencyLimiter:
    """Bounds the number of requests simultaneously past admission."""

    def __init__(self, max_concurrent: int) -> None:
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        self.max_concurrent = max_concurrent
        self._in_flight = 0
        self._lock = threading.Lock()

    def try_acquire(self) -> bool:
        with self._lock:
            if self._in_flight >= self.max_concurrent:
                return False
            self._in_flight += 1
            return True

    def release(self) -> None:
        with self._lock:
            if self._in_flight == 0:
                raise RuntimeError("release() without a matching acquire")
            self._in_flight -= 1

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight
