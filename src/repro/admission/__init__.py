"""repro.admission — admission control and overload management.

The serving stack accepts work at three doors, and this package bounds
all of them (DeepRT-style admission control + DeepServe-style shedding,
see PAPERS.md, applied to the RTDeepIoT scheduler):

- **Service ingress** — :class:`AdmissionController` meters every gated
  endpoint with per-endpoint / per-model token buckets and concurrency
  limits; a refused request gets a typed
  :class:`~repro.service.messages.RejectedResponse` with a retry-after
  hint instead of silently queueing.
- **Scheduler queues** — :class:`AdmissionConfig` bounds the admitted-
  but-not-executing queue of the runtime and the simulator; excess work
  is degraded to an earlier exit stage (degrade-before-drop) and, past
  the hard bound, shed explicitly.
- **Which work to drop** — :mod:`repro.admission.shedding` ranks queued
  tasks by *expected utility* using the scheduler's own confidence
  predictions, so overload costs the least-valuable work first (the
  paper's utility objective, extended to the overloaded regime).

**Off by default.**  Every integration point is ``None``-guarded exactly
like :mod:`repro.telemetry` and :mod:`repro.faults`: with no controller
on the service and no :class:`AdmissionConfig` on a runtime/simulator
config, behaviour and performance are unchanged (guarded by
``benchmarks/test_admission_overhead.py``)::

    from repro import admission

    service = EugeneService(
        admission=admission.AdmissionController(
            per_endpoint={"infer": admission.EndpointLimits(rate_per_s=50)},
            per_model={"m1": admission.EndpointLimits(max_concurrent=2)},
        )
    )
"""

from .config import AdmissionConfig
from .controller import (
    CONCURRENCY,
    NO_TENANT,
    OTHER_TENANTS,
    QUEUE_FULL,
    RATE_LIMIT,
    REJECT_REASONS,
    SHED,
    TENANT_QUOTA,
    AdmissionController,
    AdmissionDecision,
    EndpointLimits,
    TenantQuota,
)
from .limits import ClockSourceMixError, ConcurrencyLimiter, TokenBucket
from .shedding import (
    SHED_POLICIES,
    TAIL,
    UTILITY,
    expected_utility,
    reachable_stage,
    select_shed,
)

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionDecision",
    "EndpointLimits",
    "TenantQuota",
    "TokenBucket",
    "ConcurrencyLimiter",
    "ClockSourceMixError",
    "expected_utility",
    "reachable_stage",
    "select_shed",
    "RATE_LIMIT",
    "CONCURRENCY",
    "QUEUE_FULL",
    "SHED",
    "TENANT_QUOTA",
    "NO_TENANT",
    "OTHER_TENANTS",
    "REJECT_REASONS",
    "SHED_POLICIES",
    "UTILITY",
    "TAIL",
]
