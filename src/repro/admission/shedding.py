"""Utility-aware load shedding (the "which work to drop" half).

When the system is saturated, dropping *some* work is forced; the paper's
objective (maximize total service utility, Sec. III) says exactly which:
the work with the lowest *expected* utility.  This module scores queued
tasks with the same confidence predictions the scheduler already uses
(:class:`~repro.scheduler.confidence.ConfidencePredictor`), discounted by
deadline feasibility — a task whose latency constraint cannot cover even
one more stage delivers nothing, so it is always the first to shed.

Both the real runtime and the discrete-event simulator call
:func:`select_shed`, so the live and simulated overload experiments shed
identically given identical views.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

if TYPE_CHECKING:  # import only for annotations: keeps this package free of
    # a runtime dependency on repro.scheduler (which imports us back).
    from ..scheduler.task import TaskView

#: Shed-policy names accepted by :class:`AdmissionConfig`.
UTILITY = "utility"  # drop lowest expected utility first
TAIL = "tail"  # drop newest arrivals first (FIFO-style backpressure)
SHED_POLICIES = (UTILITY, TAIL)


def reachable_stage(view: "TaskView", now: float, stage_time_s: float) -> int:
    """Highest stage index the task can still complete before its deadline.

    ``stage_time_s`` is the (estimated) execution time of one stage; 0 means
    "unknown" and disables the feasibility discount.  Returns -1 when not
    even the next stage fits (the task is doomed to serve only what it has).
    """
    last = view.num_stages - 1
    if stage_time_s <= 0:
        return last
    slack = view.deadline - now
    fits = int(slack / stage_time_s)
    if fits <= 0:
        return view.stages_done - 1
    return min(last, view.stages_done + fits - 1)


def expected_utility(
    view: "TaskView",
    predictor: Optional[object],
    now: float,
    stage_time_s: float = 0.0,
) -> float:
    """Expected utility of continuing to serve ``view``.

    Utility is the confidence of the answer the task would deliver (the
    paper sets utility equal to estimated confidence).  The estimate is the
    scheduler's own prediction at the highest *feasible* stage; a task that
    can finish nothing new is worth only what it already holds.
    """
    target = reachable_stage(view, now, stage_time_s)
    held = view.latest_confidence or 0.0
    if target < view.stages_done:
        return held
    if predictor is None:
        # No predictor: optimism proportional to how far the task can go.
        return max(held, (target + 1) / view.num_stages)
    if view.stages_done == 0:
        return float(predictor.prior(target))
    predicted = predictor.predict(view.stages_done - 1, held, target)
    return float(max(held, predicted))


def select_shed(
    views: Sequence["TaskView"],
    num_to_shed: int,
    predictor: Optional[object] = None,
    now: float = 0.0,
    stage_time_s: float = 0.0,
    policy: str = UTILITY,
) -> List[int]:
    """Task ids to drop so that ``len(views) - num_to_shed`` remain.

    ``utility`` drops the lowest expected utility first (ties: newest
    arrival, then highest task id, so the choice is deterministic);
    ``tail`` drops the newest arrivals outright.
    """
    if policy not in SHED_POLICIES:
        raise ValueError(f"unknown shed policy {policy!r}; use one of {SHED_POLICIES}")
    if num_to_shed <= 0:
        return []
    if num_to_shed >= len(views):
        return [v.task_id for v in views]
    if policy == TAIL:
        ranked = sorted(views, key=lambda v: (v.arrival_time, v.task_id), reverse=True)
    else:
        ranked = sorted(
            views,
            key=lambda v: (
                expected_utility(v, predictor, now, stage_time_s),
                -v.arrival_time,
                -v.task_id,
            ),
        )
    return [v.task_id for v in ranked[:num_to_shed]]
