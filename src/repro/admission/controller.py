"""Admission decisions for the service ingress (per endpoint, per model).

The controller is the front door of :class:`~repro.service.EugeneService`:
every gated endpoint asks it before doing any work.  The answer is a typed
:class:`AdmissionDecision` — never an exception and never a silent queue —
so a saturated service degrades into explicit, retry-hinted rejections
(:class:`~repro.service.messages.RejectedResponse` on the wire).

Limits compose: a request must clear the *endpoint* limiter and, when it
names a model, the *model* limiter.  Each limiter is a token bucket
(sustained rate + burst) plus an optional concurrency bound.  Telemetry
(when enabled) counts admissions and rejections per key and traces each
rejection with its retry-after hint.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .. import telemetry
from .limits import ConcurrencyLimiter, TokenBucket

#: Rejection reasons carried by decisions and :class:`RejectedResponse`.
RATE_LIMIT = "rate-limit"
CONCURRENCY = "concurrency"
QUEUE_FULL = "queue-full"
SHED = "shed"
REJECT_REASONS = (RATE_LIMIT, CONCURRENCY, QUEUE_FULL, SHED)


@dataclass(frozen=True)
class EndpointLimits:
    """Ingress limits for one admission key (an endpoint or a model)."""

    #: sustained admission rate; ``None`` = unlimited.
    rate_per_s: Optional[float] = None
    #: bucket size (burst tolerance); defaults to ``max(1, rate_per_s)``.
    burst: Optional[float] = None
    #: concurrent requests past admission; ``None`` = unlimited.
    max_concurrent: Optional[int] = None

    def __post_init__(self) -> None:
        if self.rate_per_s is not None and self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive when given")
        if self.burst is not None:
            if self.rate_per_s is None:
                raise ValueError("burst requires rate_per_s")
            if self.burst < 1:
                raise ValueError("burst must allow at least one request")
        if self.max_concurrent is not None and self.max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1 when given")

    @property
    def unlimited(self) -> bool:
        return self.rate_per_s is None and self.max_concurrent is None


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    key: str
    reason: Optional[str] = None
    #: hint for the client's retry-after aware RetryPolicy; 0 = retry freely.
    retry_after_s: float = 0.0


class _KeyState:
    """The live limiters for one admission key."""

    __slots__ = ("bucket", "concurrency")

    def __init__(self, limits: EndpointLimits) -> None:
        self.bucket = (
            TokenBucket(limits.rate_per_s, limits.burst)
            if limits.rate_per_s is not None
            else None
        )
        self.concurrency = (
            ConcurrencyLimiter(limits.max_concurrent)
            if limits.max_concurrent is not None
            else None
        )


class AdmissionController:
    """Checks (and meters) every gated request against its limits.

    ``default`` applies to every endpoint without an explicit entry in
    ``per_endpoint``; ``per_model`` keys are model ids.  A ``None`` default
    leaves unlisted endpoints ungated.
    """

    def __init__(
        self,
        default: Optional[EndpointLimits] = None,
        per_endpoint: Optional[Dict[str, EndpointLimits]] = None,
        per_model: Optional[Dict[str, EndpointLimits]] = None,
        retry_after_floor_s: float = 0.01,
    ) -> None:
        if retry_after_floor_s < 0:
            raise ValueError("retry_after_floor_s must be non-negative")
        self.default = default
        self.per_endpoint = dict(per_endpoint or {})
        self.per_model = dict(per_model or {})
        self.retry_after_floor_s = retry_after_floor_s
        self._states: Dict[Tuple[str, str], _KeyState] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _limits_for(self, scope: str, key: str) -> Optional[EndpointLimits]:
        if scope == "model":
            return self.per_model.get(key)
        return self.per_endpoint.get(key, self.default)

    def _state_for(self, scope: str, key: str) -> Optional[_KeyState]:
        limits = self._limits_for(scope, key)
        if limits is None or limits.unlimited:
            return None
        with self._lock:
            state = self._states.get((scope, key))
            if state is None:
                state = self._states[(scope, key)] = _KeyState(limits)
            return state

    def _reject(
        self, key: str, reason: str, retry_after_s: float
    ) -> AdmissionDecision:
        retry_after_s = max(retry_after_s, self.retry_after_floor_s)
        tel = telemetry.active()
        if tel is not None:
            tel.registry.counter(f"admission.rejected.{key}").inc()
            tel.registry.counter(f"admission.rejected_by_reason.{reason}").inc()
            tel.trace.admission_reject(0.0, key, reason, retry_after_s)
        return AdmissionDecision(
            admitted=False, key=key, reason=reason, retry_after_s=retry_after_s
        )

    # ------------------------------------------------------------------
    def admit(
        self, endpoint: str, model_id: Optional[str] = None
    ) -> AdmissionDecision:
        """Admit or reject one request; admitted requests hold one
        concurrency slot per matched limiter until :meth:`release`."""
        checks = [("endpoint", endpoint)]
        if model_id is not None:
            checks.append(("model", model_id))
        acquired = []
        for scope, key in checks:
            state = self._state_for(scope, key)
            if state is None:
                continue
            label = key if scope == "endpoint" else f"model:{key}"
            if state.bucket is not None and not state.bucket.try_acquire():
                decision = self._reject(
                    label, RATE_LIMIT, state.bucket.retry_after()
                )
                break
            if state.concurrency is not None and not state.concurrency.try_acquire():
                decision = self._reject(
                    label, CONCURRENCY, self.retry_after_floor_s
                )
                break
            acquired.append(state)
        else:
            tel = telemetry.active()
            if tel is not None:
                tel.registry.counter(f"admission.admitted.{endpoint}").inc()
            return AdmissionDecision(admitted=True, key=endpoint)
        # Roll back concurrency slots taken before the failing check.
        for state in acquired:
            if state.concurrency is not None:
                state.concurrency.release()
        return decision

    def release(self, endpoint: str, model_id: Optional[str] = None) -> None:
        """Return the concurrency slots an admitted request held."""
        checks = [("endpoint", endpoint)]
        if model_id is not None:
            checks.append(("model", model_id))
        for scope, key in checks:
            state = self._state_for(scope, key)
            if state is not None and state.concurrency is not None:
                state.concurrency.release()

    # ------------------------------------------------------------------
    def in_flight(self, endpoint: str) -> int:
        """Requests currently past admission for ``endpoint`` (0 if the
        endpoint has no concurrency limiter)."""
        state = self._state_for("endpoint", endpoint)
        if state is None or state.concurrency is None:
            return 0
        return state.concurrency.in_flight
