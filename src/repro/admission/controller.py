"""Admission decisions for the service ingress (per endpoint / model / tenant).

The controller is the front door of :class:`~repro.service.EugeneService`:
every gated endpoint asks it before doing any work.  The answer is a typed
:class:`AdmissionDecision` — never an exception and never a silent queue —
so a saturated service degrades into explicit, retry-hinted rejections
(:class:`~repro.service.messages.RejectedResponse` on the wire).

Limits compose: a request must clear the *tenant* limiter (when it carries
a tenant id and tenant quotas are configured), the *endpoint* limiter and,
when it names a model, the *model* limiter.  Each limiter is a token
bucket (sustained rate + burst) plus an optional concurrency bound.

**Tenancy (weighted-fair sharing).**  ``tenant_capacity_per_s`` declares a
total admission capacity C shared by the tenants in ``per_tenant``; each
declared tenant i holds a *guaranteed* bucket refilling at C·wᵢ/Σw, and a
shared *borrow* bucket refills at C.  A request is admitted if its
tenant's own bucket yields a token (its guaranteed share — never blocked
by other tenants), or, when ``work_conserving``, if the borrow bucket does
(capacity other tenants left idle).  An abusive tenant can therefore burn
only the *spare* capacity, never another tenant's guaranteed share —
that's the isolation property ``make isolation`` gates.

Telemetry (when enabled) counts admissions and rejections per key and
traces each rejection with its retry-after hint, stamped from the
controller's injected ``clock``.  Tenant-labelled counter names pass
through a :class:`~repro.telemetry.metrics.BoundedLabels` space so
unbounded tenant cardinality cannot grow the registry without bound; the
controller's own per-tenant accounting (:meth:`tenant_stats`) stays exact
for every declared tenant and aggregates undeclared overflow under
``__other__`` so totals always reconcile.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from .. import telemetry
from ..telemetry.metrics import BoundedLabels
from .limits import ConcurrencyLimiter, TokenBucket

#: Rejection reasons carried by decisions and :class:`RejectedResponse`.
RATE_LIMIT = "rate-limit"
CONCURRENCY = "concurrency"
QUEUE_FULL = "queue-full"
SHED = "shed"
TENANT_QUOTA = "tenant-quota"
REJECT_REASONS = (RATE_LIMIT, CONCURRENCY, QUEUE_FULL, SHED, TENANT_QUOTA)

#: Accounting key for requests that carry no tenant id.
NO_TENANT = "__none__"
#: Accounting key aggregating undeclared tenants past ``max_tenant_keys``.
OTHER_TENANTS = "__other__"


@dataclass(frozen=True)
class EndpointLimits:
    """Ingress limits for one admission key (an endpoint or a model)."""

    #: sustained admission rate; ``None`` = unlimited.
    rate_per_s: Optional[float] = None
    #: bucket size (burst tolerance); defaults to ``max(1, rate_per_s)``.
    burst: Optional[float] = None
    #: concurrent requests past admission; ``None`` = unlimited.
    max_concurrent: Optional[int] = None

    def __post_init__(self) -> None:
        if self.rate_per_s is not None and self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive when given")
        if self.burst is not None:
            if self.rate_per_s is None:
                raise ValueError("burst requires rate_per_s")
            if self.burst < 1:
                raise ValueError("burst must allow at least one request")
        if self.max_concurrent is not None and self.max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1 when given")

    @property
    def unlimited(self) -> bool:
        return self.rate_per_s is None and self.max_concurrent is None


@dataclass(frozen=True)
class TenantQuota:
    """One tenant's share of the controller's tenant capacity.

    ``weight`` sets the guaranteed fraction of ``tenant_capacity_per_s``
    (wᵢ/Σw); ``rate_per_s``/``burst`` optionally cap the tenant's *total*
    admission rate (guaranteed + borrowed) below its fair reach, and
    ``max_concurrent`` bounds its in-flight requests.
    """

    weight: float = 1.0
    rate_per_s: Optional[float] = None
    burst: Optional[float] = None
    max_concurrent: Optional[int] = None

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if self.rate_per_s is not None and self.rate_per_s <= 0:
            raise ValueError("rate_per_s must be positive when given")
        if self.burst is not None:
            if self.rate_per_s is None:
                raise ValueError("burst requires rate_per_s")
            if self.burst < 1:
                raise ValueError("burst must allow at least one request")
        if self.max_concurrent is not None and self.max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1 when given")


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check."""

    admitted: bool
    key: str
    reason: Optional[str] = None
    #: hint for the client's retry-after aware RetryPolicy; 0 = retry freely.
    retry_after_s: float = 0.0
    #: True when the request was admitted on borrowed (idle) capacity
    #: rather than its tenant's guaranteed share.
    borrowed: bool = False


class _KeyState:
    """The live limiters for one admission key."""

    __slots__ = ("bucket", "concurrency")

    def __init__(self, limits: EndpointLimits) -> None:
        self.bucket = (
            TokenBucket(limits.rate_per_s, limits.burst)
            if limits.rate_per_s is not None
            else None
        )
        self.concurrency = (
            ConcurrencyLimiter(limits.max_concurrent)
            if limits.max_concurrent is not None
            else None
        )


class _TenantState:
    """The live limiters for one tenant."""

    __slots__ = ("guaranteed", "ceiling", "concurrency")

    def __init__(
        self,
        guaranteed_rate: Optional[float],
        quota: TenantQuota,
    ) -> None:
        self.guaranteed = (
            TokenBucket(guaranteed_rate) if guaranteed_rate is not None else None
        )
        self.ceiling = (
            TokenBucket(quota.rate_per_s, quota.burst)
            if quota.rate_per_s is not None
            else None
        )
        self.concurrency = (
            ConcurrencyLimiter(quota.max_concurrent)
            if quota.max_concurrent is not None
            else None
        )


class _TenantCounts:
    """Exact per-tenant accounting (independent of telemetry)."""

    __slots__ = ("admitted", "rejected", "borrowed")

    def __init__(self) -> None:
        self.admitted = 0
        self.rejected = 0
        self.borrowed = 0


class AdmissionController:
    """Checks (and meters) every gated request against its limits.

    ``default`` applies to every endpoint without an explicit entry in
    ``per_endpoint``; ``per_model`` keys are model ids.  A ``None`` default
    leaves unlisted endpoints ungated.

    ``clock`` supplies the timestamp stamped onto rejection trace events
    and driving every internal token bucket; virtual-time callers (the
    workload engine) inject their own clock or pass ``now=`` to
    :meth:`admit` directly.

    ``cache_states`` enables the pre-resolved admission-state cache on the
    hot path (a lock-free dict read replacing limit lookup + lock per
    scope per call); disable only to measure its effect.
    """

    def __init__(
        self,
        default: Optional[EndpointLimits] = None,
        per_endpoint: Optional[Dict[str, EndpointLimits]] = None,
        per_model: Optional[Dict[str, EndpointLimits]] = None,
        retry_after_floor_s: float = 0.01,
        per_tenant: Optional[Dict[str, TenantQuota]] = None,
        tenant_default: Optional[TenantQuota] = None,
        tenant_capacity_per_s: Optional[float] = None,
        tenant_capacity_burst: Optional[float] = None,
        work_conserving: bool = True,
        clock: Callable[[], float] = time.monotonic,
        max_tenant_keys: int = 1024,
        cache_states: bool = True,
    ) -> None:
        if retry_after_floor_s < 0:
            raise ValueError("retry_after_floor_s must be non-negative")
        if tenant_capacity_per_s is not None and tenant_capacity_per_s <= 0:
            raise ValueError("tenant_capacity_per_s must be positive when given")
        if tenant_capacity_burst is not None and tenant_capacity_burst < 1:
            raise ValueError("tenant_capacity_burst must be >= 1 when given")
        if max_tenant_keys < 1:
            raise ValueError("max_tenant_keys must be >= 1")
        self.default = default
        self.per_endpoint = dict(per_endpoint or {})
        self.per_model = dict(per_model or {})
        self.retry_after_floor_s = retry_after_floor_s
        self.per_tenant = dict(per_tenant or {})
        self.tenant_default = tenant_default
        self.tenant_capacity_per_s = tenant_capacity_per_s
        self.tenant_capacity_burst = tenant_capacity_burst
        self.work_conserving = work_conserving
        self.max_tenant_keys = max_tenant_keys
        self.cache_states = cache_states
        self._clock = clock
        self._states: Dict[Tuple[str, str], _KeyState] = {}
        #: hot-path cache: (scope, key) -> resolved state (None = ungated).
        self._resolved: Dict[Tuple[str, str], Optional[_KeyState]] = {}
        self._lock = threading.Lock()
        # --- tenancy -------------------------------------------------
        self._tenant_states: Dict[str, _TenantState] = {}
        self._tenant_stats: Dict[str, _TenantCounts] = {}
        self._tenant_lock = threading.Lock()
        self._tenant_labels = BoundedLabels(max_tenant_keys)
        total_w = sum(q.weight for q in self.per_tenant.values())
        self._total_weight = total_w
        self._borrow = (
            TokenBucket(tenant_capacity_per_s, burst=tenant_capacity_burst)
            if tenant_capacity_per_s is not None
            else None
        )
        #: per-session cached Counter objects (registry.counter takes the
        #: registry lock on every call; this skips it on the hot path).
        self._counters: Dict[str, Tuple[object, object]] = {}

    # ------------------------------------------------------------------
    def _counter(self, tel, name: str):
        entry = self._counters.get(name)
        if entry is not None and entry[0] is tel:
            return entry[1]
        counter = tel.registry.counter(name)
        self._counters[name] = (tel, counter)
        return counter

    def _limits_for(self, scope: str, key: str) -> Optional[EndpointLimits]:
        if scope == "model":
            return self.per_model.get(key)
        return self.per_endpoint.get(key, self.default)

    def _state_for(self, scope: str, key: str) -> Optional[_KeyState]:
        if self.cache_states:
            cache_key = (scope, key)
            try:
                return self._resolved[cache_key]
            except KeyError:
                pass
        limits = self._limits_for(scope, key)
        if limits is None or limits.unlimited:
            if self.cache_states:
                self._resolved[(scope, key)] = None
            return None
        with self._lock:
            state = self._states.get((scope, key))
            if state is None:
                state = self._states[(scope, key)] = _KeyState(limits)
            if self.cache_states:
                self._resolved[(scope, key)] = state
            return state

    def invalidate_cache(self) -> None:
        """Drop pre-resolved states after mutating the limit tables."""
        self._resolved.clear()

    # ------------------------------------------------------------------
    def _tenant_key(self, tenant: Optional[str]) -> str:
        """Accounting key for a tenant id (bounded; exact for declared)."""
        if tenant is None:
            return NO_TENANT
        if tenant in self.per_tenant:
            return tenant
        with self._tenant_lock:
            if tenant in self._tenant_stats:
                return tenant
            if len(self._tenant_stats) < self.max_tenant_keys:
                return tenant
        return OTHER_TENANTS

    def _tenant_state_for(self, tenant: str) -> Optional[_TenantState]:
        state = self._tenant_states.get(tenant)
        if state is not None:
            return state
        quota = self.per_tenant.get(tenant)
        declared = quota is not None
        if quota is None:
            quota = self.tenant_default
        if quota is None and self._borrow is None:
            return None
        if quota is None:
            quota = TenantQuota()
        guaranteed_rate = None
        if (
            declared
            and self.tenant_capacity_per_s is not None
            and self._total_weight > 0
        ):
            guaranteed_rate = (
                self.tenant_capacity_per_s * quota.weight / self._total_weight
            )
        with self._tenant_lock:
            state = self._tenant_states.get(tenant)
            if state is None:
                if (
                    not declared
                    and len(self._tenant_states) >= self.max_tenant_keys
                ):
                    # Undeclared tenants past the bound share one state.
                    state = self._tenant_states.get(OTHER_TENANTS)
                    if state is None:
                        state = self._tenant_states[OTHER_TENANTS] = _TenantState(
                            None, quota
                        )
                else:
                    state = self._tenant_states[tenant] = _TenantState(
                        guaranteed_rate, quota
                    )
            return state

    def _account(self, tenant: Optional[str], admitted: bool, borrowed: bool) -> str:
        key = self._tenant_key(tenant)
        with self._tenant_lock:
            counts = self._tenant_stats.get(key)
            if counts is None:
                counts = self._tenant_stats[key] = _TenantCounts()
            if admitted:
                counts.admitted += 1
                if borrowed:
                    counts.borrowed += 1
            else:
                counts.rejected += 1
        return key

    def tenant_stats(self) -> Dict[str, Dict[str, int]]:
        """Exact per-tenant admission accounting since construction.

        The sums of ``admitted`` and ``rejected`` across all keys
        (including ``__none__`` and ``__other__``) equal the controller's
        totals — nothing is sampled or dropped.
        """
        with self._tenant_lock:
            return {
                t: {
                    "admitted": c.admitted,
                    "rejected": c.rejected,
                    "borrowed": c.borrowed,
                }
                for t, c in self._tenant_stats.items()
            }

    # ------------------------------------------------------------------
    def _reject(
        self, key: str, reason: str, retry_after_s: float, now: float
    ) -> AdmissionDecision:
        retry_after_s = max(retry_after_s, self.retry_after_floor_s)
        tel = telemetry.active()
        if tel is not None:
            self._counter(tel, f"admission.rejected.{key}").inc()
            self._counter(tel, f"admission.rejected_by_reason.{reason}").inc()
            tel.trace.admission_reject(now, key, reason, retry_after_s)
        return AdmissionDecision(
            admitted=False, key=key, reason=reason, retry_after_s=retry_after_s
        )

    def _admit_tenant(
        self, tenant: Optional[str], now: float
    ) -> Tuple[Optional[AdmissionDecision], bool, Optional[_TenantState]]:
        """Run the tenant gate; returns (rejection, borrowed, state)."""
        if tenant is None:
            return None, False, None
        state = self._tenant_state_for(tenant)
        if state is None:
            return None, False, None
        label = f"tenant:{self._tenant_labels.resolve(tenant)}"
        if state.ceiling is not None and not state.ceiling.try_acquire(now=now):
            return (
                self._reject(
                    label, TENANT_QUOTA, state.ceiling.retry_after(now=now), now
                ),
                False,
                state,
            )
        if state.concurrency is not None and not state.concurrency.try_acquire():
            return (
                self._reject(label, TENANT_QUOTA, self.retry_after_floor_s, now),
                False,
                state,
            )
        borrowed = False
        if state.guaranteed is not None:
            if state.guaranteed.try_acquire(now=now):
                # Own share: debt-charge the shared pool (the balance may
                # go negative) so borrowers only ever see capacity that is
                # genuinely unused — a best-effort charge that fails when
                # the pool is drained would let guaranteed + borrowed
                # admissions exceed the configured capacity.
                if self._borrow is not None:
                    self._borrow.charge(now=now)
            elif (
                self.work_conserving
                and self._borrow is not None
                and self._borrow.try_acquire(now=now)
            ):
                borrowed = True
            else:
                if state.concurrency is not None:
                    state.concurrency.release()
                retry = state.guaranteed.retry_after(now=now)
                if self.work_conserving and self._borrow is not None:
                    retry = min(retry, self._borrow.retry_after(now=now))
                return self._reject(label, TENANT_QUOTA, retry, now), False, state
        elif self._borrow is not None:
            # Undeclared tenant with no guaranteed share: borrow only.
            if self.work_conserving and self._borrow.try_acquire(now=now):
                borrowed = True
            else:
                if state.concurrency is not None:
                    state.concurrency.release()
                return (
                    self._reject(
                        label,
                        TENANT_QUOTA,
                        self._borrow.retry_after(now=now),
                        now,
                    ),
                    False,
                    state,
                )
        return None, borrowed, state

    # ------------------------------------------------------------------
    def admit(
        self,
        endpoint: str,
        model_id: Optional[str] = None,
        tenant: Optional[str] = None,
        now: Optional[float] = None,
    ) -> AdmissionDecision:
        """Admit or reject one request; admitted requests hold one
        concurrency slot per matched limiter until :meth:`release`.

        ``now`` overrides the controller clock for this decision
        (virtual-time callers pass their own timeline; all internal
        buckets and the rejection trace see the same timestamp).
        """
        ts = self._clock() if now is None else now
        gated_tenant = tenant is not None and (
            self.per_tenant
            or self.tenant_default is not None
            or self._borrow is not None
        )
        tenant_state: Optional[_TenantState] = None
        borrowed = False
        if gated_tenant:
            rejection, borrowed, tenant_state = self._admit_tenant(tenant, ts)
            if rejection is not None:
                self._account(tenant, admitted=False, borrowed=False)
                return rejection
        checks = [("endpoint", endpoint)]
        if model_id is not None:
            checks.append(("model", model_id))
        acquired = []
        for scope, key in checks:
            state = self._state_for(scope, key)
            if state is None:
                continue
            label = key if scope == "endpoint" else f"model:{key}"
            if state.bucket is not None and not state.bucket.try_acquire(now=ts):
                decision = self._reject(
                    label, RATE_LIMIT, state.bucket.retry_after(now=ts), ts
                )
                break
            if state.concurrency is not None and not state.concurrency.try_acquire():
                decision = self._reject(
                    label, CONCURRENCY, self.retry_after_floor_s, ts
                )
                break
            acquired.append(state)
        else:
            tel = telemetry.active()
            if tel is not None:
                self._counter(tel, f"admission.admitted.{endpoint}").inc()
                if gated_tenant:
                    bounded = self._tenant_labels.resolve(tenant)
                    self._counter(
                        tel, f"admission.tenant_admitted.{bounded}"
                    ).inc()
            if gated_tenant:
                self._account(tenant, admitted=True, borrowed=borrowed)
            elif tenant is not None:
                self._account(tenant, admitted=True, borrowed=False)
            return AdmissionDecision(
                admitted=True, key=endpoint, borrowed=borrowed
            )
        # Roll back concurrency slots taken before the failing check.
        for state in acquired:
            if state.concurrency is not None:
                state.concurrency.release()
        if tenant_state is not None and tenant_state.concurrency is not None:
            tenant_state.concurrency.release()
        if tenant is not None:
            self._account(tenant, admitted=False, borrowed=False)
        return decision

    def release(
        self,
        endpoint: str,
        model_id: Optional[str] = None,
        tenant: Optional[str] = None,
    ) -> None:
        """Return the concurrency slots an admitted request held."""
        checks = [("endpoint", endpoint)]
        if model_id is not None:
            checks.append(("model", model_id))
        for scope, key in checks:
            state = self._state_for(scope, key)
            if state is not None and state.concurrency is not None:
                state.concurrency.release()
        if tenant is not None:
            tstate = self._tenant_states.get(tenant) or (
                self._tenant_states.get(OTHER_TENANTS)
            )
            if tstate is not None and tstate.concurrency is not None:
                tstate.concurrency.release()

    # ------------------------------------------------------------------
    def in_flight(self, endpoint: str) -> int:
        """Requests currently past admission for ``endpoint`` (0 if the
        endpoint has no concurrency limiter)."""
        state = self._state_for("endpoint", endpoint)
        if state is None or state.concurrency is None:
            return 0
        return state.concurrency.in_flight
