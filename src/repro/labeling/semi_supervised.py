"""SenseGAN-style semi-supervised labeling (Sec. II-A, [8]).

The game, as the paper describes it: a *proposer* (classifier) labels
unlabeled samples; a *discriminator* tries to tell (sample, proposed label)
pairs apart from genuine (sample, true label) pairs; both refine each other
until proposed labels are "hard to falsify".

Implementation notes
--------------------
- The proposer is an MLP classifier over flattened inputs; its softmax
  output (a soft label) is fed to the discriminator, keeping the whole
  proposer->discriminator path differentiable — the standard trick used by
  semi-supervised GANs over categorical outputs.
- The discriminator is an MLP over ``concat(x, label_distribution)``.
- Each round interleaves (i) supervised cross entropy on the labeled set,
  (ii) discriminator updates on real vs proposed pairs, (iii) adversarial
  proposer updates that try to make proposed pairs look real.
- :func:`self_training_labels` is the non-adversarial baseline (confidence-
  thresholded pseudo-labeling) used in the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from ..nn import functional as F
from ..nn.data import Dataset
from ..nn.layers import Dense, Module, ReLU, Sequential
from ..nn.losses import cross_entropy
from ..nn.optim import Adam
from ..nn.tensor import Tensor, concatenate


@dataclass
class SenseGANConfig:
    hidden: int = 64
    disc_hidden: int = 64
    rounds: int = 30
    batch_size: int = 64
    lr: float = 1e-3
    #: weight of the adversarial term in the proposer loss.
    adversarial_weight: float = 0.3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.rounds < 1 or self.hidden < 1 or self.disc_hidden < 1:
            raise ValueError("invalid SenseGAN configuration")
        if self.adversarial_weight < 0:
            raise ValueError("adversarial weight must be non-negative")


@dataclass
class LabelingReport:
    """Quality of the produced pseudo labels (requires ground truth to assess)."""

    pseudo_label_accuracy: float
    mean_confidence: float
    num_labeled: int
    num_unlabeled: int


def _flatten(inputs: np.ndarray) -> np.ndarray:
    return inputs.reshape(len(inputs), -1)


def _bce(pred: Tensor, target: float) -> Tensor:
    """Binary cross entropy of sigmoid outputs against a constant target."""
    eps = 1e-7
    clipped = pred.clip(eps, 1.0 - eps)
    if target == 1.0:
        return -clipped.log().mean()
    if target == 0.0:
        return -(1.0 - clipped).log().mean()
    return -(target * clipped.log() + (1 - target) * (1.0 - clipped).log()).mean()


class SenseGANLabeler:
    """Adversarial semi-supervised labeler."""

    def __init__(self, num_classes: int, input_dim: int,
                 config: Optional[SenseGANConfig] = None) -> None:
        if num_classes < 2 or input_dim < 1:
            raise ValueError("need >= 2 classes and a positive input dim")
        self.num_classes = num_classes
        self.input_dim = input_dim
        self.config = config or SenseGANConfig()
        rng = np.random.default_rng(self.config.seed)
        h = self.config.hidden
        self.proposer = Sequential(
            Dense(input_dim, h, rng=rng), ReLU(),
            Dense(h, h, rng=rng), ReLU(),
            Dense(h, num_classes, rng=rng),
        )
        d = self.config.disc_hidden
        self.discriminator = Sequential(
            Dense(input_dim + num_classes, d, rng=rng), ReLU(),
            Dense(d, d, rng=rng), ReLU(),
            Dense(d, 1, rng=rng),
        )
        self._rng = rng
        self.history: List[dict] = []

    # ------------------------------------------------------------------
    def _disc_prob(self, x: Tensor, labels: Tensor) -> Tensor:
        joined = concatenate([x, labels], axis=1)
        return self.discriminator(joined).sigmoid()

    def fit(self, labeled: Dataset, unlabeled_inputs: np.ndarray) -> "SenseGANLabeler":
        """Run the adversarial labeling game."""
        cfg = self.config
        xl = _flatten(np.asarray(labeled.inputs, dtype=np.float64))
        yl = np.asarray(labeled.labels, dtype=np.int64)
        xu = _flatten(np.asarray(unlabeled_inputs, dtype=np.float64))
        if xl.shape[1] != self.input_dim or xu.shape[1] != self.input_dim:
            raise ValueError("input dimensionality mismatch")
        onehot_l = F.one_hot(yl, self.num_classes)

        p_opt = Adam(self.proposer.parameters(), lr=cfg.lr)
        d_opt = Adam(self.discriminator.parameters(), lr=cfg.lr)

        for round_idx in range(cfg.rounds):
            bl = self._rng.choice(len(xl), size=min(cfg.batch_size, len(xl)), replace=False)
            bu = self._rng.choice(len(xu), size=min(cfg.batch_size, len(xu)), replace=False)
            xb_l, yb_l = xl[bl], yl[bl]
            xb_u = xu[bu]

            # (i) supervised step for the proposer.
            sup_loss = cross_entropy(self.proposer(Tensor(xb_l)), yb_l)
            p_opt.zero_grad()
            sup_loss.backward()
            p_opt.step()

            # (ii) discriminator: real (x_l, y_l) vs proposed (x_u, C(x_u)).
            proposed = F.softmax(self.proposer(Tensor(xb_u)), axis=-1).detach()
            real_prob = self._disc_prob(Tensor(xb_l), Tensor(onehot_l[bl]))
            fake_prob = self._disc_prob(Tensor(xb_u), proposed)
            d_loss = _bce(real_prob, 1.0) + _bce(fake_prob, 0.0)
            d_opt.zero_grad()
            d_loss.backward()
            d_opt.step()

            # (iii) adversarial proposer step: make proposed pairs look real.
            proposed_live = F.softmax(self.proposer(Tensor(xb_u)), axis=-1)
            fool_prob = self._disc_prob(Tensor(xb_u), proposed_live)
            g_loss = cfg.adversarial_weight * _bce(fool_prob, 1.0)
            p_opt.zero_grad()
            g_loss.backward()
            p_opt.step()

            self.history.append(
                {
                    "round": round_idx,
                    "supervised_loss": sup_loss.item(),
                    "discriminator_loss": d_loss.item(),
                    "adversarial_loss": g_loss.item(),
                }
            )
        return self

    # ------------------------------------------------------------------
    def propose_labels(self, inputs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(labels, confidences) for ``inputs``."""
        probs = F.softmax(self.proposer(Tensor(_flatten(inputs))), axis=-1).data
        return probs.argmax(axis=-1), probs.max(axis=-1)

    def report(self, inputs: np.ndarray, true_labels: np.ndarray,
               num_labeled: int) -> LabelingReport:
        labels, confidences = self.propose_labels(inputs)
        return LabelingReport(
            pseudo_label_accuracy=float((labels == true_labels).mean()),
            mean_confidence=float(confidences.mean()),
            num_labeled=num_labeled,
            num_unlabeled=len(inputs),
        )


def self_training_labels(
    labeled: Dataset,
    unlabeled_inputs: np.ndarray,
    num_classes: int,
    confidence_threshold: float = 0.0,
    epochs: int = 60,
    hidden: int = 64,
    lr: float = 1e-3,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Non-adversarial pseudo-labeling baseline.

    Trains a plain MLP on the labeled set and proposes argmax labels for the
    unlabeled inputs; entries below ``confidence_threshold`` get label -1.
    Returns ``(labels, confidences)``.
    """
    rng = np.random.default_rng(seed)
    xl = _flatten(np.asarray(labeled.inputs, dtype=np.float64))
    yl = np.asarray(labeled.labels, dtype=np.int64)
    xu = _flatten(np.asarray(unlabeled_inputs, dtype=np.float64))
    model = Sequential(
        Dense(xl.shape[1], hidden, rng=rng), ReLU(), Dense(hidden, num_classes, rng=rng)
    )
    opt = Adam(model.parameters(), lr=lr)
    for _ in range(epochs):
        idx = rng.choice(len(xl), size=min(64, len(xl)), replace=False)
        loss = cross_entropy(model(Tensor(xl[idx])), yl[idx])
        opt.zero_grad()
        loss.backward()
        opt.step()
    probs = F.softmax(model(Tensor(xu)), axis=-1).data
    labels = probs.argmax(axis=-1)
    confidences = probs.max(axis=-1)
    labels = np.where(confidences >= confidence_threshold, labels, -1)
    return labels, confidences
