"""Automatic data labeling (Sec. II-A) — the SenseGAN substrate.

Implements the paper's GAN-based semi-supervised labeling game: "one entity
proposes labels for unlabeled samples, whereas another tries to distinguish
the resulting labeled samples from the original labeled ones", plus a
plain self-training baseline for the ablation.
"""

from .semi_supervised import (
    LabelingReport,
    SenseGANConfig,
    SenseGANLabeler,
    self_training_labels,
)

__all__ = [
    "SenseGANLabeler",
    "SenseGANConfig",
    "LabelingReport",
    "self_training_labels",
]
