"""E4 — Table III: MAE and R^2 of the GP confidence-curve predictors.

GP_{l->l'} models are fit on training-set stage confidences and evaluated on
the test set: GP1→2, GP1→3 and GP2→3 for a three-stage network.  The paper's
finding to reproduce: GP2→3 is the most accurate (more executed stages =
better predictions of the future).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..scheduler.confidence import GPConfidencePredictor
from .common import BenchmarkArtifacts, get_benchmark_artifacts


def run_table3(artifacts: BenchmarkArtifacts = None) -> Dict[str, Dict[str, float]]:
    """Returns {"GP1->2": {"mae": ..., "r2": ...}, ...} on the test split."""
    artifacts = artifacts or get_benchmark_artifacts()
    train_conf = artifacts.train_outputs["confidences"]
    test_conf = artifacts.test_outputs["confidences"]
    predictor = GPConfidencePredictor(
        num_classes=artifacts.model.config.num_classes, seed=0
    ).fit(train_conf)

    result: Dict[str, Dict[str, float]] = {}
    num_stages = artifacts.num_stages
    for l_from in range(num_stages):
        for l_to in range(l_from + 1, num_stages):
            gp = predictor.exact_gp(l_from, l_to)
            pred, _ = gp.predict(test_conf[l_from])
            truth = test_conf[l_to]
            residual = truth - pred
            mae = float(np.abs(residual).mean())
            ss_res = float(residual @ residual)
            ss_tot = float(((truth - truth.mean()) ** 2).sum())
            r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
            result[f"GP{l_from + 1}->{l_to + 1}"] = {"mae": mae, "r2": r2}
    return result


def format_table3(table: Dict[str, Dict[str, float]]) -> str:
    names = list(table)
    header = f"{'':6}" + "".join(f"{n:>10}" for n in names)
    lines = [header, "-" * len(header)]
    lines.append(f"{'MAE':6}" + "".join(f"{table[n]['mae']:>10.3f}" for n in names))
    lines.append(f"{'R2':6}" + "".join(f"{table[n]['r2']:>10.2f}" for n in names))
    return "\n".join(lines)
