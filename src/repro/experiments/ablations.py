"""E8 + design ablations (DESIGN.md §5).

- resilience: rogue peer degrades collaborative accuracy >20%; the trust
  monitor restores it (Sec. IV-C's motivating numbers);
- compression: node pruning vs edge pruning at matched parameter budgets
  (the Sec. II-B argument for removing nodes instead of edges);
- GP approximation: fidelity and speedup of the piecewise-linear runtime
  path vs exact GP inference (Sec. III-B's two-step recipe).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..collaborative import (
    CollaborativePipeline,
    ResilienceMonitor,
    RogueCamera,
    SSDDetector,
    World,
    WorldConfig,
    ring_of_cameras,
)
from ..compression.pruning import (
    magnitude_edge_prune,
    node_prune_mlp,
    sparse_time_ratio,
)
from ..gp import GPRegression, RBFKernel, approximate_gp
from ..nn.layers import Dense, ReLU, Sequential
from ..nn.losses import cross_entropy
from ..nn.optim import Adam
from ..nn.tensor import Tensor
from .common import BenchmarkArtifacts, get_benchmark_artifacts


# ----------------------------------------------------------------------
# E8: resilience
# ----------------------------------------------------------------------
def run_resilience(
    num_frames: int = 100, rogue_rate: float = 25.0, seed: int = 2
) -> Dict[str, float]:
    """Collaborative accuracy: clean vs attacked vs defended."""
    world = World(WorldConfig(num_people=12, num_occluders=6, seed=seed))
    cameras = ring_of_cameras(8, world)

    def evaluate(rogues=(), monitor=None) -> float:
        pipeline = CollaborativePipeline(
            world, cameras, SSDDetector(seed=0), rogues=rogues, monitor=monitor
        )
        return pipeline.evaluate(pipeline.run_collaborative(num_frames)).detection_accuracy

    clean = evaluate()
    rogue = RogueCamera(camera_id=99, rate=rogue_rate, seed=7)
    attacked = evaluate(rogues=[rogue])
    monitor = ResilienceMonitor()
    defended = evaluate(rogues=[RogueCamera(camera_id=99, rate=rogue_rate, seed=7)],
                        monitor=monitor)
    return {
        "clean_accuracy": clean,
        "attacked_accuracy": attacked,
        "defended_accuracy": defended,
        "attack_drop_fraction": 1.0 - attacked / clean,
        "rogue_detected": float(99 in monitor.distrusted_sources()),
    }


# ----------------------------------------------------------------------
# Compression ablation: node vs edge pruning
# ----------------------------------------------------------------------
def run_compression_ablation(seed: int = 0) -> List[Dict[str, float]]:
    """Accuracy and modelled execution time of both pruning families.

    A 2-hidden-layer MLP is trained on flattened benchmark images, then
    compressed to a range of parameter budgets by (a) node pruning and
    (b) magnitude edge pruning.  Execution-time ratios use dense scaling for
    node pruning and the sparse-overhead model for edge pruning.
    """
    artifacts = get_benchmark_artifacts()
    rng = np.random.default_rng(seed)
    x = artifacts.train_set.inputs.reshape(len(artifacts.train_set), -1)
    y = artifacts.train_set.labels
    xt = artifacts.test_set.inputs.reshape(len(artifacts.test_set), -1)
    yt = artifacts.test_set.labels

    mlp = Sequential(
        Dense(x.shape[1], 128, rng=rng), ReLU(),
        Dense(128, 128, rng=rng), ReLU(),
        Dense(128, 10, rng=rng),
    )
    opt = Adam(mlp.parameters(), lr=1e-3)
    for _ in range(300):
        idx = rng.choice(len(x), size=128, replace=False)
        loss = cross_entropy(mlp(Tensor(x[idx])), y[idx])
        opt.zero_grad()
        loss.backward()
        opt.step()

    def accuracy(model) -> float:
        return float((model(Tensor(xt)).data.argmax(-1) == yt).mean())

    def finetune(model, steps=120) -> None:
        opt = Adam(model.parameters(), lr=5e-4)
        for _ in range(steps):
            idx = rng.choice(len(x), size=128, replace=False)
            loss = cross_entropy(model(Tensor(x[idx])), y[idx])
            opt.zero_grad()
            loss.backward()
            opt.step()

    rows: List[Dict[str, float]] = [
        {
            "method": "dense (original)",
            "param_fraction": 1.0,
            "accuracy": accuracy(mlp),
            "time_ratio": 1.0,
        }
    ]
    for keep in (0.5, 0.25):
        pruned = node_prune_mlp(mlp, keep_fraction=keep)
        finetune(pruned.model)
        rows.append(
            {
                "method": f"node prune keep={keep}",
                "param_fraction": pruned.parameter_ratio,
                "accuracy": accuracy(pruned.model),
                "time_ratio": pruned.time_ratio,
            }
        )
        # Edge pruning to the same parameter budget.
        import copy

        sparse_model = Sequential(
            Dense(x.shape[1], 128), ReLU(), Dense(128, 128), ReLU(), Dense(128, 10)
        )
        sparse_model.load_state_dict(mlp.state_dict())
        sparsity = 1.0 - pruned.parameter_ratio
        result = magnitude_edge_prune(sparse_model, sparsity)
        finetune(sparse_model)
        rows.append(
            {
                "method": f"edge prune sparsity={sparsity:.2f}",
                "param_fraction": 1.0 - result.achieved_sparsity,
                "accuracy": accuracy(sparse_model),
                "time_ratio": sparse_time_ratio(result.achieved_sparsity),
            }
        )
    return rows


# ----------------------------------------------------------------------
# GP approximation ablation
# ----------------------------------------------------------------------
def run_gp_approx_ablation(
    num_train: int = 400, num_queries: int = 5000, seed: int = 0
) -> Dict[str, float]:
    """Fidelity (max abs deviation) and speedup of the piecewise-linear path."""
    artifacts = get_benchmark_artifacts()
    conf = artifacts.train_outputs["confidences"]
    rng = np.random.default_rng(seed)
    idx = rng.choice(conf.shape[1], size=min(num_train, conf.shape[1]), replace=False)
    gp = GPRegression(RBFKernel(length_scale=0.2), noise=1e-2).fit(
        conf[0][idx], conf[-1][idx]
    )
    pl = approximate_gp(gp, num_points=10)
    grid = np.linspace(0, 1, 201)
    gp_mean, _ = gp.predict(grid)
    max_dev = float(np.abs(pl(grid) - gp_mean).max())

    queries = rng.uniform(0, 1, num_queries)
    t0 = time.perf_counter()
    gp.predict(queries)
    gp_time = time.perf_counter() - t0
    t0 = time.perf_counter()
    pl(queries)
    pl_time = time.perf_counter() - t0
    return {
        "max_abs_deviation": max_dev,
        "gp_time_s": gp_time,
        "piecewise_time_s": pl_time,
        "speedup": gp_time / max(pl_time, 1e-9),
    }
