"""Autoscaling experiment: elastic vs static fleets on a diurnal trace.

The elastic-tier pitch (DeepServe, IBM DLaaS in ``PAPERS.md``) is a
two-sided bet: an autoscaler should *serve* like a fleet provisioned for
the peak while *paying* like one provisioned for the average.  This
experiment makes the bet concrete and gates it:

The same seeded arrival trace — a diurnal hump (``sin²`` ramp between
``trough_rps`` and ``peak_rps``) with a flash crowd multiplied on top —
is driven open-loop against three setups:

- **static-small** — ``min_replicas``, the cheap fleet a cost-optimiser
  would buy for the average load;
- **static-large** — ``max_replicas``, the peak-provisioned fleet;
- **autoscale** — starts at ``min_replicas`` with an
  :class:`~repro.cluster.Autoscaler` stepping once per trace step.

*Goodput* is the fraction of scheduled requests answered within
``latency_budget_s`` of their scheduled send time (open-loop: a request
delayed by a saturated fleet is late even if it was sent late), and
*cost* is replica-seconds (for the autoscaler, the integral includes its
pre-warm pool — warm spares are not free).  The gate
(:func:`check_autoscale`): autoscaling keeps ≥ ``min_goodput_ratio`` of
static-large goodput at ≤ ``max_cost_ratio`` of its replica-seconds,
strictly beats static-small goodput, and loses zero requests anywhere —
including a drain episode where the draining replica is killed outright
mid-drain (SIGKILL for the process backend).

Cold start is measured, not assumed: one scale-up from the pre-warm pool
and one from a fresh spawn are timed per backend
(``autoscaler.cold_start_ms.{prewarmed|spawned}``), quantifying what the
pool actually buys.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..cluster import (
    PROCESS_BACKEND,
    THREAD_BACKEND,
    Autoscaler,
    AutoscalerConfig,
    RouterConfig,
    make_cluster,
)
from ..datasets import SyntheticImageConfig, make_image_dataset
from ..nn.resnet import StagedResNet, StagedResNetConfig
from ..nn.training import collect_stage_outputs
from ..scheduler.confidence import GPConfidencePredictor
from ..service import ClassifyRequest, RejectedResponse
from .cluster_scaling import _shm_leaked_blocks


@dataclass
class AutoscaleExperimentConfig:
    #: trace shape: ``steps`` steps of ``step_s`` seconds each.
    steps: int = 36
    step_s: float = 0.4
    trough_rps: float = 8.0
    peak_rps: float = 70.0
    #: flash crowd: multiply ``flash_steps`` steps by ``flash_factor``
    #: starting at ``flash_start_frac`` of the trace.
    flash_factor: float = 1.8
    flash_start_frac: float = 0.45
    flash_steps: int = 3
    #: per-call service time each replica burns (sleep: I/O-ish).
    synthetic_work_s: float = 0.03
    #: a request answered later than this after its *scheduled* send
    #: counts against goodput.
    latency_budget_s: float = 0.5
    batch_per_request: int = 1
    num_workers: int = 32
    min_replicas: int = 1
    max_replicas: int = 4
    seed: int = 0
    backend: str = THREAD_BACKEND
    #: the acceptance bars.
    min_goodput_ratio: float = 0.95
    max_cost_ratio: float = 0.70
    #: smoke mode: shorter trace, thread-backend chaos/cold-start only.
    smoke: bool = False
    #: pre-warm is off for the thread-backend trace — spawn there is
    #: ~1 ms, so a warm spare buys nothing and costs replica-seconds
    #: (its value for the process backend shows up in the cold-start
    #: measurement instead).
    autoscaler: AutoscalerConfig = field(
        default_factory=lambda: AutoscalerConfig(
            min_replicas=1,
            max_replicas=4,
            target_outstanding_per_replica=1.2,
            scale_up_ratio=1.0,
            scale_down_ratio=0.4,
            hysteresis_up=1,
            hysteresis_down=2,
            up_cooldown_s=0.3,
            down_cooldown_s=1.0,
            max_step_up=2,
            max_step_down=1,
            prewarm_pool_size=0,
        )
    )
    model_config: StagedResNetConfig = field(
        default_factory=lambda: StagedResNetConfig(
            num_classes=3,
            image_size=8,
            stage_channels=(4, 8),
            blocks_per_stage=1,
            seed=0,
        )
    )


def make_trace(config: AutoscaleExperimentConfig) -> List[float]:
    """The seeded arrival-rate trace (requests/s per step)."""
    rng = np.random.default_rng(config.seed)
    span = config.peak_rps - config.trough_rps
    rates = []
    for i in range(config.steps):
        phase = math.pi * i / max(1, config.steps - 1)
        base = config.trough_rps + span * math.sin(phase) ** 2
        rates.append(
            float(max(1.0, base * (1.0 + 0.05 * rng.standard_normal())))
        )
    start = int(config.flash_start_frac * config.steps)
    for i in range(start, min(config.steps, start + config.flash_steps)):
        rates[i] *= config.flash_factor
    return rates


def _build_model(config: AutoscaleExperimentConfig):
    dataset = make_image_dataset(
        48,
        SyntheticImageConfig(
            num_classes=config.model_config.num_classes,
            image_size=config.model_config.image_size,
            seed=3,
        ),
        seed=config.seed,
    )
    model = StagedResNet(config.model_config)
    predictor = GPConfidencePredictor(
        num_classes=config.model_config.num_classes, seed=config.seed
    ).fit(collect_stage_outputs(model, dataset)["confidences"])
    return model, dataset, predictor


def _drive_trace(
    router,
    gid: str,
    inputs: np.ndarray,
    config: AutoscaleExperimentConfig,
    rates: List[float],
    autoscaler: Optional[Autoscaler] = None,
) -> Dict[str, object]:
    """Open-loop drive of the trace; optionally steps an autoscaler.

    Requests are scheduled at absolute offsets; a worker pool sends each
    at its scheduled time (or as soon as a worker frees up — the slip
    then shows up as latency, which is exactly what saturation looks
    like to an open-loop client).
    """
    sends: List[float] = []
    for i, rate in enumerate(rates):
        n = max(1, int(round(rate * config.step_s)))
        for k in range(n):
            sends.append((i + (k + 0.5) / n) * config.step_s)
    sends.sort()

    lock = threading.Lock()
    next_index = [0]
    latencies: List[float] = []
    shed = [0]
    errors: List[str] = []
    go = threading.Event()
    t0 = [0.0]

    def worker():
        go.wait()
        while True:
            with lock:
                idx = next_index[0]
                if idx >= len(sends):
                    return
                next_index[0] += 1
            scheduled = t0[0] + sends[idx]
            delay = scheduled - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            request = ClassifyRequest(
                model_id=gid, inputs=inputs[: config.batch_per_request]
            )
            try:
                response = router.classify(request)
            except BaseException as error:
                with lock:
                    errors.append(repr(error))
                continue
            latency = time.perf_counter() - scheduled
            with lock:
                if isinstance(response, RejectedResponse):
                    shed[0] += 1
                else:
                    latencies.append(latency)

    threads = [
        threading.Thread(target=worker) for _ in range(config.num_workers)
    ]
    for t in threads:
        t.start()
    t0[0] = time.perf_counter()
    go.set()

    fleet_track: List[int] = []
    if autoscaler is not None:
        for i in range(config.steps):
            target = t0[0] + (i + 1) * config.step_s
            pause = target - time.perf_counter()
            if pause > 0:
                time.sleep(pause)
            autoscaler.step()
            fleet_track.append(
                len(
                    [
                        rid
                        for rid in router.active_replica_ids()
                        if rid not in set(router.draining())
                    ]
                )
            )
    for t in threads:
        t.join(180.0)
    wall_s = time.perf_counter() - t0[0]

    within = sum(1 for lat in latencies if lat <= config.latency_budget_s)
    total = len(sends)
    row: Dict[str, object] = {
        "requests": total,
        "served": len(latencies),
        "shed": shed[0],
        "lost": len(errors),
        "errors": errors[:5],
        "within_budget": within,
        "goodput": within / total if total else 0.0,
        "p99_latency_s": (
            float(np.percentile(latencies, 99)) if latencies else 0.0
        ),
        "wall_s": wall_s,
    }
    if fleet_track:
        row["fleet"] = fleet_track
    return row


def _run_setup(
    label: str,
    n_start: int,
    config: AutoscaleExperimentConfig,
    model,
    dataset,
    predictor,
    rates: List[float],
    elastic: bool,
) -> Dict[str, object]:
    router_config = RouterConfig(replication_factor=config.max_replicas)
    with make_cluster(
        n_start,
        backend=config.backend,
        seed=config.seed,
        synthetic_work_s=config.synthetic_work_s,
        config=router_config,
    ) as router:
        gid = router.register_model(
            "autoscale", model, train_set=dataset, predictor=predictor
        )
        autoscaler = None
        if elastic:
            asc_config = AutoscalerConfig(
                **{
                    **config.autoscaler.__dict__,
                    "min_replicas": config.min_replicas,
                    "max_replicas": config.max_replicas,
                }
            )
            autoscaler = Autoscaler(router, asc_config)
        row = _drive_trace(
            router, gid, dataset.inputs, config, rates, autoscaler
        )
        row["setup"] = label
        if autoscaler is not None:
            row["replica_seconds"] = autoscaler.finalize()
            log = autoscaler.decision_log()
            row["scale_ups"] = sum(
                1 for d in log if d["action"] == "scale_up"
            )
            row["scale_downs"] = sum(
                1 for d in log if d["action"] == "scale_down"
            )
            row["decisions"] = log
        else:
            row["replica_seconds"] = n_start * row["wall_s"]
    row["shm_leaked_blocks"] = _shm_leaked_blocks(router)
    return row


def _measure_cold_start(
    backend: str, config: AutoscaleExperimentConfig, model, dataset, predictor
) -> Dict[str, object]:
    """Time one pre-warmed and one fresh-spawn scale-up on ``backend``."""
    try:
        with make_cluster(
            1,
            backend=backend,
            seed=config.seed,
            config=RouterConfig(replication_factor=3),
        ) as router:
            router.register_model(
                "coldstart", model, train_set=dataset, predictor=predictor
            )
            asc = Autoscaler(
                router,
                AutoscalerConfig(
                    min_replicas=1, max_replicas=4, prewarm_pool_size=1
                ),
            )
            asc.scale_up(2)  # first join is pre-warmed, second is spawned
            hists = router.metrics.histograms()
            asc.finalize()
        out: Dict[str, object] = {"backend": backend}
        for source in ("prewarmed", "spawned"):
            summary = hists.get(f"autoscaler.cold_start_ms.{source}", {})
            out[f"{source}_ms"] = float(summary.get("mean", 0.0) or 0.0)
        pool = hists.get("autoscaler.prewarm_spawn_ms", {})
        out["prewarm_spawn_ms"] = float(pool.get("mean", 0.0) or 0.0)
        return out
    except Exception as error:  # pragma: no cover - host-dependent
        return {"backend": backend, "error": repr(error)}


def run_drain_chaos(
    config: AutoscaleExperimentConfig, backend: str
) -> Dict[str, object]:
    """Kill a replica outright in the middle of draining it.

    The drain protocol's zero-lost claim has to survive its own worst
    case: the replica being decommissioned dies (real SIGKILL on the
    process backend) after evacuation started but before its queue ran
    dry.  Clients must see every request answered — in-flight work on
    the victim fails over to the survivors that evacuation already
    populated.
    """
    with make_cluster(
        3,
        backend=backend,
        seed=config.seed,
        synthetic_work_s=0.02,
        config=RouterConfig(replication_factor=2),
    ) as router:
        model, dataset, predictor = _build_model(config)
        gid = router.register_model(
            "chaos", model, train_set=dataset, predictor=predictor
        )
        stop = threading.Event()
        lock = threading.Lock()
        served = [0]
        errors: List[str] = []

        def client():
            while not stop.is_set():
                request = ClassifyRequest(
                    model_id=gid, inputs=dataset.inputs[:1]
                )
                try:
                    router.classify(request)
                except BaseException as error:
                    with lock:
                        errors.append(repr(error))
                    continue
                with lock:
                    served[0] += 1

        clients = [threading.Thread(target=client) for _ in range(6)]
        for t in clients:
            t.start()
        time.sleep(0.4)  # build up in-flight work everywhere

        victim = router.holders(gid)[0]
        victim_replica = router.replicas[victim]
        drain_result: Dict[str, object] = {}

        def drain():
            try:
                drain_result.update(router.drain_replica(victim))
            except (KeyError, ValueError) as error:
                # The kill won the race and the health plane already
                # ejected the victim — same invariant, different path.
                drain_result["error"] = repr(error)

        drainer = threading.Thread(target=drain)
        drainer.start()
        time.sleep(0.05)
        victim_replica.kill()  # SIGKILL (process) / hard stop (thread)
        drainer.join(60.0)
        time.sleep(0.3)  # keep traffic flowing on the survivors
        stop.set()
        for t in clients:
            t.join(30.0)
        counters = router.metrics.counters()
        row = {
            "backend": backend,
            "served": served[0],
            "lost": len(errors),
            "errors": errors[:5],
            "victim": victim,
            "drain": drain_result,
            "drains_died_midway": counters.get(
                "router.drains_died_midway", 0.0
            ),
            "failovers": counters.get("router.failovers", 0.0),
        }
    row["shm_leaked_blocks"] = _shm_leaked_blocks(router)
    return row


def run_autoscale(
    config: Optional[AutoscaleExperimentConfig] = None,
) -> Dict[str, object]:
    config = config or AutoscaleExperimentConfig()
    if config.smoke:
        config.steps = min(config.steps, 16)
    model, dataset, predictor = _build_model(config)
    rates = make_trace(config)

    setups: Dict[str, Dict[str, object]] = {}
    setups["static-small"] = _run_setup(
        "static-small", config.min_replicas, config, model, dataset,
        predictor, rates, elastic=False,
    )
    setups["static-large"] = _run_setup(
        "static-large", config.max_replicas, config, model, dataset,
        predictor, rates, elastic=False,
    )
    setups["autoscale"] = _run_setup(
        "autoscale", config.min_replicas, config, model, dataset,
        predictor, rates, elastic=True,
    )

    cold_backends = (
        (THREAD_BACKEND,)
        if config.smoke
        else (THREAD_BACKEND, PROCESS_BACKEND)
    )
    cold_start = [
        _measure_cold_start(b, config, model, dataset, predictor)
        for b in cold_backends
    ]

    chaos_backend = THREAD_BACKEND if config.smoke else PROCESS_BACKEND
    drain_chaos = run_drain_chaos(config, chaos_backend)

    large = setups["static-large"]
    auto = setups["autoscale"]
    small = setups["static-small"]
    goodput_ratio = (
        auto["goodput"] / large["goodput"] if large["goodput"] else 0.0
    )
    cost_ratio = (
        auto["replica_seconds"] / large["replica_seconds"]
        if large["replica_seconds"]
        else 1.0
    )
    return {
        "config": {
            "steps": config.steps,
            "step_s": config.step_s,
            "trough_rps": config.trough_rps,
            "peak_rps": config.peak_rps,
            "flash_factor": config.flash_factor,
            "synthetic_work_s": config.synthetic_work_s,
            "latency_budget_s": config.latency_budget_s,
            "min_replicas": config.min_replicas,
            "max_replicas": config.max_replicas,
            "backend": config.backend,
            "seed": config.seed,
            "smoke": config.smoke,
            "min_goodput_ratio": config.min_goodput_ratio,
            "max_cost_ratio": config.max_cost_ratio,
        },
        "trace": [round(r, 1) for r in rates],
        "setups": setups,
        "goodput_ratio_vs_large": goodput_ratio,
        "cost_ratio_vs_large": cost_ratio,
        "goodput_vs_small": (
            auto["goodput"] - small["goodput"]
        ),
        "cold_start": cold_start,
        "drain_chaos": drain_chaos,
    }


def check_autoscale(results: Dict[str, object]) -> List[str]:
    """The acceptance bars, as failure strings (empty = pass)."""
    failures: List[str] = []
    config = results["config"]
    setups = results["setups"]
    for label, row in setups.items():
        if row["lost"]:
            failures.append(
                f"{row['lost']} request(s) lost in {label} "
                f"(first: {row['errors'][:1]})"
            )
        if row.get("shm_leaked_blocks"):
            failures.append(
                f"{row['shm_leaked_blocks']} shm block(s) leaked in {label}"
            )
    ratio = results["goodput_ratio_vs_large"]
    if ratio < config["min_goodput_ratio"]:
        failures.append(
            f"autoscale goodput is {ratio:.3f} of static-large "
            f"(need >= {config['min_goodput_ratio']:g})"
        )
    cost = results["cost_ratio_vs_large"]
    if cost > config["max_cost_ratio"]:
        failures.append(
            f"autoscale burned {cost:.3f} of static-large replica-seconds "
            f"(need <= {config['max_cost_ratio']:g})"
        )
    if results["goodput_vs_small"] <= 0:
        failures.append(
            "autoscale goodput does not strictly beat static-small "
            f"({setups['autoscale']['goodput']:.3f} vs "
            f"{setups['static-small']['goodput']:.3f})"
        )
    auto = setups["autoscale"]
    if not auto.get("scale_ups"):
        failures.append("autoscaler never scaled up on the trace")
    if not auto.get("scale_downs"):
        failures.append("autoscaler never scaled down on the trace")
    chaos = results["drain_chaos"]
    if chaos["lost"]:
        failures.append(
            f"{chaos['lost']} request(s) lost in the mid-drain kill episode "
            f"(first: {chaos['errors'][:1]})"
        )
    if chaos.get("shm_leaked_blocks"):
        failures.append(
            f"{chaos['shm_leaked_blocks']} shm block(s) leaked in the "
            "mid-drain kill episode"
        )
    return failures


def format_autoscale(results: Dict[str, object]) -> str:
    config = results["config"]
    lines = [
        f"trace: {config['steps']} x {config['step_s']:g}s steps, "
        f"{config['trough_rps']:g}-{config['peak_rps']:g} rps diurnal, "
        f"{config['flash_factor']:g}x flash crowd; "
        f"budget {config['latency_budget_s'] * 1e3:g} ms; "
        f"fleet {config['min_replicas']}-{config['max_replicas']} "
        f"({config['backend']})",
        f"{'setup':>14} {'requests':>8} {'served':>7} {'lost':>5} "
        f"{'goodput':>8} {'p99 s':>7} {'rep-s':>8}",
    ]
    for label in ("static-small", "static-large", "autoscale"):
        row = results["setups"][label]
        lines.append(
            f"{label:>14} {row['requests']:>8} {row['served']:>7} "
            f"{row['lost']:>5} {row['goodput']:>8.3f} "
            f"{row['p99_latency_s']:>7.3f} {row['replica_seconds']:>8.1f}"
        )
    auto = results["setups"]["autoscale"]
    lines.append(
        f"autoscale: {auto.get('scale_ups', 0)} up / "
        f"{auto.get('scale_downs', 0)} down decisions; fleet track "
        f"{auto.get('fleet', [])}"
    )
    lines.append(
        f"vs static-large: goodput x{results['goodput_ratio_vs_large']:.3f} "
        f"(need >= {config['min_goodput_ratio']:g}), cost "
        f"x{results['cost_ratio_vs_large']:.3f} "
        f"(need <= {config['max_cost_ratio']:g})"
    )
    for row in results["cold_start"]:
        if "error" in row:
            lines.append(
                f"cold start [{row['backend']}]: unavailable ({row['error']})"
            )
        else:
            lines.append(
                f"cold start [{row['backend']}]: "
                f"prewarmed {row['prewarmed_ms']:.1f} ms, "
                f"spawned {row['spawned_ms']:.1f} ms "
                f"(pool spawn {row['prewarm_spawn_ms']:.1f} ms)"
            )
    chaos = results["drain_chaos"]
    lines.append(
        f"mid-drain kill [{chaos['backend']}]: served={chaos['served']} "
        f"lost={chaos['lost']} died_midway="
        f"{chaos['drains_died_midway']:.0f} "
        f"failovers={chaos['failovers']:.0f}"
    )
    return "\n".join(lines)
