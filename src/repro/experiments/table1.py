"""E1 — Table I: conv-layer execution time vs FLOPs non-linearity."""

from __future__ import annotations

from typing import Dict, List

from ..profiling.cost_model import (
    MobileDeviceCostModel,
    TABLE1_CONFIGS,
    TABLE1_TIMES_MS,
)
from ..profiling.profiler import PiecewiseLinearProfiler, generate_profiling_samples


def run_table1() -> List[Dict[str, float]]:
    """Reproduce Table I on the synthetic device, with profiler predictions.

    Returns one row per CNN1..CNN4 with the paper's published time, our cost
    model's time, and the learned profiler's prediction.
    """
    device = MobileDeviceCostModel()
    profiler = PiecewiseLinearProfiler().fit(
        generate_profiling_samples(MobileDeviceCostModel(noise=0.02, seed=1), 400, seed=0)
    )
    rows = []
    for name, spec in TABLE1_CONFIGS.items():
        rows.append(
            {
                "layer": name,
                "in_channels": spec.in_channels,
                "out_channels": spec.out_channels,
                "flops_m": spec.flops / 1e6,
                "paper_time_ms": TABLE1_TIMES_MS[name],
                "model_time_ms": device.execution_time_ms(spec),
                "profiler_time_ms": profiler.predict_one(spec),
            }
        )
    return rows


def format_table1(rows: List[Dict[str, float]]) -> str:
    header = (
        f"{'layer':6} {'in':>4} {'out':>4} {'FLOPs (M)':>10} "
        f"{'paper (ms)':>11} {'model (ms)':>11} {'profiler (ms)':>14}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r['layer']:6} {r['in_channels']:>4} {r['out_channels']:>4} "
            f"{r['flops_m']:>10.1f} {r['paper_time_ms']:>11.1f} "
            f"{r['model_time_ms']:>11.1f} {r['profiler_time_ms']:>14.1f}"
        )
    return "\n".join(lines)
