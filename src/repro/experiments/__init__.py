"""Experiment drivers reproducing every table and figure of the paper.

Each module exposes a ``run_*`` function returning plain dicts/arrays; the
``benchmarks/`` tree calls these and prints the same rows/series the paper
reports.  Heavy artifacts (the trained benchmark-scale staged model and its
stage outputs) are cached on disk by :mod:`repro.experiments.common` so a
full benchmark run trains each model once.

Experiment index (DESIGN.md §4):

- E1 Table I   — :mod:`repro.experiments.table1`
- E2 Fig. 2    — :mod:`repro.experiments.fig2`
- E3 Table II  — :mod:`repro.experiments.table2`
- E4 Table III — :mod:`repro.experiments.table3`
- E5 Fig. 4    — :mod:`repro.experiments.fig4`
- E6 Table IV  — :mod:`repro.experiments.table4`
- E8 + ablations — :mod:`repro.experiments.ablations`
"""

from .common import BenchmarkArtifacts, get_benchmark_artifacts

__all__ = ["BenchmarkArtifacts", "get_benchmark_artifacts"]
