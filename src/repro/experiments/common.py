"""Shared benchmark artifacts: the trained staged model and its outputs.

Training the benchmark-scale staged ResNet in pure numpy takes about a
minute, so the trained weights (plus the derived per-stage outputs on the
train/calibration/test splits) are cached under ``.bench_cache/`` next to
the repository root.  Delete that directory to force retraining.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Optional

import numpy as np

from ..calibration.entropy_reg import EntropyCalibrator
from ..datasets import SyntheticImageConfig, make_image_dataset
from ..nn.data import Dataset
from ..nn.resnet import StagedResNet, StagedResNetConfig
from ..nn.training import collect_stage_outputs, evaluate_stage_accuracy, train_staged_model

#: benchmark-scale configuration — a numpy-trainable instance of the paper's
#: three-stage topology over the synthetic CIFAR-10 substitute.
BENCH_MODEL_CONFIG = StagedResNetConfig(
    num_classes=10,
    image_size=16,
    stage_channels=(8, 16, 32),
    blocks_per_stage=2,
    seed=0,
)
BENCH_DATA_CONFIG = SyntheticImageConfig(num_classes=10, image_size=16, seed=7)
TRAIN_SIZE = 3000
CAL_SIZE = 1200
TEST_SIZE = 1500
EPOCHS = 20
LEARNING_RATE = 3e-3

_CACHE_VERSION = 5


def _cache_dir() -> Path:
    override = os.environ.get("REPRO_BENCH_CACHE")
    if override:
        return Path(override)
    return Path(__file__).resolve().parents[3] / ".bench_cache"


@dataclass
class BenchmarkArtifacts:
    """Everything the table/figure experiments need, computed once."""

    model: StagedResNet
    train_set: Dataset
    cal_set: Dataset
    test_set: Dataset
    #: stage outputs of the *calibrated* model.
    train_outputs: Dict[str, np.ndarray]
    test_outputs: Dict[str, np.ndarray]
    #: stage outputs of the model *before* calibration (for Table II / Fig 2).
    uncalibrated_test_outputs: Dict[str, np.ndarray]
    uncalibrated_state: Dict[str, np.ndarray]
    stage_accuracies: np.ndarray
    calibration_alphas: tuple

    @property
    def num_stages(self) -> int:
        return self.model.num_stages

    def uncalibrated_model(self) -> StagedResNet:
        """A copy of the model with pre-calibration weights installed."""
        model = StagedResNet(self.model.config)
        model.load_state_dict(self.uncalibrated_state)
        model.eval()
        return model


def _build_artifacts(seed: int = 0) -> BenchmarkArtifacts:
    train_set = make_image_dataset(TRAIN_SIZE, BENCH_DATA_CONFIG, seed=seed)
    cal_set = make_image_dataset(CAL_SIZE, BENCH_DATA_CONFIG, seed=seed + 1)
    test_set = make_image_dataset(TEST_SIZE, BENCH_DATA_CONFIG, seed=seed + 2)
    model = StagedResNet(BENCH_MODEL_CONFIG)
    train_staged_model(
        model, train_set, epochs=EPOCHS, batch_size=64, lr=LEARNING_RATE, seed=seed
    )
    uncalibrated_state = model.state_dict()
    uncalibrated_test_outputs = collect_stage_outputs(model, test_set)

    results = EntropyCalibrator(epochs=3, seed=seed).calibrate(model, cal_set)
    train_outputs = collect_stage_outputs(model, train_set)
    test_outputs = collect_stage_outputs(model, test_set)
    return BenchmarkArtifacts(
        model=model,
        train_set=train_set,
        cal_set=cal_set,
        test_set=test_set,
        train_outputs=train_outputs,
        test_outputs=test_outputs,
        uncalibrated_test_outputs=uncalibrated_test_outputs,
        uncalibrated_state=uncalibrated_state,
        stage_accuracies=evaluate_stage_accuracy(model, test_set),
        calibration_alphas=tuple(r.alpha for r in results),
    )


_MEMORY_CACHE: Dict[int, BenchmarkArtifacts] = {}


def get_benchmark_artifacts(seed: int = 0, use_disk_cache: bool = True) -> BenchmarkArtifacts:
    """Return the (cached) benchmark artifacts for ``seed``."""
    if seed in _MEMORY_CACHE:
        return _MEMORY_CACHE[seed]
    cache_file = _cache_dir() / f"bench_v{_CACHE_VERSION}_seed{seed}.pkl"
    if use_disk_cache and cache_file.exists():
        with open(cache_file, "rb") as fh:
            artifacts = pickle.load(fh)
        _MEMORY_CACHE[seed] = artifacts
        return artifacts
    artifacts = _build_artifacts(seed)
    if use_disk_cache:
        cache_file.parent.mkdir(parents=True, exist_ok=True)
        with open(cache_file, "wb") as fh:
            pickle.dump(artifacts, fh)
    _MEMORY_CACHE[seed] = artifacts
    return artifacts
