"""The tenant-isolation gate: one abuser cannot hurt a compliant tenant.

The experiment behind ``make isolation`` (docs/WORKLOAD.md).  It composes
the :mod:`repro.workload` stack into three DES phases plus a live phase:

- **Phase A (alone)** — the compliant tenant population runs by itself
  through the million-request engine with weighted-fair tenant quotas.
- **Phase B (contended)** — the *same* compliant traces (tenant-stable
  seeding guarantees identical arrivals) plus an abuser offering 10x its
  guaranteed share.  The gates: every compliant tenant's p99 grows by at
  most 25% and its goodput shrinks by at most 5% versus Phase A, while
  the abuser's overflow is shed at admission.
- **No-quota contrast** — the same contended population with tenant
  quotas disabled and a deliberately tight shared queue.  The gate here
  is *inverted*: compliant goodput must degrade past the bound, proving
  the isolation gates are non-vacuous (they fail without the mechanism).
- **Live phase** — a cheap-endpoint trace replayed against a real
  :func:`~repro.cluster.make_cluster` router through tenant-stamped
  clients, with exact per-tenant accounting cross-checked against
  ``cluster_snapshot()``.

Volume floors are part of the gate: >= 1M DES arrivals and >= 100k live
requests in the full run (scaled down by ``--smoke``), every phase with
exact integer accounting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..admission import AdmissionController, TenantQuota
from ..workload import (
    EngineConfig,
    TenantSpec,
    WorkloadEngine,
    WorkloadReport,
    generate_trace,
)
from ..workload.trace import FlashCrowd

#: Endpoint mix for the live phase: every endpoint exercised, but the
#: heavy training endpoints kept rare so the replay sustains ~1k req/s.
LIVE_MIX: Dict[str, float] = {
    "classify": 0.35,
    "estimate": 0.35,
    "profile": 0.20,
    "infer": 0.01,
    "calibrate": 0.01,
    "label": 0.005,
    "reduce": 0.02,
    "delete": 0.02,
    "train_estimator": 0.02,
    "train": 0.0025,
    "train_deepsense": 0.0025,
}


@dataclass
class IsolationExperimentConfig:
    """Knobs and acceptance bars of the isolation experiment."""

    seed: int = 0
    #: CI mode: same phases and invariants, scaled-down volume floors.
    smoke: bool = False

    # --- DES population ----------------------------------------------
    num_compliant: int = 4
    compliant_rate_per_s: float = 350.0
    #: how far past its guaranteed share the abuser offers load.
    abuse_factor: float = 10.0
    #: total tenant admission capacity; each of the (compliant + 1)
    #: equal-weight tenants is guaranteed capacity / (num_compliant + 1).
    tenant_capacity_per_s: float = 3500.0
    servers: int = 96
    des_duration_s: float = 110.0
    no_quota_duration_s: float = 30.0
    #: shared queue bound for the quota phases (sized to never bind) and
    #: for the no-quota contrast (sized to bind fast, so tenant-blind
    #: shedding shows up inside the phase).
    max_queue: int = 50_000
    no_quota_max_queue: int = 2_000

    # --- live phase ---------------------------------------------------
    live_tenants: int = 3
    live_duration_s: float = 50.0
    num_replicas: int = 2
    num_threads: int = 8
    #: per-tenant quota on the live controller (wall-clock rate); sized
    #: so the closed-loop replay sees some tenant-quota rejections.
    live_tenant_rate_per_s: float = 300.0

    # --- acceptance bars ---------------------------------------------
    min_des_requests: int = 1_000_000
    min_live_requests: int = 100_000
    max_p99_ratio: float = 1.25
    min_goodput_ratio: float = 0.95
    #: the abuser must be visibly shed at admission.
    min_abuser_shed: float = 0.5

    def __post_init__(self) -> None:
        if self.smoke:
            self.des_duration_s = 6.0
            self.no_quota_duration_s = 6.0
            self.live_duration_s = 10.0
            self.min_des_requests = 50_000
            self.min_live_requests = 4_000

    @property
    def fair_share_per_s(self) -> float:
        return self.tenant_capacity_per_s / (self.num_compliant + 1)

    def as_dict(self) -> Dict[str, object]:
        return {k: getattr(self, k) for k in self.__dataclass_fields__}


def _compliant_specs(config: IsolationExperimentConfig) -> List[TenantSpec]:
    """The compliant population: diurnal + bursty, under fair share.

    Peak offered rate (diurnal crest x burst state) stays below the
    guaranteed share — that is what "compliant" means here; the quotas
    protect exactly the traffic a tenant was promised.
    """
    specs = []
    for i in range(config.num_compliant):
        specs.append(
            TenantSpec(
                name=f"tenant-{i:02d}",
                rate_per_s=config.compliant_rate_per_s,
                weight=1.0,
                diurnal_amplitude=0.2,
                diurnal_period_s=60.0,
                diurnal_phase=2.0 * math.pi * i / config.num_compliant,
                burst_multiplier=1.5,
                burst_fraction=0.05,
                burst_mean_s=5.0,
                flash_group="des" if i % 2 == 0 else None,
            )
        )
    return specs


def _abuser_spec(config: IsolationExperimentConfig) -> TenantSpec:
    return TenantSpec(
        name="abuser",
        rate_per_s=config.abuse_factor * config.fair_share_per_s,
        weight=1.0,
    )


def _quotas(
    config: IsolationExperimentConfig, names: List[str]
) -> Dict[str, TenantQuota]:
    return {name: TenantQuota(weight=1.0) for name in names}


def _engine_phase(
    config: IsolationExperimentConfig,
    specs: List[TenantSpec],
    with_quotas: bool,
    max_queue: int,
    duration_s: float,
) -> WorkloadReport:
    trace = generate_trace(
        specs,
        duration_s=duration_s,
        seed=config.seed,
        flash_crowds=(
            FlashCrowd(
                group="des",
                start_s=0.3 * duration_s,
                duration_s=0.1 * duration_s,
                multiplier=1.3,
            ),
        ),
    )
    # Quotas always cover all five population slots, whether or not the
    # abuser is present: a declared tenant's guaranteed share must not
    # depend on who else shows up.
    all_names = [s.name for s in _compliant_specs(config)] + ["abuser"]
    admission: Optional[AdmissionController] = None
    if with_quotas:
        admission = AdmissionController(
            per_tenant=_quotas(config, all_names),
            tenant_capacity_per_s=config.tenant_capacity_per_s,
            # ~50ms of link burst: enough to smooth arrivals, small
            # enough that the borrow pool's initial fill does not hand
            # the abuser a free opening spike in short (smoke) windows.
            tenant_capacity_burst=max(1.0, 0.05 * config.tenant_capacity_per_s),
        )
    engine = WorkloadEngine(
        config=EngineConfig(
            servers=config.servers,
            max_queue=max_queue,
            slo_s=1.0,
        ),
        admission=admission,
        weights={name: 1.0 for name in all_names},
        seed=config.seed,
    )
    return engine.run(trace)


def _live_phase(config: IsolationExperimentConfig) -> Dict[str, object]:
    from ..workload.driver import ClusterDriver

    # Rate sized so the Poisson total clears the floor with margin.
    rate = 1.06 * config.min_live_requests / (
        config.live_tenants * config.live_duration_s
    )
    specs = [
        TenantSpec(
            name=f"live-{i}",
            rate_per_s=rate,
            endpoint_mix=dict(LIVE_MIX),
        )
        for i in range(config.live_tenants)
    ]
    trace = generate_trace(
        specs, duration_s=config.live_duration_s, seed=config.seed + 1
    )
    admission = AdmissionController(
        per_tenant={
            s.name: TenantQuota(
                weight=1.0, rate_per_s=config.live_tenant_rate_per_s
            )
            for s in specs
        },
        tenant_capacity_per_s=config.live_tenant_rate_per_s
        * config.live_tenants,
    )
    driver = ClusterDriver(
        trace,
        num_replicas=config.num_replicas,
        num_threads=config.num_threads,
        backend="thread",
        admission=admission,
        seed=config.seed,
    )
    report = driver.run()
    out = report.as_dict()
    tenants = report.snapshot.get("tenants", {})
    out["snapshot_tenants"] = {
        name: row
        for name, row in tenants.items()
        if name.startswith("live-")
    }
    return out


def _tenant_comparison(
    alone: WorkloadReport, contended: WorkloadReport, names: List[str]
) -> Dict[str, Dict[str, float]]:
    rows: Dict[str, Dict[str, float]] = {}
    for name in names:
        a = alone.tenants[name]
        b = contended.tenants[name]
        rows[name] = {
            "arrivals": float(a.arrivals),
            "p99_ms_alone": a.p99_ms,
            "p99_ms_contended": b.p99_ms,
            "p99_ratio": b.p99_ms / a.p99_ms if a.p99_ms else float("inf"),
            "goodput_alone": a.goodput_per_s,
            "goodput_contended": b.goodput_per_s,
            "goodput_ratio": (
                b.goodput_per_s / a.goodput_per_s
                if a.goodput_per_s
                else 0.0
            ),
        }
    return rows


def run_isolation(config: IsolationExperimentConfig) -> Dict[str, object]:
    compliant = _compliant_specs(config)
    names = [s.name for s in compliant]
    population = compliant + [_abuser_spec(config)]

    phase_a = _engine_phase(
        config, compliant, True, config.max_queue, config.des_duration_s
    )
    phase_b = _engine_phase(
        config, population, True, config.max_queue, config.des_duration_s
    )
    no_quota = _engine_phase(
        config,
        population,
        False,
        config.no_quota_max_queue,
        config.no_quota_duration_s,
    )

    abuser = phase_b.tenants["abuser"]
    abuser_row = {
        "arrivals": abuser.arrivals,
        "admitted": abuser.admitted,
        "rejected": abuser.rejected,
        "borrowed": abuser.borrowed,
        "shed_fraction": (
            abuser.rejected / abuser.arrivals if abuser.arrivals else 0.0
        ),
    }
    live = _live_phase(config)

    return {
        "config": config.as_dict(),
        "des": {
            "phase_a": phase_a.as_dict(),
            "phase_b": phase_b.as_dict(),
            "no_quota": no_quota.as_dict(),
            "total_arrivals": (
                phase_a.total_arrivals
                + phase_b.total_arrivals
                + no_quota.total_arrivals
            ),
        },
        "isolation": _tenant_comparison(phase_a, phase_b, names),
        "no_quota_contrast": _tenant_comparison(phase_a, no_quota, names),
        "abuser": abuser_row,
        "live": live,
    }


def check_isolation(results: Dict[str, object]) -> List[str]:
    """The acceptance bars, as failure strings (empty = pass)."""
    failures: List[str] = []
    config = results["config"]
    des = results["des"]

    if des["total_arrivals"] < config["min_des_requests"]:
        failures.append(
            f"DES pushed only {des['total_arrivals']} requests "
            f"(need >= {config['min_des_requests']})"
        )
    for phase in ("phase_a", "phase_b", "no_quota"):
        row = des[phase]
        if not row["accounting_exact"]:
            failures.append(
                f"inexact accounting in {phase}: {row['accounting_detail']}"
            )

    for name, row in results["isolation"].items():
        if row["p99_ratio"] > config["max_p99_ratio"]:
            failures.append(
                f"{name} p99 degraded {row['p99_ratio']:.3f}x under the "
                f"abuser (allowed <= {config['max_p99_ratio']:g}x)"
            )
        if row["goodput_ratio"] < config["min_goodput_ratio"]:
            failures.append(
                f"{name} goodput fell to {row['goodput_ratio']:.3f} of "
                f"alone (need >= {config['min_goodput_ratio']:g})"
            )

    abuser = results["abuser"]
    if abuser["shed_fraction"] < config["min_abuser_shed"]:
        failures.append(
            f"abuser shed only {abuser['shed_fraction']:.3f} of its load "
            f"(need >= {config['min_abuser_shed']:g} — quotas not biting)"
        )

    # The inverted gate: without quotas the same contention MUST violate
    # at least one isolation bound, or the gates above prove nothing.
    contrast = results["no_quota_contrast"]
    degraded = any(
        row["goodput_ratio"] < config["min_goodput_ratio"]
        or row["p99_ratio"] > config["max_p99_ratio"]
        for row in contrast.values()
    )
    if not degraded:
        failures.append(
            "no-quota contrast shows no compliant degradation — the "
            "isolation gate is vacuous on this configuration"
        )

    live = results["live"]
    if live["requests"] < config["min_live_requests"]:
        failures.append(
            f"live phase replayed only {live['requests']} requests "
            f"(need >= {config['min_live_requests']})"
        )
    if not live["accounting_exact"]:
        failures.append(
            f"inexact live accounting: {live['accounting_detail']}"
        )
    return failures


def format_isolation(results: Dict[str, object]) -> str:
    config = results["config"]
    des = results["des"]
    lines = [
        "Tenant isolation gate "
        + ("(smoke)" if config["smoke"] else "(full)"),
        "=" * 44,
        f"DES arrivals: {des['total_arrivals']:,} "
        f"(floor {config['min_des_requests']:,})  |  "
        f"live requests: {results['live']['requests']:,} "
        f"(floor {config['min_live_requests']:,})",
        "",
        f"{'tenant':<12} {'p99 alone':>10} {'p99 contd':>10} "
        f"{'ratio':>6} {'goodput':>8} {'ratio':>6}",
    ]
    for name, row in results["isolation"].items():
        lines.append(
            f"{name:<12} {row['p99_ms_alone']:>8.1f}ms "
            f"{row['p99_ms_contended']:>8.1f}ms {row['p99_ratio']:>6.3f} "
            f"{row['goodput_contended']:>6.1f}/s "
            f"{row['goodput_ratio']:>6.3f}"
        )
    abuser = results["abuser"]
    lines += [
        "",
        f"abuser: offered {abuser['arrivals']:,}, admitted "
        f"{abuser['admitted']:,} ({abuser['borrowed']:,} borrowed), shed "
        f"{abuser['shed_fraction']:.1%}",
        "no-quota contrast (same load, quotas off, tight queue):",
    ]
    for name, row in results["no_quota_contrast"].items():
        lines.append(
            f"  {name:<12} goodput ratio {row['goodput_ratio']:.3f}, "
            f"p99 ratio {row['p99_ratio']:.3f}"
        )
    live = results["live"]
    lines += [
        "",
        f"live replay: {live['requests']:,} requests at "
        f"{live['throughput_per_s']:.0f}/s, accounting "
        + ("exact" if live["accounting_exact"] else "INEXACT"),
    ]
    return "\n".join(lines)
