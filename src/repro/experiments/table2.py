"""E3 — Table II: ECE of confidence-calibration methods at every stage.

Methods, as in the paper:

- **Uncalibrated**: raw confidences of the trained model;
- **RDeepSense**: MC-dropout confidence (Sec. II-D baseline);
- **RTDeepIoT**: the entropy-based calibration of Eq. (4).

We additionally report temperature scaling as an extra baseline (marked
``extra`` — not in the paper's table).
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..calibration.ece import expected_calibration_error
from ..calibration.mc_dropout import MCDropoutStagedWrapper
from ..calibration.temperature import TemperatureScaler
from ..nn import functional as F
from ..nn.data import DataLoader
from ..nn.tensor import Tensor
from .common import BenchmarkArtifacts, get_benchmark_artifacts


def _stage_logits(model, dataset, batch_size: int = 256) -> List[np.ndarray]:
    model.eval()
    loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
    chunks: List[List[np.ndarray]] = [[] for _ in range(model.num_stages)]
    for inputs, _ in loader:
        logits = model(Tensor(inputs))
        for s, l in enumerate(logits):
            chunks[s].append(l.data)
    return [np.concatenate(c, axis=0) for c in chunks]


def run_table2(artifacts: BenchmarkArtifacts = None, num_bins: int = 10) -> Dict[str, List[float]]:
    """Per-stage ECE of each calibration method on the test set."""
    artifacts = artifacts or get_benchmark_artifacts()
    labels = artifacts.test_outputs["labels"]
    num_stages = artifacts.num_stages
    result: Dict[str, List[float]] = {}

    # Uncalibrated: the pre-calibration model's raw confidences.
    before = artifacts.uncalibrated_test_outputs
    result["Uncalibrated"] = [
        expected_calibration_error(before["confidences"][s], before["correct"][s], num_bins)
        for s in range(num_stages)
    ]

    # RDeepSense: MC dropout, with heads fine-tuned dropout-active on the
    # calibration split (RDeepSense trains its dropout-bearing layers).
    uncal_model = artifacts.uncalibrated_model()
    wrapper = MCDropoutStagedWrapper(uncal_model, rate=0.25, passes=20, seed=0)
    wrapper.finetune_heads(artifacts.cal_set, epochs=3)
    mc = wrapper.collect_outputs(artifacts.test_set)
    result["RDeepSense"] = [
        expected_calibration_error(mc["confidences"][s], mc["correct"][s], num_bins)
        for s in range(num_stages)
    ]

    # RTDeepIoT: entropy-calibrated model (Eq. 4).
    after = artifacts.test_outputs
    result["RTDeepIoT"] = [
        expected_calibration_error(after["confidences"][s], after["correct"][s], num_bins)
        for s in range(num_stages)
    ]

    # Extra baseline: temperature scaling fit on the calibration split
    # (over a pristine copy of the pre-calibration model).
    pristine = artifacts.uncalibrated_model()
    cal_logits = _stage_logits(pristine, artifacts.cal_set)
    test_logits = _stage_logits(pristine, artifacts.test_set)
    temp_eces = []
    for s in range(num_stages):
        scaler = TemperatureScaler().fit(cal_logits[s], artifacts.cal_set.labels)
        probs = scaler.transform(test_logits[s])
        conf = probs.max(axis=-1)
        correct = probs.argmax(axis=-1) == labels
        temp_eces.append(expected_calibration_error(conf, correct, num_bins))
    result["TemperatureScaling (extra)"] = temp_eces
    return result


def format_table2(table: Dict[str, List[float]]) -> str:
    methods = list(table)
    num_stages = len(next(iter(table.values())))
    header = f"{'':10}" + "".join(f"{m:>28}" for m in methods)
    lines = [header, "-" * len(header)]
    for s in range(num_stages):
        lines.append(
            f"Stage {s + 1:<4}" + "".join(f"{table[m][s]:>28.3f}" for m in methods)
        )
    return "\n".join(lines)
