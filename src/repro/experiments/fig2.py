"""E2 — Fig. 2: reliability diagrams without / with entropy calibration."""

from __future__ import annotations

from typing import Dict

from ..calibration.ece import ReliabilityDiagram, reliability_diagram
from .common import BenchmarkArtifacts, get_benchmark_artifacts


def run_fig2(
    artifacts: BenchmarkArtifacts = None, stage: int = -1, num_bins: int = 10
) -> Dict[str, ReliabilityDiagram]:
    """Reliability diagrams of the final-stage classifier on the test set.

    Returns ``{"uncalibrated": ..., "calibrated": ...}`` — the two panels of
    Fig. 2.  The calibrated diagram must hug the diagonal far more closely.
    """
    artifacts = artifacts or get_benchmark_artifacts()
    stage = stage % artifacts.num_stages
    before = artifacts.uncalibrated_test_outputs
    after = artifacts.test_outputs
    return {
        "uncalibrated": reliability_diagram(
            before["confidences"][stage], before["correct"][stage], num_bins
        ),
        "calibrated": reliability_diagram(
            after["confidences"][stage], after["correct"][stage], num_bins
        ),
    }


def format_fig2(diagrams: Dict[str, ReliabilityDiagram]) -> str:
    parts = []
    for name, diagram in diagrams.items():
        parts.append(f"=== {name} (ECE={diagram.ece():.4f}) ===")
        parts.append(diagram.render_ascii())
    return "\n".join(parts)
