"""Cluster scaling experiment: throughput vs replica count, plus failover.

Two questions, answered with the in-process cluster tier
(:mod:`repro.cluster`):

**Does the router scale serving out?**  The same closed-loop classify
workload is driven against clusters of 1, 2 and 4 replicas.  Each
replica models a backend with ``synthetic_work_s`` of device-independent
service time plus the real model's forward pass; with the model fully
replicated, throughput should grow near-linearly with N.  The service
time is either a ``sleep`` (I/O-ish; thread replicas overlap it even on
one core) or a ``spin`` (compute-bound, GIL-holding; only the
``process`` backend's real OS processes overlap it — the multi-core
claim this experiment gates, with the thread backend as the recorded
baseline and the bar scaled to the cores actually present via
:func:`required_speedup`).

**Does failover preserve utility?**  One episode at the largest N is run
twice — untouched, and with one replica killed mid-episode.  The router
must fail the victim's traffic over to the surviving holders: zero
requests lost, and episode utility (summed serving confidence) within
``min_utility_ratio`` of the no-kill run.

``check_cluster_scaling`` turns those acceptance bars into failure
strings; the ``repro cluster`` CLI (and ``make cluster``) exits non-zero
on any of them.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..cluster import (
    PROCESS_BACKEND,
    THREAD_BACKEND,
    WORK_SLEEP,
    WORK_SPIN,
    RouterConfig,
    make_cluster,
)
from ..datasets import SyntheticImageConfig, make_image_dataset
from ..nn.resnet import StagedResNet, StagedResNetConfig
from ..nn.training import collect_stage_outputs
from ..scheduler.confidence import GPConfidencePredictor
from ..service import ClassifyRequest


@dataclass
class ClusterScalingConfig:
    replica_counts: Tuple[int, ...] = (1, 2, 4)
    num_requests: int = 96
    num_clients: int = 8
    #: per-call service time each replica burns; the scaling signal.
    synthetic_work_s: float = 0.004
    batch_per_request: int = 2
    seed: int = 0
    min_speedup_at_max: float = 2.5
    min_utility_ratio: float = 0.8
    #: ``thread`` (PR-5 in-process replicas) or ``process`` (one
    #: multiprocessing child per replica, shm tensor transport).
    backend: str = THREAD_BACKEND
    #: ``sleep`` models an I/O-ish backend (threads overlap it);
    #: ``spin`` holds the GIL — compute-bound load that only the
    #: process backend can overlap across cores.
    work_kind: str = WORK_SLEEP
    start_method: Optional[str] = None
    model_config: StagedResNetConfig = field(
        default_factory=lambda: StagedResNetConfig(
            num_classes=3,
            image_size=8,
            stage_channels=(4, 8),
            blocks_per_stage=1,
            seed=0,
        )
    )


def required_speedup(config: ClusterScalingConfig) -> float:
    """The speedup bar this host can honestly be held to.

    ``sleep`` work overlaps regardless of cores, so the configured bar
    applies as-is.  ``spin`` work is compute: the process backend can
    only scale with *physical cores actually present* (the CI gate runs
    the full ``min_speedup_at_max`` on multi-core runners; a 1-core dev
    box is capped at no-worse-than-transport-overhead), and the thread
    backend cannot scale it at all — it is the recorded baseline, gated
    only on zero lost requests.
    """
    n_max = max(config.replica_counts)
    if config.work_kind == WORK_SPIN:
        if config.backend == PROCESS_BACKEND:
            cores = os.cpu_count() or 1
            return min(
                config.min_speedup_at_max,
                max(0.75, 0.75 * min(cores, n_max)),
            )
        return 0.0
    return config.min_speedup_at_max


def _build_model(config: ClusterScalingConfig):
    dataset = make_image_dataset(
        48,
        SyntheticImageConfig(
            num_classes=config.model_config.num_classes,
            image_size=config.model_config.image_size,
            seed=3,
        ),
        seed=config.seed,
    )
    model = StagedResNet(config.model_config)
    predictor = GPConfidencePredictor(
        num_classes=config.model_config.num_classes, seed=config.seed
    ).fit(collect_stage_outputs(model, dataset)["confidences"])
    return model, dataset, predictor


def _drive(
    router,
    gid: str,
    inputs: np.ndarray,
    config: ClusterScalingConfig,
    kill_after: Optional[int] = None,
) -> Dict[str, float]:
    """Closed-loop drive of ``num_requests`` classifies from
    ``num_clients`` threads; optionally kill one holder mid-episode."""
    per_client = config.num_requests // config.num_clients
    total = per_client * config.num_clients
    utilities: List[float] = []
    errors: List[BaseException] = []
    lock = threading.Lock()
    started = threading.Barrier(config.num_clients + 1)
    request_counter = [0]
    victim = router.holders(gid)[0]

    def client():
        started.wait()
        for _ in range(per_client):
            request = ClassifyRequest(
                model_id=gid, inputs=inputs[: config.batch_per_request]
            )
            try:
                response = router.classify(request)
            except BaseException as error:  # lost request: the failure mode
                with lock:
                    errors.append(error)
                continue
            with lock:
                utilities.append(float(np.mean(response.confidences)))
                request_counter[0] += 1
                if (
                    kill_after is not None
                    and request_counter[0] == kill_after
                ):
                    router.replicas[victim].kill()

    threads = [
        threading.Thread(target=client) for _ in range(config.num_clients)
    ]
    for t in threads:
        t.start()
    started.wait()
    start = time.perf_counter()
    for t in threads:
        t.join(60.0)
    wall_s = time.perf_counter() - start
    return {
        "requests": total,
        "served": len(utilities),
        "lost": len(errors),
        "wall_s": wall_s,
        "throughput_rps": len(utilities) / wall_s if wall_s > 0 else 0.0,
        "utility": float(sum(utilities)),
    }


def run_cluster_scaling(
    config: Optional[ClusterScalingConfig] = None,
) -> Dict[str, object]:
    config = config or ClusterScalingConfig()
    model, dataset, predictor = _build_model(config)
    inputs = dataset.inputs

    scaling: List[Dict[str, float]] = []
    for n in config.replica_counts:
        # Full replication: every replica can serve, so throughput
        # measures the router's balancing, not the replication factor.
        router_config = RouterConfig(replication_factor=n)
        with make_cluster(
            n,
            backend=config.backend,
            seed=config.seed,
            synthetic_work_s=config.synthetic_work_s,
            work_kind=config.work_kind,
            config=router_config,
            start_method=config.start_method,
        ) as router:
            gid = router.register_model(
                "scaling", model, train_set=dataset, predictor=predictor
            )
            row = _drive(router, gid, inputs, config)
            row["replicas"] = n
        row["shm_leaked_blocks"] = _shm_leaked_blocks(router)
        scaling.append(row)
    base_rps = scaling[0]["throughput_rps"]
    for row in scaling:
        row["speedup"] = row["throughput_rps"] / base_rps if base_rps else 0.0

    # Failover episode at the largest cluster, with and without a kill.
    n_max = max(config.replica_counts)
    episodes = {}
    for label, kill_after in (("no-kill", None), ("kill", None)):
        with make_cluster(
            n_max,
            backend=config.backend,
            seed=config.seed,
            synthetic_work_s=config.synthetic_work_s,
            work_kind=config.work_kind,
            config=RouterConfig(replication_factor=n_max),
            start_method=config.start_method,
        ) as router:
            gid = router.register_model(
                "failover", model, train_set=dataset, predictor=predictor
            )
            if label == "kill":
                kill_after = config.num_requests // 3
            row = _drive(
                router, gid, inputs, config, kill_after=kill_after
            )
            row["ejected"] = router.ejected()
            row["failovers"] = router.metrics.counter(
                "router.failovers"
            ).value
        # Leak accounting runs post-shutdown: the kill episode checks
        # that even a SIGKILL'd child left nothing behind.
        row["shm_leaked_blocks"] = _shm_leaked_blocks(router)
        episodes[label] = row

    utility_ratio = (
        episodes["kill"]["utility"] / episodes["no-kill"]["utility"]
        if episodes["no-kill"]["utility"]
        else 0.0
    )
    return {
        "config": {
            "replica_counts": list(config.replica_counts),
            "num_requests": config.num_requests,
            "num_clients": config.num_clients,
            "synthetic_work_s": config.synthetic_work_s,
            "min_speedup_at_max": config.min_speedup_at_max,
            "min_utility_ratio": config.min_utility_ratio,
            "backend": config.backend,
            "work_kind": config.work_kind,
            "cpu_count": os.cpu_count() or 1,
            "required_speedup": required_speedup(config),
        },
        "scaling": scaling,
        "failover": {
            "episodes": episodes,
            "utility_ratio": utility_ratio,
        },
    }


def _shm_leaked_blocks(router) -> int:
    """Total leaked shm blocks across replicas after shutdown (thread
    replicas have no arenas and count zero)."""
    leaked = 0
    for replica in router.replicas.values():
        report = getattr(replica, "shm_leak_report", None)
        if report is None:
            continue
        state = report()
        leaked += len(state.get("req_leaked", ()))
        if state.get("state") == "stopped":
            leaked += len(state.get("res_unreleased", ()))
        if state.get("segments_linked") and state.get("state") != "running":
            leaked += 1
    return leaked


def check_cluster_scaling(results: Dict[str, object]) -> List[str]:
    """The acceptance bars, as failure strings (empty = pass)."""
    failures: List[str] = []
    config = results["config"]
    scaling = results["scaling"]
    top = scaling[-1]
    required = config.get("required_speedup", config["min_speedup_at_max"])
    if required > 0 and top["speedup"] < required:
        failures.append(
            f"throughput at N={top['replicas']} is only "
            f"{top['speedup']:.2f}x N=1 "
            f"(need >= {required:g}x on this "
            f"{config.get('cpu_count', '?')}-core host)"
        )
    for row in scaling:
        if row["lost"]:
            failures.append(
                f"{row['lost']} request(s) lost at N={row['replicas']}"
            )
        if row.get("shm_leaked_blocks"):
            failures.append(
                f"{row['shm_leaked_blocks']} shm block(s) leaked at "
                f"N={row['replicas']}"
            )
    failover = results["failover"]
    kill = failover["episodes"]["kill"]
    if kill["lost"]:
        failures.append(
            f"{kill['lost']} request(s) lost in the kill episode"
        )
    if kill.get("shm_leaked_blocks"):
        failures.append(
            f"{kill['shm_leaked_blocks']} shm block(s) leaked after the "
            "replica kill"
        )
    if failover["utility_ratio"] < config["min_utility_ratio"]:
        failures.append(
            f"utility after killing a replica is "
            f"{failover['utility_ratio']:.2f} of the no-kill episode "
            f"(need >= {config['min_utility_ratio']:g})"
        )
    if not kill["ejected"]:
        failures.append("killed replica was never ejected")
    return failures


def format_cluster_scaling(results: Dict[str, object]) -> str:
    config = results["config"]
    lines = [
        f"backend={config.get('backend', 'thread')} "
        f"work={config.get('work_kind', 'sleep')} "
        f"({config.get('synthetic_work_s', 0) * 1e3:g} ms/call) "
        f"cores={config.get('cpu_count', '?')} "
        f"required_speedup={config.get('required_speedup', config['min_speedup_at_max']):g}x",
        f"{'replicas':>8} {'served':>7} {'lost':>5} "
        f"{'wall s':>8} {'req/s':>8} {'speedup':>8}",
    ]
    for row in results["scaling"]:
        lines.append(
            f"{row['replicas']:>8} {row['served']:>7} {row['lost']:>5} "
            f"{row['wall_s']:>8.3f} {row['throughput_rps']:>8.1f} "
            f"{row['speedup']:>7.2f}x"
        )
    failover = results["failover"]
    lines.append("")
    for label, row in failover["episodes"].items():
        lines.append(
            f"failover {label:8}: served={row['served']:<4} "
            f"lost={row['lost']:<3} utility={row['utility']:.1f} "
            f"failovers={row['failovers']:.0f} "
            f"ejected={row['ejected'] or '-'}"
        )
    lines.append(
        f"utility ratio (kill / no-kill): {failover['utility_ratio']:.3f}"
    )
    return "\n".join(lines)
