"""Extension experiment: the inference fast path's throughput gains.

The seed served every image by building a full autograd graph, one image
per stage execution.  The fast path removes both costs: the no-grad
raw-ndarray ``infer_*`` methods skip graph construction entirely, and
micro-batching amortises each stage's im2col + matmul over several images.
This experiment quantifies the three rungs of that ladder on the benchmark
three-stage ResNet:

- ``grad/img`` — the seed path: per-image autograd forward (eval mode);
- ``no-grad/img`` — per-image raw-ndarray inference;
- ``no-grad/batch`` — batched raw-ndarray inference.

It also reports per-stage latency for single-image vs batched execution —
the quantity the micro-batching scheduler trades latency against.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..nn import functional as F
from ..nn.tensor import Tensor
from .common import BenchmarkArtifacts, get_benchmark_artifacts


@dataclass
class FastPathConfig:
    num_images: int = 64
    batch_size: int = 16
    #: timing repeats; the best (minimum) wall time is reported.
    repeats: int = 3
    seed: int = 0


def _best_time(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_fastpath(
    artifacts: Optional[BenchmarkArtifacts] = None,
    config: Optional[FastPathConfig] = None,
) -> Dict[str, object]:
    """Measure images/sec for the three serving paths plus stage latencies."""
    artifacts = artifacts or get_benchmark_artifacts()
    config = config or FastPathConfig()
    model = artifacts.model
    model.eval()
    x = np.asarray(artifacts.test_set.inputs[: config.num_images], dtype=np.float64)
    n = len(x)

    def grad_per_image() -> None:
        for i in range(n):
            logits = model.forward(Tensor(x[i : i + 1]))
            for l in logits:
                F.softmax(l, axis=-1)

    def nograd_per_image() -> None:
        for i in range(n):
            model.predict_proba(x[i : i + 1])

    def nograd_batched() -> None:
        for i in range(0, n, config.batch_size):
            model.predict_proba(x[i : i + config.batch_size])

    # Warm up caches (scratch buffers, BLAS threads) before timing.
    model.predict_proba(x[: config.batch_size])
    t_grad = _best_time(grad_per_image, config.repeats)
    t_nograd = _best_time(nograd_per_image, config.repeats)
    t_batched = _best_time(nograd_batched, config.repeats)

    # Per-stage latency: one image vs one full micro-batch.
    stage_ms: List[Dict[str, float]] = []
    for label, chunk in (("1", x[:1]), (str(config.batch_size), x[: config.batch_size])):
        feats = model.infer_stem(chunk)
        per_stage = []
        for stage in range(model.num_stages):
            start = time.perf_counter()
            feats, _ = model.infer_stage(feats, stage)
            per_stage.append(1e3 * (time.perf_counter() - start))
        stage_ms.append(
            {"batch": label, "stages_ms": per_stage, "per_image_ms": sum(per_stage) / len(chunk)}
        )

    return {
        "num_images": n,
        "batch_size": config.batch_size,
        "throughput": {
            "grad/img": n / t_grad,
            "no-grad/img": n / t_nograd,
            "no-grad/batch": n / t_batched,
        },
        "speedup_nograd": t_grad / t_nograd,
        "speedup_batched": t_grad / t_batched,
        "stage_latency": stage_ms,
    }


def format_fastpath(results: Dict[str, object]) -> str:
    tp = results["throughput"]
    base = tp["grad/img"]
    header = f"{'path':16} {'images/s':>10} {'speedup':>8}"
    lines = [
        f"n={results['num_images']} images, micro-batch={results['batch_size']}",
        header,
        "-" * len(header),
    ]
    for name, rate in tp.items():
        lines.append(f"{name:16} {rate:>10.1f} {rate / base:>7.2f}x")
    lines.append("")
    lines.append("per-stage latency (ms)")
    for row in results["stage_latency"]:
        stages = "  ".join(f"s{i}={ms:6.2f}" for i, ms in enumerate(row["stages_ms"]))
        lines.append(
            f"  batch={row['batch']:>3}: {stages}  ({row['per_image_ms']:.2f} ms/image)"
        )
    return "\n".join(lines)
