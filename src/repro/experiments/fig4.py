"""E5 — Fig. 4: scheduling scalability (accuracy mean/std vs concurrency).

Replays the paper's proof-of-concept: a pool of workers serves image-
classification tasks through the 3-stage network under a per-task latency
constraint, at concurrency levels {2, 5, 10, 20}.  Policies compared:

- RTDeepIoT-k (k in {1, 2, 3}) — greedy utility scheduler, GP confidence curves
- RTDeepIoT-DC-k — constant-slope confidence extrapolation
- RR — stage-level round robin
- FIFO — run each task to completion in arrival order

Stage outcomes come from the cached benchmark model's oracle table; stage
execution times come from the device cost model (normalized to the paper's
equal-stage-times assumption).  Workloads are identical across policies at
each concurrency level (same seeds), so differences are pure scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from ..profiling.cost_model import MobileDeviceCostModel
from ..profiling.stage_costs import stage_execution_times
from ..scheduler.confidence import GPConfidencePredictor
from ..scheduler.policies import FIFOPolicy, RoundRobinPolicy, RTDeepIoTPolicy
from ..scheduler.simulator import (
    EpisodeResult,
    SimulationConfig,
    TaskOracle,
    run_episodes,
)
from .common import BenchmarkArtifacts, get_benchmark_artifacts

CONCURRENCY_LEVELS = (2, 5, 10, 20)


@dataclass
class Fig4Config:
    num_workers: int = 4
    #: per-task latency constraint in stage-time units.
    latency_constraint: float = 6.5
    episodes: int = 6
    tasks_per_episode: int = 80
    seed: int = 0


@dataclass
class PolicyCurve:
    """Accuracy statistics of one policy across concurrency levels."""

    name: str
    concurrency: List[int] = field(default_factory=list)
    mean_accuracy: List[float] = field(default_factory=list)
    std_accuracy: List[float] = field(default_factory=list)
    #: Fig. 4c fairness proxy — mean (over episodes) of the per-episode
    #: standard deviation of per-task delivered confidence.  "A lower
    #: deviation means better fairness."
    fairness_std: List[float] = field(default_factory=list)
    mean_stages: List[float] = field(default_factory=list)


def default_policies(predictor: GPConfidencePredictor) -> Dict[str, Callable]:
    """Policy factories keyed by display name (paper Fig. 4 legend)."""
    factories: Dict[str, Callable] = {}
    for k in (1, 2, 3):
        factories[f"RTDeepIoT-{k}"] = (
            lambda k=k: RTDeepIoTPolicy(predictor, k=k, dynamic=True)
        )
    for k in (1, 2, 3):
        factories[f"RTDeepIoT-DC-{k}"] = (
            lambda k=k: RTDeepIoTPolicy(predictor, k=k, dynamic=False)
        )
    factories["RR"] = RoundRobinPolicy
    factories["FIFO"] = FIFOPolicy
    return factories


def run_fig4(
    artifacts: BenchmarkArtifacts = None,
    config: Fig4Config = None,
    concurrency_levels: Sequence[int] = CONCURRENCY_LEVELS,
    policy_names: Sequence[str] = None,
) -> Dict[str, PolicyCurve]:
    """Run the scalability sweep; returns one curve per policy."""
    artifacts = artifacts or get_benchmark_artifacts()
    config = config or Fig4Config()
    oracles = TaskOracle.table_from_outputs(artifacts.test_outputs)
    predictor = GPConfidencePredictor(
        num_classes=artifacts.model.config.num_classes, seed=0
    ).fit(artifacts.train_outputs["confidences"])
    # Equal stage times (the paper's optimality condition), in abstract units.
    raw = stage_execution_times(artifacts.model, MobileDeviceCostModel(), normalize=True)
    unit = raw[0]
    stage_times = tuple(t / unit for t in raw)

    factories = default_policies(predictor)
    if policy_names is not None:
        factories = {n: factories[n] for n in policy_names}

    curves: Dict[str, PolicyCurve] = {n: PolicyCurve(name=n) for n in factories}
    for concurrency in concurrency_levels:
        sim_config = SimulationConfig(
            num_workers=config.num_workers,
            concurrency=concurrency,
            stage_times=stage_times,
            latency_constraint=config.latency_constraint,
        )
        for name, factory in factories.items():
            results = run_episodes(
                oracles,
                factory,
                sim_config,
                episodes=config.episodes,
                tasks_per_episode=config.tasks_per_episode,
                seed=config.seed,
            )
            accuracies = np.array([r.accuracy for r in results])
            stages = np.concatenate([r.stages_executed for r in results])
            fairness = np.array(
                [r.final_confidences(default=0.0).std() for r in results]
            )
            curve = curves[name]
            curve.concurrency.append(concurrency)
            curve.mean_accuracy.append(float(accuracies.mean()))
            curve.std_accuracy.append(float(accuracies.std()))
            curve.fairness_std.append(float(fairness.mean()))
            curve.mean_stages.append(float(stages.mean()))
    return curves


def format_fig4(curves: Dict[str, PolicyCurve]) -> str:
    levels = next(iter(curves.values())).concurrency
    header = f"{'policy':18}" + "".join(f"{f'N={n}':>14}" for n in levels)
    lines = ["Fig 4a/4b — mean service accuracy (%)", header, "-" * len(header)]
    for name, curve in curves.items():
        lines.append(
            f"{name:18}"
            + "".join(f"{100 * a:>14.1f}" for a in curve.mean_accuracy)
        )
    lines.append("")
    lines.append("Fig 4c — per-task served-confidence std (%), lower = fairer")
    lines.append(header)
    lines.append("-" * len(header))
    for name, curve in curves.items():
        lines.append(
            f"{name:18}"
            + "".join(f"{100 * s:>14.1f}" for s in curve.fairness_std)
        )
    lines.append("")
    lines.append("episode-to-episode accuracy std (%)")
    lines.append(header)
    lines.append("-" * len(header))
    for name, curve in curves.items():
        lines.append(
            f"{name:18}"
            + "".join(f"{100 * s:>14.1f}" for s in curve.std_accuracy)
        )
    return "\n".join(lines)
