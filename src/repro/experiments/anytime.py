"""Gen-2 anytime-serving benchmark: the `make anytime` gate.

Compares the gen-2 imprecise-computation scheduler (joint stage budgets +
optional-stage preemption + the anytime contract, :mod:`repro.scheduler.gen2`)
against the **current** generation-1 policies exactly as they serve today —
EDF and the RTDeepIoT-1 utility greedy, where a task that misses its deadline
is evicted and delivers nothing.  Identical Poisson workloads at 2-3x the
pool's capacity; the gate (:func:`check_anytime`) demands, at every overload
point:

- gen-2 accrues strictly more utility than both gen-1 policies;
- gen-2 serves **zero** responses after their deadline (the anytime
  contract: best-so-far *at* the deadline, never late);
- every gen-2 response carries at least the mandatory prefix
  (``served_stage`` >= 1 executed stage).

The mechanism, not a tuning artifact: under overload the gen-1 policies hold
admission slots until the eviction daemon fires and then deliver nothing for
the worker time already spent, while gen-2 caps refinement under contention,
turns slots over at worker speed, and converts every executed mandatory
prefix into a served (possibly degraded) response.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from ..scheduler.arrivals import poisson_arrivals
from ..scheduler.confidence import GPConfidencePredictor
from ..scheduler.gen2 import Gen2Policy
from ..scheduler.policies import EDFPolicy, RTDeepIoTPolicy
from ..scheduler.simulator import PoolSimulator, SimulationConfig
from .common import BenchmarkArtifacts, get_benchmark_artifacts
from .openloop import synthetic_overload_inputs


@dataclass
class AnytimeConfig:
    """Workload shape for the anytime gate (mirrors the overload sweep)."""

    num_tasks: int = 120
    num_workers: int = 2
    #: admission-slot bound — how many tasks may hold a TaskRecord at once.
    concurrency: int = 8
    latency_constraint: float = 6.0
    #: offered load as a multiple of capacity; the gate applies to every
    #: point at or past 2x.
    load_factors: Sequence[float] = (2.0, 3.0)
    seed: int = 0


def _policy_setups(
    predictor: GPConfidencePredictor, config: AnytimeConfig
) -> Dict[str, Tuple[Callable, bool]]:
    """name -> (policy factory, anytime contract on?).

    The gen-1 baselines run under their existing contract (deadline miss =
    eviction, nothing served); gen-2 is the whole system under test —
    planner, preemption *and* the anytime contract together.
    """
    return {
        "EDF": (EDFPolicy, False),
        "utility": (lambda: RTDeepIoTPolicy(predictor, k=1), False),
        "gen2": (
            lambda: Gen2Policy(
                predictor=predictor,
                num_workers=config.num_workers,
                stage_time_s=1.0,
            ),
            True,
        ),
    }


def run_anytime(
    artifacts: BenchmarkArtifacts = None,
    config: AnytimeConfig = None,
    synthetic: bool = False,
) -> Dict[str, List[Dict[str, float]]]:
    """Returns, per setup, one row of serving metrics per load factor."""
    config = config or AnytimeConfig()
    if synthetic:
        oracles, predictor = synthetic_overload_inputs(
            config.num_tasks, seed=config.seed
        )
    else:
        from ..scheduler.simulator import TaskOracle

        artifacts = artifacts or get_benchmark_artifacts()
        oracles = TaskOracle.table_from_outputs(artifacts.test_outputs)[
            : config.num_tasks
        ]
        predictor = GPConfidencePredictor(
            num_classes=artifacts.model.config.num_classes, seed=0
        ).fit(artifacts.train_outputs["confidences"])
    num_stages = oracles[0].num_stages
    capacity = config.num_workers / float(num_stages)  # tasks/s, unit stages

    setups = _policy_setups(predictor, config)
    results: Dict[str, List[Dict[str, float]]] = {name: [] for name in setups}
    for load in config.load_factors:
        arrivals = poisson_arrivals(
            config.num_tasks, rate=load * capacity, seed=config.seed
        )
        for name, (factory, anytime) in setups.items():
            sim_config = SimulationConfig(
                num_workers=config.num_workers,
                concurrency=config.concurrency,
                stage_times=tuple(1.0 for _ in range(num_stages)),
                latency_constraint=config.latency_constraint,
                anytime=anytime,
            )
            episode = PoolSimulator(
                oracles, factory(), sim_config, arrival_times=arrivals
            ).run()
            served = [
                r
                for r in episode.records
                if r.outcomes and not r.evicted and not r.shed
            ]
            min_stage = min((r.stages_done for r in served), default=0)
            results[name].append(
                {
                    "load_factor": load,
                    "utility": episode.accrued_utility,
                    "num_served": float(episode.num_served),
                    "num_late": float(episode.num_late),
                    "num_anytime": float(episode.num_anytime_served),
                    "num_evicted": float(episode.num_evicted),
                    "mean_served_stage": episode.mean_served_stage,
                    "min_served_stages": float(min_stage),
                    "p99_latency": episode.served_latency_percentile(99),
                }
            )
    return results


def format_anytime(results: Dict[str, List[Dict[str, float]]]) -> str:
    header = (
        f"{'setup':10} {'load':>6} {'utility':>8} {'served':>7} {'late':>5} "
        f"{'anytime':>8} {'evicted':>8} {'mstage':>7} {'p99':>7}"
    )
    lines = [header, "-" * len(header)]
    for name, rows in results.items():
        for row in rows:
            p99 = row["p99_latency"]
            lines.append(
                f"{name:10} {row['load_factor']:>6.1f} {row['utility']:>8.2f} "
                f"{row['num_served']:>7.0f} {row['num_late']:>5.0f} "
                f"{row['num_anytime']:>8.0f} {row['num_evicted']:>8.0f} "
                f"{row['mean_served_stage']:>7.2f} "
                f"{p99 if np.isfinite(p99) else float('nan'):>7.2f}"
            )
    return "\n".join(lines)


def check_anytime(
    results: Dict[str, List[Dict[str, float]]]
) -> List[str]:
    """The `make anytime` acceptance gate; returns human-readable failures."""
    failures: List[str] = []
    by_load = {
        name: {row["load_factor"]: row for row in rows}
        for name, rows in results.items()
    }
    for load, gen2 in by_load["gen2"].items():
        if load < 2.0:
            continue
        for baseline in ("EDF", "utility"):
            other = by_load[baseline][load]
            if not gen2["utility"] > other["utility"]:
                failures.append(
                    f"gen2 utility {gen2['utility']:.2f} does not beat "
                    f"{baseline} {other['utility']:.2f} at load {load:g}"
                )
        if gen2["num_late"] != 0:
            failures.append(
                f"{gen2['num_late']:.0f} late responses at load {load:g} "
                "(anytime contract violated)"
            )
        if gen2["num_served"] and gen2["min_served_stages"] < 1:
            failures.append(
                f"a response with no executed mandatory prefix at load {load:g}"
            )
    return failures
