"""Extension experiment: open-loop serving under Poisson and bursty arrivals.

The paper evaluates at fixed concurrency (closed loop).  A deployed Eugene
server faces open-loop traffic, so we sweep the offered arrival rate and
measure service accuracy and eviction rates per policy, for both smooth
(Poisson) and bursty (Markov-modulated) arrivals.  Expected shapes:

- accuracy falls as offered load approaches/exceeds capacity;
- the utility scheduler degrades more gracefully than FIFO;
- at equal average rate, bursty traffic hurts more than smooth traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..admission import AdmissionConfig
from ..scheduler.arrivals import bursty_arrivals, poisson_arrivals
from ..scheduler.confidence import GPConfidencePredictor
from ..scheduler.policies import FIFOPolicy, RoundRobinPolicy, RTDeepIoTPolicy
from ..scheduler.simulator import PoolSimulator, SimulationConfig, TaskOracle
from .common import BenchmarkArtifacts, get_benchmark_artifacts


@dataclass
class OpenLoopConfig:
    num_workers: int = 2
    latency_constraint: float = 6.0
    num_tasks: int = 150
    #: offered load as a multiple of capacity (workers / 3 stage-times).
    load_factors: Sequence[float] = (0.5, 0.9, 1.3)
    seed: int = 0


def run_openloop(
    artifacts: BenchmarkArtifacts = None, config: OpenLoopConfig = None
) -> Dict[str, List[Dict[str, float]]]:
    """Returns, per policy, one row per (traffic kind, load factor)."""
    artifacts = artifacts or get_benchmark_artifacts()
    config = config or OpenLoopConfig()
    oracles = TaskOracle.table_from_outputs(artifacts.test_outputs)[: config.num_tasks]
    predictor = GPConfidencePredictor(
        num_classes=artifacts.model.config.num_classes, seed=0
    ).fit(artifacts.train_outputs["confidences"])
    capacity = config.num_workers / 3.0  # tasks/second at 3 unit stages each

    policies: Dict[str, Callable] = {
        "RTDeepIoT-1": lambda: RTDeepIoTPolicy(predictor, k=1),
        "RR": RoundRobinPolicy,
        "FIFO": FIFOPolicy,
    }
    sim_config = SimulationConfig(
        num_workers=config.num_workers,
        concurrency=10_000,  # open loop: no admission cap
        stage_times=(1.0, 1.0, 1.0),
        latency_constraint=config.latency_constraint,
    )

    results: Dict[str, List[Dict[str, float]]] = {name: [] for name in policies}
    for kind in ("poisson", "bursty"):
        for load in config.load_factors:
            rate = load * capacity
            if kind == "poisson":
                arrivals = poisson_arrivals(config.num_tasks, rate=rate,
                                            seed=config.seed)
            else:
                arrivals = bursty_arrivals(
                    config.num_tasks,
                    quiet_rate=rate / 3.0,
                    burst_rate=rate * 3.0,
                    seed=config.seed,
                )
            for name, factory in policies.items():
                sim = PoolSimulator(oracles, factory(), sim_config,
                                    arrival_times=arrivals)
                episode = sim.run()
                results[name].append(
                    {
                        "traffic": kind,
                        "load_factor": load,
                        "accuracy": episode.accuracy,
                        "eviction_rate": episode.num_evicted / episode.num_tasks,
                        "mean_stages": float(episode.stages_executed.mean()),
                    }
                )
    return results


@dataclass
class OverloadConfig:
    """Parameters of the admission-control overload sweep."""

    num_workers: int = 2
    concurrency: int = 4
    latency_constraint: float = 6.0
    num_tasks: int = 150
    #: offered load as a multiple of capacity; deliberately extends well
    #: past 1.0 — graceful degradation under overload is the point.
    load_factors: Sequence[float] = (0.5, 1.0, 2.0, 3.0)
    #: admission bounds applied by the managed setup.
    max_queue_depth: int = 8
    degrade_queue_depth: int = 4
    degrade_stage_cap: int = 1
    seed: int = 0


def synthetic_overload_inputs(
    num_tasks: int, num_stages: int = 3, seed: int = 0
) -> Tuple[List[TaskOracle], GPConfidencePredictor]:
    """Oracles + fitted predictor without trained artifacts.

    The CI smoke path: overload dynamics depend on arrival statistics and
    the shape of the confidence curves, not on a particular trained model,
    so synthetic monotone curves (confidence rising with stage, correctness
    sampled at the stated confidence) exercise the full admission pipeline
    in seconds.
    """
    rng = np.random.default_rng(seed)
    final = rng.uniform(0.45, 0.98, size=num_tasks)
    confs = np.empty((num_stages, num_tasks))
    for s in range(num_stages):
        frac = (s + 1) / num_stages
        confs[s] = np.clip(
            final * (0.45 + 0.55 * frac) + rng.normal(0.0, 0.02, num_tasks),
            0.05,
            0.995,
        )
    oracles = [
        TaskOracle(
            confidences=tuple(confs[:, i]),
            predictions=tuple(1 for _ in range(num_stages)),
            correct=tuple(
                bool(rng.random() < confs[s, i]) for s in range(num_stages)
            ),
        )
        for i in range(num_tasks)
    ]
    predictor = GPConfidencePredictor(
        num_classes=10, max_fit_points=120, seed=seed
    ).fit(confs)
    return oracles, predictor


def run_overload(
    artifacts: BenchmarkArtifacts = None,
    config: OverloadConfig = None,
    synthetic: bool = False,
) -> Dict[str, List[Dict[str, float]]]:
    """Sweep offered load past capacity, with and without admission control.

    Two setups over identical Poisson workloads:

    - ``fifo-baseline`` — FIFO scheduling, no admission control: the
      ingress queue grows without bound and queued tasks expire unserved;
    - ``admission`` — the utility scheduler plus :class:`AdmissionConfig`
      bounds: the queue is capped, the lowest-expected-utility tasks are
      shed at ingress, and tasks admitted into a congested system are
      capped at an early exit (degrade-before-drop).

    Rows report goodput, p99 latency of served tasks, shed/eviction
    fractions, accrued utility, and the peak ingress-queue depth — the
    acceptance metrics of docs/OVERLOAD.md.
    """
    config = config or OverloadConfig()
    if synthetic:
        oracles, predictor = synthetic_overload_inputs(
            config.num_tasks, seed=config.seed
        )
    else:
        artifacts = artifacts or get_benchmark_artifacts()
        oracles = TaskOracle.table_from_outputs(artifacts.test_outputs)[
            : config.num_tasks
        ]
        predictor = GPConfidencePredictor(
            num_classes=artifacts.model.config.num_classes, seed=0
        ).fit(artifacts.train_outputs["confidences"])
    num_stages = oracles[0].num_stages
    capacity = config.num_workers / float(num_stages)  # tasks/s, unit stages

    admission = AdmissionConfig(
        max_queue_depth=config.max_queue_depth,
        degrade_queue_depth=config.degrade_queue_depth,
        degrade_stage_cap=config.degrade_stage_cap,
    )
    setups: Dict[str, Tuple[Callable, Optional[AdmissionConfig]]] = {
        "fifo-baseline": (FIFOPolicy, None),
        "admission": (lambda: RTDeepIoTPolicy(predictor, k=1), admission),
    }

    results: Dict[str, List[Dict[str, float]]] = {name: [] for name in setups}
    for load in config.load_factors:
        arrivals = poisson_arrivals(
            config.num_tasks, rate=load * capacity, seed=config.seed
        )
        for name, (factory, adm) in setups.items():
            sim_config = SimulationConfig(
                num_workers=config.num_workers,
                concurrency=config.concurrency,
                stage_times=tuple(1.0 for _ in range(num_stages)),
                latency_constraint=config.latency_constraint,
                admission=adm,
            )
            episode = PoolSimulator(
                oracles, factory(), sim_config, arrival_times=arrivals
            ).run()
            results[name].append(
                {
                    "load_factor": load,
                    "goodput": episode.goodput,
                    "p99_latency": episode.served_latency_percentile(99),
                    "shed_fraction": episode.shed_fraction,
                    "eviction_rate": episode.num_evicted / episode.num_tasks,
                    "utility": episode.accrued_utility,
                    "peak_queue_depth": float(episode.peak_queue_depth),
                    "num_served": float(episode.num_served),
                    "num_degraded": float(episode.num_degraded),
                }
            )
    return results


def format_overload(results: Dict[str, List[Dict[str, float]]]) -> str:
    header = (
        f"{'setup':16} {'load':>6} {'goodput':>8} {'p99':>7} {'shed':>6} "
        f"{'evicted':>8} {'utility':>8} {'peakq':>6} {'served':>7} {'degr':>5}"
    )
    lines = [header, "-" * len(header)]
    for name, rows in results.items():
        for r in rows:
            p99 = r["p99_latency"]
            lines.append(
                f"{name:16} {r['load_factor']:>6.2f} {r['goodput']:>8.3f} "
                f"{p99:>7.2f} {100 * r['shed_fraction']:>5.1f}% "
                f"{100 * r['eviction_rate']:>7.1f}% {r['utility']:>8.2f} "
                f"{r['peak_queue_depth']:>6.0f} {r['num_served']:>7.0f} "
                f"{r['num_degraded']:>5.0f}"
            )
    return "\n".join(lines)


def format_openloop(results: Dict[str, List[Dict[str, float]]]) -> str:
    rows = next(iter(results.values()))
    header = f"{'policy':14} {'traffic':>8} {'load':>6} {'accuracy':>9} {'evicted':>8} {'stages':>7}"
    lines = [header, "-" * len(header)]
    for name, policy_rows in results.items():
        for r in policy_rows:
            lines.append(
                f"{name:14} {r['traffic']:>8} {r['load_factor']:>6.2f} "
                f"{100 * r['accuracy']:>8.1f}% {100 * r['eviction_rate']:>7.1f}% "
                f"{r['mean_stages']:>7.2f}"
            )
    return "\n".join(lines)
