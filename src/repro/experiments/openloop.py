"""Extension experiment: open-loop serving under Poisson and bursty arrivals.

The paper evaluates at fixed concurrency (closed loop).  A deployed Eugene
server faces open-loop traffic, so we sweep the offered arrival rate and
measure service accuracy and eviction rates per policy, for both smooth
(Poisson) and bursty (Markov-modulated) arrivals.  Expected shapes:

- accuracy falls as offered load approaches/exceeds capacity;
- the utility scheduler degrades more gracefully than FIFO;
- at equal average rate, bursty traffic hurts more than smooth traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

import numpy as np

from ..scheduler.arrivals import bursty_arrivals, poisson_arrivals
from ..scheduler.confidence import GPConfidencePredictor
from ..scheduler.policies import FIFOPolicy, RoundRobinPolicy, RTDeepIoTPolicy
from ..scheduler.simulator import PoolSimulator, SimulationConfig, TaskOracle
from .common import BenchmarkArtifacts, get_benchmark_artifacts


@dataclass
class OpenLoopConfig:
    num_workers: int = 2
    latency_constraint: float = 6.0
    num_tasks: int = 150
    #: offered load as a multiple of capacity (workers / 3 stage-times).
    load_factors: Sequence[float] = (0.5, 0.9, 1.3)
    seed: int = 0


def run_openloop(
    artifacts: BenchmarkArtifacts = None, config: OpenLoopConfig = None
) -> Dict[str, List[Dict[str, float]]]:
    """Returns, per policy, one row per (traffic kind, load factor)."""
    artifacts = artifacts or get_benchmark_artifacts()
    config = config or OpenLoopConfig()
    oracles = TaskOracle.table_from_outputs(artifacts.test_outputs)[: config.num_tasks]
    predictor = GPConfidencePredictor(
        num_classes=artifacts.model.config.num_classes, seed=0
    ).fit(artifacts.train_outputs["confidences"])
    capacity = config.num_workers / 3.0  # tasks/second at 3 unit stages each

    policies: Dict[str, Callable] = {
        "RTDeepIoT-1": lambda: RTDeepIoTPolicy(predictor, k=1),
        "RR": RoundRobinPolicy,
        "FIFO": FIFOPolicy,
    }
    sim_config = SimulationConfig(
        num_workers=config.num_workers,
        concurrency=10_000,  # open loop: no admission cap
        stage_times=(1.0, 1.0, 1.0),
        latency_constraint=config.latency_constraint,
    )

    results: Dict[str, List[Dict[str, float]]] = {name: [] for name in policies}
    for kind in ("poisson", "bursty"):
        for load in config.load_factors:
            rate = load * capacity
            if kind == "poisson":
                arrivals = poisson_arrivals(config.num_tasks, rate=rate,
                                            seed=config.seed)
            else:
                arrivals = bursty_arrivals(
                    config.num_tasks,
                    quiet_rate=rate / 3.0,
                    burst_rate=rate * 3.0,
                    seed=config.seed,
                )
            for name, factory in policies.items():
                sim = PoolSimulator(oracles, factory(), sim_config,
                                    arrival_times=arrivals)
                episode = sim.run()
                results[name].append(
                    {
                        "traffic": kind,
                        "load_factor": load,
                        "accuracy": episode.accuracy,
                        "eviction_rate": episode.num_evicted / episode.num_tasks,
                        "mean_stages": float(episode.stages_executed.mean()),
                    }
                )
    return results


def format_openloop(results: Dict[str, List[Dict[str, float]]]) -> str:
    rows = next(iter(results.values()))
    header = f"{'policy':14} {'traffic':>8} {'load':>6} {'accuracy':>9} {'evicted':>8} {'stages':>7}"
    lines = [header, "-" * len(header)]
    for name, policy_rows in results.items():
        for r in policy_rows:
            lines.append(
                f"{name:14} {r['traffic']:>8} {r['load_factor']:>6.2f} "
                f"{100 * r['accuracy']:>8.1f}% {100 * r['eviction_rate']:>7.1f}% "
                f"{r['mean_stages']:>7.2f}"
            )
    return "\n".join(lines)
