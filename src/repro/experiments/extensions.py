"""Extension experiments: the paper's future-work items, quantified.

- :func:`run_service_classes` — Sec. V: class-aware scheduling vs the
  class-blind scheduler on a mixed interactive/batch workload, with the
  pricing model's per-class revenue;
- :func:`run_partitioning` — Sec. IV-A: client/server partitioning of the
  benchmark staged model across a bandwidth sweep, with early exits from
  the model's real confidence curves.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..collaborative.partitioning import (
    LinkSpec,
    PartitionPlanner,
    exit_probabilities,
)
from ..profiling.cost_model import MobileDeviceCostModel
from ..profiling.stage_costs import stage_execution_times
from ..scheduler.confidence import GPConfidencePredictor
from ..scheduler.policies import RTDeepIoTPolicy
from ..scheduler.service_classes import (
    BATCH,
    INTERACTIVE,
    ClassAwareRTDeepIoTPolicy,
    PricingModel,
    assign_classes,
)
from ..scheduler.simulator import PoolSimulator, SimulationConfig, TaskOracle
from .common import BenchmarkArtifacts, get_benchmark_artifacts


def run_service_classes(
    artifacts: BenchmarkArtifacts = None,
    num_tasks: int = 120,
    interactive_fraction: float = 0.5,
    seed: int = 0,
) -> Dict[str, Dict]:
    """Compare class-aware vs class-blind scheduling on a mixed workload."""
    artifacts = artifacts or get_benchmark_artifacts()
    oracles = TaskOracle.table_from_outputs(artifacts.test_outputs)[:num_tasks]
    predictor = GPConfidencePredictor(
        num_classes=artifacts.model.config.num_classes, seed=0
    ).fit(artifacts.train_outputs["confidences"])
    class_list = assign_classes(
        len(oracles), [INTERACTIVE, BATCH],
        [interactive_fraction, 1 - interactive_fraction], seed=seed,
    )
    class_map = {i: c for i, c in enumerate(class_list)}
    constraints = [c.latency_constraint for c in class_list]
    config = SimulationConfig(
        num_workers=2, concurrency=14, stage_times=(1.0, 1.0, 1.0),
        latency_constraint=BATCH.latency_constraint,
    )
    pricing = PricingModel(class_map)

    def evaluate(policy) -> Dict:
        sim = PoolSimulator(oracles, policy, config,
                            task_latency_constraints=constraints)
        result = sim.run()
        interactive_served = sum(
            1 for r in result.records
            if class_map[r.task_id] is INTERACTIVE and r.stages_done > 0
        )
        interactive_total = sum(1 for c in class_list if c is INTERACTIVE)
        bills = pricing.bill(result.records)
        return {
            "accuracy": result.accuracy,
            "interactive_service_rate": interactive_served / max(interactive_total, 1),
            "revenue": sum(b.revenue for b in bills.values()),
            "bills": {name: vars(b) for name, b in bills.items()},
        }

    return {
        "class-aware": evaluate(
            ClassAwareRTDeepIoTPolicy(predictor, class_map, k=1, urgency=2.0)
        ),
        "class-blind": evaluate(RTDeepIoTPolicy(predictor, k=1)),
    }


def run_partitioning(
    artifacts: BenchmarkArtifacts = None,
    bandwidths_kbps: tuple = (50.0, 500.0, 5000.0, 50000.0),
    confidence_threshold: float = 0.85,
    client_slowdown: float = 8.0,
) -> List[Dict[str, float]]:
    """Optimal cut point of the benchmark staged model vs uplink bandwidth.

    The client is ``client_slowdown`` x slower than the server per stage;
    early-exit probabilities come from the calibrated model's test-set
    confidence curves.
    """
    artifacts = artifacts or get_benchmark_artifacts()
    device = MobileDeviceCostModel()
    server_costs = [t / 1000.0 for t in stage_execution_times(artifacts.model, device)]
    client_costs = [t * client_slowdown for t in server_costs]
    # Feature-map bytes at each stage boundary (float32), from the model
    # config: channels x spatial^2 after each stage's downsampling.
    cfg = artifacts.model.config
    size = cfg.image_size
    boundary_bytes = []
    for stage_idx, channels in enumerate(cfg.stage_channels):
        if stage_idx > 0:
            size //= 2
        boundary_bytes.append(4.0 * channels * size * size)
    input_bytes = 4.0 * cfg.in_channels * cfg.image_size**2

    exits = exit_probabilities(
        artifacts.test_outputs["confidences"], confidence_threshold
    )
    rows = []
    for kbps in bandwidths_kbps:
        link = LinkSpec(bandwidth_bytes_per_s=kbps * 125.0, rtt_s=0.02)
        planner = PartitionPlanner(
            client_stage_costs_s=client_costs,
            server_stage_costs_s=server_costs,
            boundary_feature_bytes=boundary_bytes,
            input_bytes=input_bytes,
            link=link,
            exit_probs=exits,
        )
        plan = planner.plan()
        rows.append(
            {
                "bandwidth_kbps": kbps,
                "cut": plan.cut,
                "expected_latency_ms": plan.expected_latency_s * 1000.0,
                "offload_probability": plan.offload_probability,
            }
        )
    return rows
