"""E6 — Table IV: individual vs collaborative deep IoT inferencing."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..collaborative import (
    CollaborativePipeline,
    SSDDetector,
    World,
    WorldConfig,
    ring_of_cameras,
)


@dataclass
class Table4Config:
    num_cameras: int = 8  # the PETS2009 camera count
    num_people: int = 12
    num_occluders: int = 6
    num_frames: int = 120
    world_seed: int = 2
    detector_seed: int = 0


def run_table4(config: Table4Config = None) -> Dict[str, Dict[str, float]]:
    """Returns {"Individual": {...}, "Collaborative": {...}} rows."""
    config = config or Table4Config()
    world = World(
        WorldConfig(
            num_people=config.num_people,
            num_occluders=config.num_occluders,
            seed=config.world_seed,
        )
    )
    cameras = ring_of_cameras(config.num_cameras, world)

    individual = CollaborativePipeline(world, cameras, SSDDetector(seed=config.detector_seed))
    ind_eval = individual.evaluate(individual.run_individual(config.num_frames))

    collaborative = CollaborativePipeline(world, cameras, SSDDetector(seed=config.detector_seed))
    col_eval = collaborative.evaluate(collaborative.run_collaborative(config.num_frames))

    return {
        "Individual": {
            "detection_accuracy": ind_eval.detection_accuracy,
            "recognition_latency_ms": ind_eval.mean_latency_ms,
            "precision": ind_eval.precision,
            "recall": ind_eval.recall,
        },
        "Collaborative": {
            "detection_accuracy": col_eval.detection_accuracy,
            "recognition_latency_ms": col_eval.mean_latency_ms,
            "precision": col_eval.precision,
            "recall": col_eval.recall,
        },
    }


PAPER_TABLE4 = {
    "Individual": {"detection_accuracy": 0.68, "recognition_latency_ms": 550.0},
    "Collaborative": {"detection_accuracy": 0.755, "recognition_latency_ms": 25.0},
}


def format_table4(rows: Dict[str, Dict[str, float]]) -> str:
    header = (
        f"{'Approach':15} {'Detection Acc':>14} {'Latency (ms)':>13} "
        f"{'paper acc':>10} {'paper ms':>9}"
    )
    lines = [header, "-" * len(header)]
    for name, row in rows.items():
        paper = PAPER_TABLE4[name]
        lines.append(
            f"{name:15} {100 * row['detection_accuracy']:>13.1f}% "
            f"{row['recognition_latency_ms']:>13.1f} "
            f"{100 * paper['detection_accuracy']:>9.1f}% "
            f"{paper['recognition_latency_ms']:>9.1f}"
        )
    return "\n".join(lines)
