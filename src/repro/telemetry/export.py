"""Text and JSON export of a telemetry session.

``render_text`` is what the ``repro metrics`` CLI prints; ``to_dict`` /
``to_json`` give the machine-readable equivalent for tests and tooling.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from . import Telemetry


def to_dict(telemetry: "Telemetry", trace_events: bool = False) -> Dict[str, object]:
    """Nested-dict snapshot: metrics, trace tallies, optionally raw events."""
    out: Dict[str, object] = dict(telemetry.registry.snapshot())
    out["trace"] = {
        "counts": telemetry.trace.counts(),
        "dropped": telemetry.trace.dropped,
    }
    if trace_events:
        out["trace"]["events"] = [e.to_dict() for e in telemetry.trace.events()]
    return out


def to_json(telemetry: "Telemetry", trace_events: bool = False, indent: int = 2) -> str:
    return json.dumps(to_dict(telemetry, trace_events=trace_events), indent=indent)


def render_text(telemetry: "Telemetry") -> str:
    """Human-readable report: counters, gauges, histogram quantile tables."""
    snapshot = to_dict(telemetry)
    lines = []

    counters: Dict[str, float] = snapshot["counters"]
    lines.append("counters")
    if counters:
        width = max(len(name) for name in counters)
        for name, value in counters.items():
            formatted = f"{value:g}" if value != int(value) else f"{int(value)}"
            lines.append(f"  {name:<{width}}  {formatted}")
    else:
        lines.append("  (none)")

    gauges: Dict[str, float] = snapshot["gauges"]
    if gauges:
        lines.append("")
        lines.append("gauges")
        width = max(len(name) for name in gauges)
        for name, value in gauges.items():
            lines.append(f"  {name:<{width}}  {value:g}")

    histograms: Dict[str, Dict[str, float]] = snapshot["histograms"]
    lines.append("")
    lines.append("histograms")
    if histograms:
        width = max(len(name) for name in histograms)
        header = (
            f"  {'name':<{width}}  {'count':>7} {'mean':>9} {'p50':>9} "
            f"{'p95':>9} {'p99':>9} {'max':>9}"
        )
        lines.append(header)
        for name, s in histograms.items():
            lines.append(
                f"  {name:<{width}}  {int(s['count']):>7} {s['mean']:>9.3f} "
                f"{s['p50']:>9.3f} {s['p95']:>9.3f} {s['p99']:>9.3f} "
                f"{s['max']:>9.3f}"
            )
    else:
        lines.append("  (none)")

    trace = snapshot["trace"]
    lines.append("")
    lines.append("trace events")
    if trace["counts"]:
        width = max(len(kind) for kind in trace["counts"])
        for kind, n in trace["counts"].items():
            lines.append(f"  {kind:<{width}}  {n}")
    else:
        lines.append("  (none)")
    if trace["dropped"]:
        lines.append(f"  ({trace['dropped']} events dropped from bounded window)")
    return "\n".join(lines)
