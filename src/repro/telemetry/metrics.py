"""Metric instruments: counters, gauges and streaming histograms.

The serving paths of this repo are measured by three instrument kinds,
mirroring what production inference services (IBM DLaaS, DeepServe — see
PAPERS.md) expose per request:

- :class:`Counter` — monotone accumulator (requests served, deadline
  misses, utility accrued).  Float increments are allowed so confidence
  utility can accrue directly.
- :class:`Gauge` — last-written value (current queue depth).
- :class:`Histogram` — streaming quantile sketch over log-spaced buckets:
  p50/p95/p99 (any quantile, in fact) without storing samples, with
  relative error bounded by the bucket growth factor (~5% by default).

Everything is dependency-free and thread-safe: worker threads in
:class:`~repro.scheduler.runtime.StagedInferenceRuntime` observe stage
latencies concurrently with the scheduler thread updating queue gauges.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Tuple


class Counter:
    """Monotonically increasing accumulator (float-valued)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge instead")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """Last-written value (may move in either direction)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Streaming quantile estimator over geometric buckets.

    Values are binned into buckets ``[lo * g^i, lo * g^(i+1))``; a quantile
    is answered by walking the cumulative bucket counts and interpolating
    linearly inside the target bucket, then clamping to the exact observed
    ``[min, max]``.  Memory is O(occupied buckets), never O(samples), and
    the relative error of any quantile is at most ``growth - 1``.

    Values at or below zero land in a dedicated underflow bucket (latency
    instruments never produce them, but the sketch must not crash on a
    zero-duration timer tick).
    """

    __slots__ = (
        "name", "_lo", "_log_growth", "_growth", "_buckets", "_underflow",
        "_count", "_sum", "_min", "_max", "_lock",
    )

    def __init__(self, name: str, lo: float = 1e-6, growth: float = 1.05) -> None:
        if lo <= 0:
            raise ValueError("lo must be positive")
        if growth <= 1.0:
            raise ValueError("growth must be > 1")
        self.name = name
        self._lo = lo
        self._growth = growth
        self._log_growth = math.log(growth)
        self._buckets: Dict[int, int] = {}
        self._underflow = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if value <= self._lo:
                self._underflow += 1
                return
            index = int(math.log(value / self._lo) / self._log_growth)
            self._buckets[index] = self._buckets.get(index, 0) + 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        """Mean of all observations; ``nan`` before the first one."""
        with self._lock:
            return self._sum / self._count if self._count else math.nan

    @property
    def min(self) -> float:
        """Smallest observation; ``nan`` before the first one."""
        with self._lock:
            return self._min if self._count else math.nan

    @property
    def max(self) -> float:
        """Largest observation; ``nan`` before the first one."""
        with self._lock:
            return self._max if self._count else math.nan

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile of everything observed so far.

        An empty histogram has no quantiles: the documented sentinel is
        ``nan`` (never a fabricated 0.0, which reads as a real latency).
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            if self._count == 0:
                return math.nan
            rank = q * self._count
            cumulative = float(self._underflow)
            if cumulative >= rank and self._underflow:
                return min(self._lo, self._max)
            for index in sorted(self._buckets):
                n = self._buckets[index]
                if cumulative + n >= rank:
                    lower = self._lo * self._growth ** index
                    upper = lower * self._growth
                    fraction = (rank - cumulative) / n
                    estimate = lower + fraction * (upper - lower)
                    return max(self._min, min(self._max, estimate))
                cumulative += n
            return self._max

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other``'s observations into this histogram, in place.

        The multi-replica aggregation primitive: each replica keeps its own
        sketch and the cluster view is the merge.  Bucket semantics are
        preserved exactly — merged counts are the per-bucket sums, so any
        quantile of the merge carries the same bounded relative error as a
        single sketch would have over the union of observations.  Both
        sketches must share ``lo`` and ``growth`` (the bucket boundaries),
        otherwise counts cannot be combined without re-binning.
        """
        if not isinstance(other, Histogram):
            raise TypeError("can only merge another Histogram")
        if other._lo != self._lo or other._growth != self._growth:
            raise ValueError(
                "histograms with different bucket layouts cannot be merged "
                f"(lo {self._lo:g}/{other._lo:g}, "
                f"growth {self._growth:g}/{other._growth:g})"
            )
        # Snapshot under the source lock first, then apply under ours —
        # never hold both locks at once, so concurrent a.merge(b) /
        # b.merge(a) cannot deadlock.
        with other._lock:
            buckets = dict(other._buckets)
            underflow = other._underflow
            count = other._count
            total = other._sum
            lo_val, hi_val = other._min, other._max
        with self._lock:
            for index, n in buckets.items():
                self._buckets[index] = self._buckets.get(index, 0) + n
            self._underflow += underflow
            self._count += count
            self._sum += total
            if lo_val < self._min:
                self._min = lo_val
            if hi_val > self._max:
                self._max = hi_val
        return self

    def percentiles(self, ps: Tuple[float, ...] = (50.0, 95.0, 99.0)) -> Dict[str, float]:
        return {f"p{p:g}": self.quantile(p / 100.0) for p in ps}

    def summary(self) -> Dict[str, float]:
        """count/sum/mean/min/max plus the standard latency quantiles.

        On an empty histogram every statistic except ``count``/``sum`` is
        the ``nan`` sentinel (see :meth:`quantile`).
        """
        out: Dict[str, float] = {
            "count": float(self.count),
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }
        out.update(self.percentiles())
        return out


class MetricsRegistry:
    """Thread-safe get-or-create home of every named instrument."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name)
            return instrument

    def histogram(self, name: str, lo: float = 1e-6, growth: float = 1.05) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(name, lo=lo, growth=growth)
            return instrument

    # -- read side -----------------------------------------------------
    def counters(self) -> Dict[str, float]:
        with self._lock:
            items = list(self._counters.items())
        return {name: c.value for name, c in sorted(items)}

    def gauges(self) -> Dict[str, float]:
        with self._lock:
            items = list(self._gauges.items())
        return {name: g.value for name, g in sorted(items)}

    def histograms(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            items = list(self._histograms.items())
        return {name: h.summary() for name, h in sorted(items)}

    def snapshot(self) -> Dict[str, Dict]:
        """One nested dict of everything — the export formats build on this."""
        return {
            "counters": self.counters(),
            "gauges": self.gauges(),
            "histograms": self.histograms(),
        }

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry into this one, in place (cluster view).

        Per-replica registries are aggregated instrument-by-instrument:

        - counters add (total requests across replicas);
        - gauges add — the cluster reading of a per-replica level gauge
          (queue depth, in-flight) is the sum over replicas;
        - histograms :meth:`Histogram.merge` (bucket counts add, so
          cluster-wide p50/p95/p99 stay within the sketch's error bound).

        Instruments present only in ``other`` are created here first, with
        the same name (and, for histograms, the same bucket layout).
        """
        with other._lock:
            counters = list(other._counters.items())
            gauges = list(other._gauges.items())
            histograms = list(other._histograms.items())
        for name, counter in counters:
            self.counter(name).inc(counter.value)
        for name, gauge in gauges:
            self.gauge(name).inc(gauge.value)
        for name, histogram in histograms:
            self.histogram(
                name, lo=histogram._lo, growth=histogram._growth
            ).merge(histogram)
        return self

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
