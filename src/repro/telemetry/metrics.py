"""Metric instruments: counters, gauges and streaming histograms.

The serving paths of this repo are measured by three instrument kinds,
mirroring what production inference services (IBM DLaaS, DeepServe — see
PAPERS.md) expose per request:

- :class:`Counter` — monotone accumulator (requests served, deadline
  misses, utility accrued).  Float increments are allowed so confidence
  utility can accrue directly.
- :class:`Gauge` — last-written value (current queue depth).
- :class:`Histogram` — streaming quantile sketch over log-spaced buckets:
  p50/p95/p99 (any quantile, in fact) without storing samples, with
  relative error bounded by the bucket growth factor (~5% by default).

Everything is dependency-free and thread-safe: worker threads in
:class:`~repro.scheduler.runtime.StagedInferenceRuntime` observe stage
latencies concurrently with the scheduler thread updating queue gauges.

Two cluster-tier guarantees live here too:

- **Read consistency.**  Every instrument a :class:`MetricsRegistry`
  creates shares the registry's single lock, so :meth:`MetricsRegistry.
  snapshot` and :meth:`MetricsRegistry.merge` capture *all* instruments
  at one instant: a writer that increments counter A before counter B
  can never be observed with B ahead of A.  Process-backed replicas ship
  snapshots back asynchronously, which is exactly when a torn multi-
  instrument read would otherwise go unnoticed.
- **Picklability.**  Instruments and registries drop their locks on
  pickle (capturing a consistent state) and grow fresh ones on unpickle,
  so a child process can send its whole registry through a pipe and the
  router can fold it into the cluster view with :meth:`merge`.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Tuple


class Counter:
    """Monotonically increasing accumulator (float-valued)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: Optional[threading.Lock] = None) -> None:
        self.name = name
        self._value = 0.0
        self._lock = lock if lock is not None else threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge instead")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def __getstate__(self):
        with self._lock:
            return {"name": self.name, "value": self._value}

    def __setstate__(self, state) -> None:
        self.name = state["name"]
        self._value = state["value"]
        self._lock = threading.Lock()


class Gauge:
    """Last-written value (may move in either direction)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: Optional[threading.Lock] = None) -> None:
        self.name = name
        self._value = 0.0
        self._lock = lock if lock is not None else threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def __getstate__(self):
        with self._lock:
            return {"name": self.name, "value": self._value}

    def __setstate__(self, state) -> None:
        self.name = state["name"]
        self._value = state["value"]
        self._lock = threading.Lock()


def _quantile_of_state(state: Dict[str, object], q: float) -> float:
    """The quantile walk over a captured histogram state (lock-free)."""
    if not 0.0 <= q <= 1.0:
        raise ValueError("quantile must be in [0, 1]")
    count = state["count"]
    if count == 0:
        return math.nan
    lo = state["lo"]
    growth = state["growth"]
    buckets: Dict[int, int] = state["buckets"]
    rank = q * count
    cumulative = float(state["underflow"])
    if cumulative >= rank and state["underflow"]:
        return min(lo, state["max"])
    for index in sorted(buckets):
        n = buckets[index]
        if cumulative + n >= rank:
            lower = lo * growth ** index
            upper = lower * growth
            fraction = (rank - cumulative) / n
            estimate = lower + fraction * (upper - lower)
            return max(state["min"], min(state["max"], estimate))
        cumulative += n
    return state["max"]


def _summary_of_state(
    state: Dict[str, object], ps: Tuple[float, ...] = (50.0, 95.0, 99.0)
) -> Dict[str, float]:
    count = state["count"]
    out: Dict[str, float] = {
        "count": float(count),
        "sum": state["sum"],
        "mean": state["sum"] / count if count else math.nan,
        "min": state["min"] if count else math.nan,
        "max": state["max"] if count else math.nan,
    }
    for p in ps:
        out[f"p{p:g}"] = _quantile_of_state(state, p / 100.0)
    return out


class Histogram:
    """Streaming quantile estimator over geometric buckets.

    Values are binned into buckets ``[lo * g^i, lo * g^(i+1))``; a quantile
    is answered by walking the cumulative bucket counts and interpolating
    linearly inside the target bucket, then clamping to the exact observed
    ``[min, max]``.  Memory is O(occupied buckets), never O(samples), and
    the relative error of any quantile is at most ``growth - 1``.

    Values at or below zero land in a dedicated underflow bucket (latency
    instruments never produce them, but the sketch must not crash on a
    zero-duration timer tick).
    """

    __slots__ = (
        "name", "_lo", "_log_growth", "_growth", "_buckets", "_underflow",
        "_count", "_sum", "_min", "_max", "_lock",
    )

    def __init__(
        self,
        name: str,
        lo: float = 1e-6,
        growth: float = 1.05,
        lock: Optional[threading.Lock] = None,
    ) -> None:
        if lo <= 0:
            raise ValueError("lo must be positive")
        if growth <= 1.0:
            raise ValueError("growth must be > 1")
        self.name = name
        self._lo = lo
        self._growth = growth
        self._log_growth = math.log(growth)
        self._buckets: Dict[int, int] = {}
        self._underflow = 0
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._lock = lock if lock is not None else threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value
            if value <= self._lo:
                self._underflow += 1
                return
            index = int(math.log(value / self._lo) / self._log_growth)
            self._buckets[index] = self._buckets.get(index, 0) + 1

    def _state_locked(self) -> Dict[str, object]:
        """Raw state capture; the caller must hold ``self._lock``."""
        return {
            "lo": self._lo,
            "growth": self._growth,
            "buckets": dict(self._buckets),
            "underflow": self._underflow,
            "count": self._count,
            "sum": self._sum,
            "min": self._min,
            "max": self._max,
        }

    def _state(self) -> Dict[str, object]:
        with self._lock:
            return self._state_locked()

    def _apply_state(self, state: Dict[str, object]) -> None:
        """Fold a captured state into this sketch (the merge primitive)."""
        if state["lo"] != self._lo or state["growth"] != self._growth:
            raise ValueError(
                "histograms with different bucket layouts cannot be merged "
                f"(lo {self._lo:g}/{state['lo']:g}, "
                f"growth {self._growth:g}/{state['growth']:g})"
            )
        with self._lock:
            for index, n in state["buckets"].items():
                self._buckets[index] = self._buckets.get(index, 0) + n
            self._underflow += state["underflow"]
            self._count += state["count"]
            self._sum += state["sum"]
            if state["min"] < self._min:
                self._min = state["min"]
            if state["max"] > self._max:
                self._max = state["max"]

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        """Mean of all observations; ``nan`` before the first one."""
        with self._lock:
            return self._sum / self._count if self._count else math.nan

    @property
    def min(self) -> float:
        """Smallest observation; ``nan`` before the first one."""
        with self._lock:
            return self._min if self._count else math.nan

    @property
    def max(self) -> float:
        """Largest observation; ``nan`` before the first one."""
        with self._lock:
            return self._max if self._count else math.nan

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile of everything observed so far.

        An empty histogram has no quantiles: the documented sentinel is
        ``nan`` (never a fabricated 0.0, which reads as a real latency).
        """
        return _quantile_of_state(self._state(), q)

    def merge(self, other: "Histogram") -> "Histogram":
        """Fold ``other``'s observations into this histogram, in place.

        The multi-replica aggregation primitive: each replica keeps its own
        sketch and the cluster view is the merge.  Bucket semantics are
        preserved exactly — merged counts are the per-bucket sums, so any
        quantile of the merge carries the same bounded relative error as a
        single sketch would have over the union of observations.  Both
        sketches must share ``lo`` and ``growth`` (the bucket boundaries),
        otherwise counts cannot be combined without re-binning.
        """
        if not isinstance(other, Histogram):
            raise TypeError("can only merge another Histogram")
        # Snapshot under the source lock first, then apply under ours —
        # never hold both locks at once, so concurrent a.merge(b) /
        # b.merge(a) cannot deadlock.
        self._apply_state(other._state())
        return self

    def percentiles(self, ps: Tuple[float, ...] = (50.0, 95.0, 99.0)) -> Dict[str, float]:
        state = self._state()
        return {f"p{p:g}": _quantile_of_state(state, p / 100.0) for p in ps}

    def summary(self) -> Dict[str, float]:
        """count/sum/mean/min/max plus the standard latency quantiles.

        On an empty histogram every statistic except ``count``/``sum`` is
        the ``nan`` sentinel (see :meth:`quantile`).
        """
        return _summary_of_state(self._state())

    def __getstate__(self):
        return {"name": self.name, "state": self._state()}

    def __setstate__(self, payload) -> None:
        state = payload["state"]
        self.name = payload["name"]
        self._lo = state["lo"]
        self._growth = state["growth"]
        self._log_growth = math.log(self._growth)
        self._buckets = dict(state["buckets"])
        self._underflow = state["underflow"]
        self._count = state["count"]
        self._sum = state["sum"]
        self._min = state["min"]
        self._max = state["max"]
        self._lock = threading.Lock()


class BoundedLabels:
    """A bounded label space with an overflow bucket.

    Metric names in this repo embed identifiers (``admission.rejected.
    {key}``, per-replica metrics) — fine while keys are endpoints or model
    ids, but tenant ids are caller-controlled and unbounded: a million
    distinct tenants would mint a million registry instruments and OOM
    the process.  ``resolve`` admits the first ``capacity`` distinct
    labels verbatim and maps every later novel label onto ``overflow``
    (default ``__other__``), so the registry's cardinality is bounded by
    construction while the heavy hitters that arrive early keep their own
    series.
    """

    __slots__ = ("capacity", "overflow", "_known", "_overflowed", "_lock")

    def __init__(self, capacity: int, overflow: str = "__other__") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.overflow = overflow
        self._known: Dict[str, str] = {}
        self._overflowed = 0
        self._lock = threading.Lock()

    def resolve(self, label: str) -> str:
        """The bounded form of ``label`` (itself, or the overflow bucket)."""
        known = self._known.get(label)
        if known is not None:
            return known
        with self._lock:
            known = self._known.get(label)
            if known is not None:
                return known
            if len(self._known) < self.capacity:
                self._known[label] = label
                return label
            self._overflowed += 1
            return self.overflow

    @property
    def overflowed(self) -> int:
        """Distinct novel labels that landed in the overflow bucket."""
        with self._lock:
            return self._overflowed

    def known(self) -> Tuple[str, ...]:
        with self._lock:
            return tuple(self._known)


class MetricsRegistry:
    """Thread-safe get-or-create home of every named instrument.

    All instruments created through a registry share its lock, which is
    what makes :meth:`snapshot` and :meth:`merge` *read-consistent*: the
    capture happens in one critical section, so no concurrently running
    writer can be observed half-way through a multi-instrument update.
    The per-operation cost is unchanged (one uncontended lock acquire,
    same as the previous per-instrument locks — guarded by
    ``make bench-telemetry``).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(name, lock=self._lock)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(name, lock=self._lock)
            return instrument

    def histogram(self, name: str, lo: float = 1e-6, growth: float = 1.05) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(
                    name, lo=lo, growth=growth, lock=self._lock
                )
            return instrument

    # -- read side -----------------------------------------------------
    def _capture_locked(self) -> Dict[str, Dict]:
        """Raw consistent capture; the caller must hold ``self._lock``.

        Reads instrument internals directly — every registry-created
        instrument shares this lock, so taking it once freezes all of
        them simultaneously (no torn cross-instrument reads).
        """
        return {
            "counters": {n: c._value for n, c in self._counters.items()},
            "gauges": {n: g._value for n, g in self._gauges.items()},
            "histograms": {
                n: h._state_locked() for n, h in self._histograms.items()
            },
        }

    def _capture(self) -> Dict[str, Dict]:
        with self._lock:
            return self._capture_locked()

    def counters(self) -> Dict[str, float]:
        with self._lock:
            values = {n: c._value for n, c in self._counters.items()}
        return dict(sorted(values.items()))

    def gauges(self) -> Dict[str, float]:
        with self._lock:
            values = {n: g._value for n, g in self._gauges.items()}
        return dict(sorted(values.items()))

    def histograms(self) -> Dict[str, Dict[str, float]]:
        with self._lock:
            states = {n: h._state_locked() for n, h in self._histograms.items()}
        return {n: _summary_of_state(s) for n, s in sorted(states.items())}

    def snapshot(self) -> Dict[str, Dict]:
        """One nested dict of everything — the export formats build on this.

        The capture is atomic across every instrument in the registry:
        counters, gauges and histograms are all read in one critical
        section, so invariants a writer maintains across instruments
        (e.g. "``served`` never exceeds ``admitted``") hold in every
        snapshot even while writers race the reader.
        """
        capture = self._capture()
        return {
            "counters": dict(sorted(capture["counters"].items())),
            "gauges": dict(sorted(capture["gauges"].items())),
            "histograms": {
                n: _summary_of_state(s)
                for n, s in sorted(capture["histograms"].items())
            },
        }

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry into this one, in place (cluster view).

        Per-replica registries are aggregated instrument-by-instrument:

        - counters add (total requests across replicas);
        - gauges add — the cluster reading of a per-replica level gauge
          (queue depth, in-flight) is the sum over replicas;
        - histograms :meth:`Histogram.merge` (bucket counts add, so
          cluster-wide p50/p95/p99 stay within the sketch's error bound).

        Instruments present only in ``other`` are created here first, with
        the same name (and, for histograms, the same bucket layout).  The
        source registry is captured in one critical section, so the merge
        folds a *consistent* instant of the source even while its writers
        keep racing — the property process-backed replicas rely on when
        their snapshots arrive asynchronously.
        """
        capture = other._capture()
        return self._merge_capture(capture)

    def _merge_capture(self, capture: Dict[str, Dict]) -> "MetricsRegistry":
        for name, value in capture["counters"].items():
            self.counter(name).inc(value)
        for name, value in capture["gauges"].items():
            self.gauge(name).inc(value)
        for name, state in capture["histograms"].items():
            self.histogram(
                name, lo=state["lo"], growth=state["growth"]
            )._apply_state(state)
        return self

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def __getstate__(self):
        return self._capture()

    def __setstate__(self, capture) -> None:
        self._lock = threading.Lock()
        self._counters = {}
        self._gauges = {}
        self._histograms = {}
        self._merge_capture(capture)
