"""repro.telemetry — metrics + tracing for the staged-inference stack.

The paper's evaluation (Tables I–III, Fig. 4) is built on per-stage
latency, utility accrual and deadline misses; this package makes those
first-class observables of the runtime, the simulator, the profiler and
the service endpoints instead of ad-hoc logs:

- :class:`MetricsRegistry` — counters, gauges, and streaming histograms
  (p50/p95/p99 without storing samples);
- :class:`TraceLog` — typed scheduler events (admit, batch-form,
  stage-dispatch, complete, evict, deadline-miss);
- :func:`enable` / :func:`disable` / :func:`active` — the global session.

**Disabled by default.**  Every instrumented hot path does exactly one
module-attribute read and a ``None`` check when telemetry is off, so the
fast-path benchmarks (``make bench-fast``, ``make bench-telemetry``) are
unaffected until a session is explicitly enabled::

    from repro import telemetry

    session = telemetry.enable()
    ... serve traffic ...
    print(telemetry.render_text(session))
    telemetry.disable()

or, scoped (used throughout the tests)::

    with telemetry.session() as t:
        service.classify(request)
        assert t.registry.counter("service.requests.classify").value == 1
"""

from __future__ import annotations

import functools
import time
from contextlib import contextmanager
from typing import Callable, Iterator, Optional

from .export import render_text, to_dict, to_json
from .metrics import BoundedLabels, Counter, Gauge, Histogram, MetricsRegistry
from .trace import (
    ADMISSION_REJECT,
    ADMIT,
    BATCH_FORM,
    BREAKER_CLOSE,
    BREAKER_OPEN,
    COMPLETE,
    DEADLINE_MISS,
    DEGRADE_CAP,
    DEGRADED,
    EVENT_KINDS,
    EVICT,
    FAULT_INJECT,
    ITEM_RETRY,
    LOAD_SHED,
    RETRY,
    STAGE_DISPATCH,
    TraceEvent,
    TraceLog,
    WORKER_RESPAWN,
)


class Telemetry:
    """One telemetry session: a metrics registry plus a trace log."""

    def __init__(self, trace_capacity: int = 10000) -> None:
        self.registry = MetricsRegistry()
        self.trace = TraceLog(capacity=trace_capacity)

    def reset(self) -> None:
        self.registry.reset()
        self.trace.clear()


#: The module-global session; ``None`` means telemetry is off.  Hot paths
#: read this exactly once per instrumentation point (via :func:`active`).
_session: Optional[Telemetry] = None


def enable(trace_capacity: int = 10000) -> Telemetry:
    """Install (or return the already-installed) global session."""
    global _session
    if _session is None:
        _session = Telemetry(trace_capacity=trace_capacity)
    return _session


def disable() -> None:
    """Uninstall the global session; instrumentation reverts to no-ops."""
    global _session
    _session = None


def active() -> Optional[Telemetry]:
    """The current session, or ``None`` when telemetry is disabled."""
    return _session


def enabled() -> bool:
    return _session is not None


@contextmanager
def session(trace_capacity: int = 10000) -> Iterator[Telemetry]:
    """Enable telemetry for a scope, restoring the prior state on exit."""
    global _session
    previous = _session
    _session = Telemetry(trace_capacity=trace_capacity)
    try:
        yield _session
    finally:
        _session = previous


def timed(endpoint: str) -> Callable:
    """Decorator: per-endpoint request counter + latency histogram.

    Applied to every :class:`~repro.service.server.EugeneService` endpoint.
    With telemetry disabled the wrapper is one global read and a ``None``
    check on top of the call — nothing is recorded and no clock is read.
    """

    requests_name = f"service.requests.{endpoint}"
    errors_name = f"service.errors.{endpoint}"
    latency_name = f"service.latency_ms.{endpoint}"

    def decorate(fn: Callable) -> Callable:
        # Per-session instrument cache: registry.counter()/histogram()
        # take the registry lock on every lookup; the decorator resolves
        # its three instruments once per session instead of per request.
        cache: dict = {}

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            tel = _session
            if tel is None:
                return fn(*args, **kwargs)
            instruments = cache.get("i")
            if instruments is None or cache.get("tel") is not tel:
                instruments = (
                    tel.registry.counter(requests_name),
                    tel.registry.counter(errors_name),
                    tel.registry.histogram(latency_name),
                )
                cache["tel"] = tel
                cache["i"] = instruments
            requests, errors, latency = instruments
            # Counted on entry so a summary built *inside* the endpoint
            # (InferResponse.metrics) already includes this request.
            requests.inc()
            start = time.perf_counter()
            try:
                result = fn(*args, **kwargs)
            except Exception:
                errors.inc()
                raise
            elapsed_ms = 1e3 * (time.perf_counter() - start)
            latency.observe(elapsed_ms)
            return result

        return wrapper

    return decorate


__all__ = [
    "Telemetry",
    "MetricsRegistry",
    "BoundedLabels",
    "Counter",
    "Gauge",
    "Histogram",
    "TraceLog",
    "TraceEvent",
    "EVENT_KINDS",
    "ADMIT",
    "BATCH_FORM",
    "STAGE_DISPATCH",
    "COMPLETE",
    "EVICT",
    "DEADLINE_MISS",
    "FAULT_INJECT",
    "WORKER_RESPAWN",
    "ITEM_RETRY",
    "RETRY",
    "DEGRADED",
    "BREAKER_OPEN",
    "BREAKER_CLOSE",
    "ADMISSION_REJECT",
    "LOAD_SHED",
    "DEGRADE_CAP",
    "enable",
    "disable",
    "active",
    "enabled",
    "session",
    "timed",
    "render_text",
    "to_dict",
    "to_json",
]
