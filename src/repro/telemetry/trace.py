"""Typed trace log of scheduler events.

The paper's evaluation reasons about per-task trajectories — when a task
was admitted, which stages ran (and batched with whom), whether the daemon
evicted it at its latency constraint.  :class:`TraceLog` records exactly
those transitions as typed events so tests and the ``repro metrics`` CLI
can assert on scheduler behaviour instead of parsing ad-hoc logs.

The log is bounded (a deque) so a long-running service cannot grow it
without limit, and append is a single lock-protected deque.append — cheap
enough to leave on under load.
"""

from __future__ import annotations

import threading
from collections import Counter as _TallyCounter
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

#: The closed set of event kinds the scheduler stack emits.
ADMIT = "admit"
STAGE_DISPATCH = "stage-dispatch"
BATCH_FORM = "batch-form"
COMPLETE = "complete"
EVICT = "evict"
DEADLINE_MISS = "deadline-miss"
#: Fault-injection and recovery transitions (see :mod:`repro.faults`).
FAULT_INJECT = "fault-inject"
WORKER_RESPAWN = "worker-respawn"
ITEM_RETRY = "item-retry"
RETRY = "retry"
DEGRADED = "degraded"
BREAKER_OPEN = "breaker-open"
BREAKER_CLOSE = "breaker-close"
#: Admission-control and overload-management transitions (see
#: :mod:`repro.admission`).
ADMISSION_REJECT = "admission-reject"
LOAD_SHED = "load-shed"
DEGRADE_CAP = "degrade-cap"

EVENT_KINDS = frozenset(
    {
        ADMIT,
        STAGE_DISPATCH,
        BATCH_FORM,
        COMPLETE,
        EVICT,
        DEADLINE_MISS,
        FAULT_INJECT,
        WORKER_RESPAWN,
        ITEM_RETRY,
        RETRY,
        DEGRADED,
        BREAKER_OPEN,
        BREAKER_CLOSE,
        ADMISSION_REJECT,
        LOAD_SHED,
        DEGRADE_CAP,
    }
)


@dataclass(frozen=True)
class TraceEvent:
    """One scheduler transition.

    ``seq`` is a per-log monotone sequence number: events with equal
    timestamps (common in the discrete-event simulator) still have a total
    order.  ``t`` is seconds since the episode started.
    """

    seq: int
    t: float
    kind: str
    task_id: Optional[int] = None
    stage: Optional[int] = None
    task_ids: Optional[Tuple[int, ...]] = None
    detail: Optional[Dict[str, float]] = None
    #: free-form name for events about a *named thing* rather than a task —
    #: an injection site, an endpoint, a fault kind.
    label: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown trace event kind {self.kind!r}")

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {"seq": self.seq, "t": self.t, "kind": self.kind}
        if self.task_id is not None:
            out["task_id"] = self.task_id
        if self.stage is not None:
            out["stage"] = self.stage
        if self.task_ids is not None:
            out["task_ids"] = list(self.task_ids)
        if self.label is not None:
            out["label"] = self.label
        if self.detail:
            out["detail"] = dict(self.detail)
        return out


class TraceLog:
    """Bounded, thread-safe event log with typed append helpers."""

    def __init__(self, capacity: int = 10000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)
        self._seq = 0
        self._dropped = 0
        self._lock = threading.Lock()

    # -- generic append ------------------------------------------------
    def record(
        self,
        kind: str,
        t: float,
        task_id: Optional[int] = None,
        stage: Optional[int] = None,
        task_ids: Optional[Tuple[int, ...]] = None,
        detail: Optional[Dict[str, float]] = None,
        label: Optional[str] = None,
    ) -> TraceEvent:
        with self._lock:
            event = TraceEvent(
                seq=self._seq, t=float(t), kind=kind, task_id=task_id,
                stage=stage, task_ids=task_ids, detail=detail, label=label,
            )
            self._seq += 1
            if len(self._events) == self.capacity:
                self._dropped += 1
            self._events.append(event)
            return event

    # -- typed helpers (one per scheduler transition) ------------------
    def admit(self, t: float, task_id: int, deadline: float) -> TraceEvent:
        return self.record(ADMIT, t, task_id=task_id, detail={"deadline": deadline})

    def batch_form(self, t: float, stage: int, task_ids: Tuple[int, ...]) -> TraceEvent:
        return self.record(BATCH_FORM, t, stage=stage, task_ids=tuple(task_ids))

    def stage_dispatch(
        self, t: float, stage: int, task_ids: Tuple[int, ...]
    ) -> TraceEvent:
        return self.record(
            STAGE_DISPATCH, t, stage=stage, task_ids=tuple(task_ids),
            detail={"batch_size": float(len(task_ids))},
        )

    def complete(self, t: float, task_id: int, stages_done: int) -> TraceEvent:
        return self.record(
            COMPLETE, t, task_id=task_id, detail={"stages_done": float(stages_done)}
        )

    def evict(self, t: float, task_id: int, stages_done: int) -> TraceEvent:
        return self.record(
            EVICT, t, task_id=task_id, detail={"stages_done": float(stages_done)}
        )

    def deadline_miss(self, t: float, task_id: int, deadline: float) -> TraceEvent:
        return self.record(
            DEADLINE_MISS, t, task_id=task_id, detail={"deadline": deadline}
        )

    # -- fault-injection / recovery transitions ------------------------
    def fault_inject(self, t: float, site: str, kind: str, index: int) -> TraceEvent:
        """A fault fired at ``site``; ``t`` is the site invocation index."""
        return self.record(
            FAULT_INJECT, t, label=f"{site}:{kind}",
            detail={"invocation": float(index)},
        )

    def worker_respawn(self, t: float, worker: int) -> TraceEvent:
        return self.record(
            WORKER_RESPAWN, t, detail={"worker": float(worker)}
        )

    def item_retry(self, t: float, stage: int, task_ids: Tuple[int, ...]) -> TraceEvent:
        """A dispatched micro-batch was declared lost and requeued."""
        return self.record(
            ITEM_RETRY, t, stage=stage, task_ids=tuple(task_ids),
            detail={"batch_size": float(len(task_ids))},
        )

    def retry(self, t: float, endpoint: str, attempt: int) -> TraceEvent:
        """A client retry of ``endpoint`` (attempt number 1-based)."""
        return self.record(
            RETRY, t, label=endpoint, detail={"attempt": float(attempt)}
        )

    def degraded(self, t: float, task_id: int, stage: int) -> TraceEvent:
        """A task was served from an early exit instead of its final stage."""
        return self.record(DEGRADED, t, task_id=task_id, stage=stage)

    def breaker_open(self, t: float, endpoint: str) -> TraceEvent:
        return self.record(BREAKER_OPEN, t, label=endpoint)

    def breaker_close(self, t: float, endpoint: str) -> TraceEvent:
        return self.record(BREAKER_CLOSE, t, label=endpoint)

    # -- admission-control / overload transitions -----------------------
    def admission_reject(
        self, t: float, key: str, reason: str, retry_after_s: float
    ) -> TraceEvent:
        """Admission refused a request at ``key`` (endpoint or model:id)."""
        return self.record(
            ADMISSION_REJECT, t, label=f"{key}:{reason}",
            detail={"retry_after_s": float(retry_after_s)},
        )

    def load_shed(self, t: float, task_id: int, expected_utility: float) -> TraceEvent:
        """An admitted task was dropped under overload (lowest utility first)."""
        return self.record(
            LOAD_SHED, t, task_id=task_id,
            detail={"expected_utility": float(expected_utility)},
        )

    def degrade_cap(self, t: float, task_id: int, stage_cap: int) -> TraceEvent:
        """A task was capped at an earlier exit stage instead of being shed."""
        return self.record(
            DEGRADE_CAP, t, task_id=task_id, detail={"stage_cap": float(stage_cap)}
        )

    # -- read side -----------------------------------------------------
    def events(self, kind: Optional[str] = None) -> List[TraceEvent]:
        with self._lock:
            snapshot = list(self._events)
        if kind is None:
            return snapshot
        return [e for e in snapshot if e.kind == kind]

    def counts(self) -> Dict[str, int]:
        """Events per kind (over the retained window)."""
        with self._lock:
            tally = _TallyCounter(e.kind for e in self._events)
        return dict(sorted(tally.items()))

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def dropped(self) -> int:
        """Events pushed out of the bounded window so far."""
        with self._lock:
            return self._dropped

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self._dropped = 0
