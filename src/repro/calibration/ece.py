"""Expected Calibration Error and reliability diagrams (Eq. 1-3, Fig. 2).

Following Section III-A of the paper: classification results are grouped into
``M`` equal-width confidence bins; per-bin average accuracy (Eq. 1) and
average confidence (Eq. 2) are compared; ECE is their weighted absolute
difference (Eq. 3).

Note on Eq. (3): the paper's formula divides ``|S_m|`` by ``m`` (the bin
index), which is a typesetting slip — the metric it cites ([13], Naeini et
al. 2015) and the standard definition weight each bin by ``|S_m| / n`` where
``n`` is the total sample count.  We implement the standard definition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np


def _validate(confidences: np.ndarray, correct: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    confidences = np.asarray(confidences, dtype=np.float64)
    correct = np.asarray(correct, dtype=bool)
    if confidences.shape != correct.shape or confidences.ndim != 1:
        raise ValueError("confidences and correct must be matching 1-D arrays")
    if confidences.size == 0:
        raise ValueError("cannot compute calibration of zero samples")
    if confidences.min() < 0.0 or confidences.max() > 1.0 + 1e-9:
        raise ValueError("confidences must lie in [0, 1]")
    return confidences, correct


def _bin_index(confidences: np.ndarray, num_bins: int) -> np.ndarray:
    """Bin sample i into ((m-1)/M, m/M] per the paper; conf==0 goes to bin 0."""
    idx = np.ceil(confidences * num_bins).astype(int) - 1
    return np.clip(idx, 0, num_bins - 1)


@dataclass
class ReliabilityDiagram:
    """Binned calibration data backing Fig. 2.

    Attributes mirror the paper's quantities: per-bin ``accuracy`` (Eq. 1),
    ``confidence`` (Eq. 2), sample ``counts``, and the bin ``centers``.
    Bins with no samples hold NaN accuracy/confidence.
    """

    centers: np.ndarray
    accuracy: np.ndarray
    confidence: np.ndarray
    counts: np.ndarray

    @property
    def num_bins(self) -> int:
        return len(self.centers)

    @property
    def gap(self) -> np.ndarray:
        """Per-bin |accuracy - confidence| (the red "gap" area in Fig. 2)."""
        return np.abs(self.accuracy - self.confidence)

    def ece(self) -> float:
        """ECE computed from the binned data (Eq. 3, standard weighting)."""
        n = self.counts.sum()
        mask = self.counts > 0
        return float(
            (self.counts[mask] / n * self.gap[mask]).sum()
        )

    def render_ascii(self, width: int = 40) -> str:
        """Text rendering of the reliability diagram for logs/CLI output."""
        lines = ["confidence bin | accuracy (# = observed, . = ideal)"]
        for c, a, n in zip(self.centers, self.accuracy, self.counts):
            if n == 0:
                lines.append(f"  ({c:4.2f})       | (empty)")
                continue
            bar = int(round(a * width))
            ideal = int(round(c * width))
            row = ["-"] * (width + 1)
            row[ideal] = "."
            for i in range(bar):
                row[i] = "#"
            lines.append(f"  ({c:4.2f})       | {''.join(row)} {a:4.2f} (n={int(n)})")
        return "\n".join(lines)


def reliability_diagram(
    confidences: np.ndarray, correct: np.ndarray, num_bins: int = 10
) -> ReliabilityDiagram:
    """Compute the reliability diagram of top-1 confidences vs correctness."""
    if num_bins < 1:
        raise ValueError("num_bins must be >= 1")
    confidences, correct = _validate(confidences, correct)
    idx = _bin_index(confidences, num_bins)
    counts = np.bincount(idx, minlength=num_bins).astype(float)
    acc_sum = np.bincount(idx, weights=correct.astype(float), minlength=num_bins)
    conf_sum = np.bincount(idx, weights=confidences, minlength=num_bins)
    with np.errstate(invalid="ignore", divide="ignore"):
        accuracy = np.where(counts > 0, acc_sum / counts, np.nan)
        confidence = np.where(counts > 0, conf_sum / counts, np.nan)
    centers = (np.arange(num_bins) + 0.5) / num_bins
    return ReliabilityDiagram(centers, accuracy, confidence, counts)


def expected_calibration_error(
    confidences: np.ndarray, correct: np.ndarray, num_bins: int = 10
) -> float:
    """ECE (Eq. 3): sum_m |S_m|/n * |acc(S_m) - conf(S_m)|."""
    return reliability_diagram(confidences, correct, num_bins).ece()


def maximum_calibration_error(
    confidences: np.ndarray, correct: np.ndarray, num_bins: int = 10
) -> float:
    """MCE: worst-bin |acc - conf| — a stricter companion metric."""
    diagram = reliability_diagram(confidences, correct, num_bins)
    gaps = diagram.gap[diagram.counts > 0]
    return float(gaps.max()) if gaps.size else 0.0


@dataclass
class CalibrationSummary:
    """Scalar calibration statistics for one classifier head."""

    ece: float
    mce: float
    accuracy: float
    mean_confidence: float

    @property
    def overconfident(self) -> bool:
        """True when acc(S) < conf(S) — the net overestimates (Sec. III-A)."""
        return self.accuracy < self.mean_confidence


def summarize_calibration(
    confidences: np.ndarray, correct: np.ndarray, num_bins: int = 10
) -> CalibrationSummary:
    """One-stop summary used by the calibration experiments and the α rule."""
    confidences, correct = _validate(confidences, correct)
    return CalibrationSummary(
        ece=expected_calibration_error(confidences, correct, num_bins),
        mce=maximum_calibration_error(confidences, correct, num_bins),
        accuracy=float(correct.mean()),
        mean_confidence=float(confidences.mean()),
    )
