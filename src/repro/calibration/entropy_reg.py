"""Entropy-based confidence calibration with fine-tuning (Eq. 4 — RTDeepIoT).

The paper's method: after normal training, fine-tune with
``L = CE(p, y) + alpha * H(p)`` where the sign of ``alpha`` is chosen from
the direction of miscalibration.  Minimizing ``+alpha*H`` with ``alpha > 0``
drives entropy down (confidence up); ``alpha < 0`` drives entropy up
(confidence down).  Hence:

- overconfident head (``conf > acc``, the common case, Guo et al. 2017)
  → ``alpha < 0``;
- underconfident head → ``alpha > 0``.

"Tuning the value of alpha is simple" (Sec. III-A): :class:`EntropyCalibrator`
measures the per-stage miscalibration on a held-out calibration split, picks
per-stage alphas by the rule above (optionally line-searching the magnitude),
and fine-tunes the stage classifiers only — the backbone stays frozen so
calibration cannot degrade feature quality.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..nn import functional as F
from ..nn.data import DataLoader, Dataset
from ..nn.losses import cross_entropy, entropy
from ..nn.optim import Adam
from ..nn.resnet import StagedResNet
from ..nn.tensor import Tensor
from ..nn.training import collect_stage_outputs
from .ece import summarize_calibration


def choose_alpha(accuracy: float, mean_confidence: float, magnitude: float = 0.5) -> float:
    """The paper's sign rule for the Eq. (4) hyper-parameter.

    Returns ``-magnitude`` when the head overestimates (conf > acc) so the
    entropy reward pulls confidence down, ``+magnitude`` when it
    underestimates, and 0 when already within one tenth of a percent.
    """
    gap = mean_confidence - accuracy
    if abs(gap) < 1e-3:
        return 0.0
    return -magnitude if gap > 0 else magnitude


@dataclass
class StageCalibrationResult:
    """Before/after calibration stats for one stage."""

    stage: int
    alpha: float
    ece_before: float
    ece_after: float


@dataclass
class EntropyCalibrator:
    """Calibrates every stage classifier of a :class:`StagedResNet` (Eq. 4).

    Parameters
    ----------
    magnitude:
        Base |alpha|.  With ``search=True`` the calibrator tries
        ``magnitude * {0.5, 1, 2}`` and keeps the best-ECE result per stage.
    epochs, lr, batch_size:
        Fine-tuning hyper-parameters (classifier heads only).
    num_bins:
        ECE bin count (M in Eq. 3).
    """

    magnitude: float = 0.5
    epochs: int = 3
    lr: float = 1e-2
    batch_size: int = 64
    num_bins: int = 10
    search: bool = True
    #: fraction of the calibration set used for fine-tuning; the remainder is
    #: an internal validation split that picks the winning alpha, so the
    #: selection cannot overfit the data it was trained on.
    fit_fraction: float = 0.7
    seed: int = 0

    def calibrate(
        self, model: StagedResNet, calibration_set: Dataset
    ) -> List[StageCalibrationResult]:
        """Fine-tune each stage head on ``calibration_set``; returns per-stage stats.

        For each stage, candidate alphas (including 0 and the identity — no
        fine-tune at all) are trained on the fit split and ranked by ECE on
        the validation split; the winner's weights are installed.
        """
        before = collect_stage_outputs(model, calibration_set)
        results: List[StageCalibrationResult] = []
        features_cache = self._stage_features(model, calibration_set)
        rng = np.random.default_rng(self.seed)
        n = len(calibration_set)
        order = rng.permutation(n)
        cut = int(round(self.fit_fraction * n))
        fit_idx, val_idx = order[:cut], order[cut:]
        labels = calibration_set.labels
        for stage in range(model.num_stages):
            pooled = features_cache[stage]
            summary = summarize_calibration(
                before["confidences"][stage], before["correct"][stage], self.num_bins
            )
            base_alpha = choose_alpha(summary.accuracy, summary.mean_confidence, self.magnitude)
            candidates = [0.0, base_alpha]
            if self.search and base_alpha != 0.0:
                candidates += [base_alpha * 0.5, base_alpha * 2.0]
            original_state = model.classifiers[stage].state_dict()
            identity_ece = self._head_ece(model, stage, pooled[val_idx], labels[val_idx])
            best = (None, identity_ece, original_state)
            for alpha in dict.fromkeys(candidates):
                model.classifiers[stage].load_state_dict(original_state)
                self._finetune_head(model, stage, pooled[fit_idx], labels[fit_idx], alpha)
                ece_val = self._head_ece(model, stage, pooled[val_idx], labels[val_idx])
                if ece_val < best[1]:
                    best = (alpha, ece_val, model.classifiers[stage].state_dict())
            alpha, ece_after, best_state = best
            model.classifiers[stage].load_state_dict(best_state)
            results.append(
                StageCalibrationResult(
                    stage=stage,
                    alpha=alpha if alpha is not None else 0.0,
                    ece_before=summary.ece,
                    ece_after=ece_after,
                )
            )
        return results

    # ------------------------------------------------------------------
    def _stage_features(
        self, model: StagedResNet, dataset: Dataset
    ) -> List[np.ndarray]:
        """Pre-compute frozen backbone features entering each stage classifier."""
        model.eval()
        loader = DataLoader(dataset, batch_size=self.batch_size, shuffle=False)
        per_stage: List[List[np.ndarray]] = [[] for _ in range(model.num_stages)]
        for inputs, _ in loader:
            features = model.run_stem(Tensor(inputs))
            for s in range(model.num_stages):
                features = model.stages[s](features)
                pooled = F.global_avg_pool2d(features)
                per_stage[s].append(pooled.data)
        return [np.concatenate(chunks, axis=0) for chunks in per_stage]

    def _finetune_head(
        self,
        model: StagedResNet,
        stage: int,
        pooled: np.ndarray,
        labels: np.ndarray,
        alpha: float,
    ) -> None:
        head = model.classifiers[stage].fc
        optimizer = Adam(head.parameters(), lr=self.lr)
        rng = np.random.default_rng(self.seed)
        n = len(labels)
        for _ in range(self.epochs):
            order = rng.permutation(n)
            for start in range(0, n, self.batch_size):
                idx = order[start : start + self.batch_size]
                logits = head(Tensor(pooled[idx]))
                loss = cross_entropy(logits, labels[idx])
                if alpha != 0.0:
                    loss = loss + alpha * entropy(F.softmax(logits, axis=-1))
                optimizer.zero_grad()
                loss.backward()
                optimizer.step()

    def _head_ece(
        self, model: StagedResNet, stage: int, pooled: np.ndarray, labels: np.ndarray
    ) -> float:
        head = model.classifiers[stage].fc
        probs = F.softmax(head(Tensor(pooled)), axis=-1).data
        confidences = probs.max(axis=-1)
        correct = probs.argmax(axis=-1) == labels
        return summarize_calibration(confidences, correct, self.num_bins).ece
