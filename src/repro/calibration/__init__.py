"""Confidence calibration — Section II-D / III-A of the Eugene paper.

Provides the Expected Calibration Error metric (Eq. 1-3), reliability-diagram
binning (Fig. 2), the paper's entropy-based calibration fine-tuning (Eq. 4,
a.k.a. RTDeepIoT calibration), the RDeepSense-style MC-dropout baseline, and
a temperature-scaling baseline for ablations.
"""

from .ece import (
    CalibrationSummary,
    ReliabilityDiagram,
    expected_calibration_error,
    maximum_calibration_error,
    reliability_diagram,
    summarize_calibration,
)
from .entropy_reg import EntropyCalibrator, choose_alpha
from .mc_dropout import MCDropoutClassifier, MCDropoutStagedWrapper
from .rdeepsense import (
    GaussianRegressor,
    coverage_bias,
    fit_gaussian_regressor,
    interval_coverage,
    regression_calibration_curve,
    sweep_loss_weight,
)
from .temperature import TemperatureScaler

__all__ = [
    "expected_calibration_error",
    "maximum_calibration_error",
    "reliability_diagram",
    "summarize_calibration",
    "ReliabilityDiagram",
    "CalibrationSummary",
    "EntropyCalibrator",
    "choose_alpha",
    "MCDropoutClassifier",
    "MCDropoutStagedWrapper",
    "TemperatureScaler",
    "GaussianRegressor",
    "fit_gaussian_regressor",
    "interval_coverage",
    "regression_calibration_curve",
    "coverage_bias",
    "sweep_loss_weight",
]
