"""RDeepSense-style confidence estimation via Monte-Carlo dropout.

The paper's Table II compares its entropy calibration against RDeepSense [6],
"a state-of-the-art confidence calibration method with dropout operations".
Following Gal & Ghahramani (2016) as adapted by RDeepSense, we keep dropout
active at inference time and average the softmax outputs of ``passes``
stochastic forward passes; the averaged distribution's top-1 probability is
the calibrated confidence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..nn import functional as F
from ..nn.data import DataLoader, Dataset
from ..nn.layers import Module
from ..nn.resnet import StagedResNet
from ..nn.tensor import Tensor


@dataclass
class MCDropoutClassifier:
    """Generic MC-dropout wrapper over any logits-producing module.

    The wrapped module must contain :class:`repro.nn.layers.Dropout` layers
    constructed with ``always_on=True`` so they stay stochastic in eval mode.
    """

    model: Module
    passes: int = 10

    def predict_proba(self, inputs: np.ndarray) -> np.ndarray:
        if self.passes < 1:
            raise ValueError("passes must be >= 1")
        total: Optional[np.ndarray] = None
        for _ in range(self.passes):
            probs = F.softmax(self.model(Tensor(inputs)), axis=-1).data
            total = probs if total is None else total + probs
        assert total is not None
        return total / self.passes


class MCDropoutStagedWrapper:
    """MC-dropout confidence for every stage of a :class:`StagedResNet`.

    The backbone runs once deterministically (dropout on convolutional
    features would be prohibitively noisy and is not what RDeepSense does);
    stochasticity is injected on the pooled features feeding each stage's
    classifier head, the natural analogue of RDeepSense's dropout-bearing
    fully-connected output layers.
    """

    def __init__(
        self,
        model: StagedResNet,
        rate: float = 0.25,
        passes: int = 20,
        seed: int = 0,
    ) -> None:
        if not 0.0 < rate < 1.0:
            raise ValueError(f"dropout rate must be in (0, 1), got {rate}")
        if passes < 1:
            raise ValueError("passes must be >= 1")
        self.model = model
        self.rate = rate
        self.passes = passes
        self._rng = np.random.default_rng(seed)

    def finetune_heads(
        self,
        dataset: Dataset,
        epochs: int = 3,
        lr: float = 1e-2,
        batch_size: int = 64,
    ) -> None:
        """Fine-tune each stage head *with dropout active* (RDeepSense trains
        its dropout-bearing layers; applying MC dropout to a dropout-free
        model would be out of distribution)."""
        from ..nn.losses import cross_entropy
        from ..nn.optim import Adam

        self.model.eval()
        loader = DataLoader(dataset, batch_size=256, shuffle=False)
        pooled_per_stage: List[List[np.ndarray]] = [[] for _ in range(self.model.num_stages)]
        for inputs, _ in loader:
            features = self.model.run_stem(Tensor(inputs))
            for s in range(self.model.num_stages):
                features = self.model.stages[s](features)
                pooled_per_stage[s].append(F.global_avg_pool2d(features).data)
        labels = dataset.labels
        keep = 1.0 - self.rate
        for s in range(self.model.num_stages):
            pooled = np.concatenate(pooled_per_stage[s], axis=0)
            head = self.model.classifiers[s].fc
            optimizer = Adam(head.parameters(), lr=lr)
            n = len(labels)
            for _ in range(epochs):
                order = self._rng.permutation(n)
                for start in range(0, n, batch_size):
                    idx = order[start : start + batch_size]
                    mask = (self._rng.random(pooled[idx].shape) < keep) / keep
                    logits = head(Tensor(pooled[idx] * mask))
                    loss = cross_entropy(logits, labels[idx])
                    optimizer.zero_grad()
                    loss.backward()
                    optimizer.step()

    def predict_proba(self, inputs: np.ndarray) -> List[np.ndarray]:
        """Per-stage MC-averaged softmax probabilities."""
        self.model.eval()
        features = self.model.run_stem(Tensor(inputs))
        keep = 1.0 - self.rate
        out: List[np.ndarray] = []
        for stage_idx in range(self.model.num_stages):
            features = self.model.stages[stage_idx](features)
            pooled = F.global_avg_pool2d(features).data
            head = self.model.classifiers[stage_idx].fc
            total = np.zeros((pooled.shape[0], head.out_features))
            for _ in range(self.passes):
                mask = (self._rng.random(pooled.shape) < keep) / keep
                probs = F.softmax(head(Tensor(pooled * mask)), axis=-1).data
                total += probs
            out.append(total / self.passes)
        return out

    def stage_confidences_and_predictions(self, inputs: np.ndarray):
        """(confidences, predictions) arrays shaped (num_stages, N)."""
        probs = self.predict_proba(inputs)
        confidences = np.stack([p.max(axis=-1) for p in probs], axis=0)
        predictions = np.stack([p.argmax(axis=-1) for p in probs], axis=0)
        return confidences, predictions

    def collect_outputs(self, dataset: Dataset, batch_size: int = 128) -> dict:
        """Same contract as :func:`repro.nn.training.collect_stage_outputs`."""
        loader = DataLoader(dataset, batch_size=batch_size, shuffle=False)
        confs, preds, labels_all = [], [], []
        for inputs, labels in loader:
            c, p = self.stage_confidences_and_predictions(inputs)
            confs.append(c)
            preds.append(p)
            labels_all.append(labels)
        confidences = np.concatenate(confs, axis=1)
        predictions = np.concatenate(preds, axis=1)
        labels_arr = np.concatenate(labels_all)
        return {
            "confidences": confidences,
            "predictions": predictions,
            "correct": predictions == labels_arr[None, :],
            "labels": labels_arr,
        }
