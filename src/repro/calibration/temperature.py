"""Temperature scaling (Guo et al. 2017) — ablation baseline.

The paper cites [11] ("On calibration of modern neural networks") when
motivating its entropy regularizer; temperature scaling is that paper's
method and the natural extra baseline for our calibration ablation: a single
scalar T rescales the logits, fit by minimizing NLL on a held-out split.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import minimize_scalar


def _nll_at_temperature(logits: np.ndarray, labels: np.ndarray, temperature: float) -> float:
    scaled = logits / temperature
    shifted = scaled - scaled.max(axis=-1, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=-1))
    picked = shifted[np.arange(len(labels)), labels]
    return float((logsumexp - picked).mean())


@dataclass
class TemperatureScaler:
    """Fits T > 0 minimizing NLL; ``transform`` rescales softmax outputs."""

    max_temperature: float = 20.0
    temperature: float = field(default=1.0, init=False)
    fitted: bool = field(default=False, init=False)

    def fit(self, logits: np.ndarray, labels: np.ndarray) -> "TemperatureScaler":
        logits = np.asarray(logits, dtype=np.float64)
        labels = np.asarray(labels, dtype=np.int64)
        if logits.ndim != 2 or len(logits) != len(labels):
            raise ValueError("logits must be (N, C) matching labels (N,)")
        result = minimize_scalar(
            lambda t: _nll_at_temperature(logits, labels, t),
            bounds=(1e-2, self.max_temperature),
            method="bounded",
        )
        self.temperature = float(result.x)
        self.fitted = True
        return self

    def transform(self, logits: np.ndarray) -> np.ndarray:
        """Calibrated softmax probabilities for ``logits``."""
        if not self.fitted:
            raise RuntimeError("call fit() before transform()")
        scaled = np.asarray(logits) / self.temperature
        shifted = scaled - scaled.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=-1, keepdims=True)

    def fit_transform(self, logits: np.ndarray, labels: np.ndarray) -> np.ndarray:
        return self.fit(logits, labels).transform(logits)
