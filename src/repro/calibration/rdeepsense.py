"""RDeepSense-style regression uncertainty (Sec. II-D).

The paper's argument, implemented and measurable here:

- training the (mean, variance) head with **MSE only** fits the mean well,
  so the variance observed on training data is small and **underestimates**
  test-time uncertainty (predictive intervals too narrow);
- training with **NLL only** biases the mean and **overestimates**
  uncertainty (intervals too wide);
- a **weighted sum** of the two (the RDeepSense loss,
  :func:`repro.nn.losses.gaussian_nll_mse`) makes the biases roughly cancel,
  yielding well-calibrated intervals.

:func:`fit_gaussian_regressor` trains a small MLP emitting (mean, log-var)
under any loss weight; :func:`interval_coverage` and
:func:`regression_calibration_curve` quantify interval quality; and
:func:`sweep_loss_weight` reproduces the under/over-estimation picture as a
table of nominal-vs-empirical coverage per weight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy.stats import norm

from ..nn.layers import Dense, Module, ReLU, Sequential
from ..nn.losses import gaussian_nll_mse, mse
from ..nn.optim import Adam
from ..nn.tensor import Tensor


class GaussianRegressor(Module):
    """MLP emitting a (mean, log-variance) pair per output dimension."""

    def __init__(self, input_dim: int, hidden: int = 32, output_dim: int = 1,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.output_dim = output_dim
        self.body = Sequential(
            Dense(input_dim, hidden, rng=rng), ReLU(),
            Dense(hidden, hidden, rng=rng), ReLU(),
        )
        self.mean_head = Dense(hidden, output_dim, rng=rng)
        self.logvar_head = Dense(hidden, output_dim, rng=rng)

    def forward(self, x: Tensor) -> Tuple[Tensor, Tensor]:
        features = self.body(x)
        return self.mean_head(features), self.logvar_head(features)

    def predict(self, x: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(mean, std) as plain arrays."""
        mean, log_var = self.forward(Tensor(np.asarray(x, dtype=np.float64)))
        return mean.data, np.exp(0.5 * log_var.data)


def fit_gaussian_regressor(
    x: np.ndarray,
    y: np.ndarray,
    weight: float,
    hidden: int = 32,
    steps: int = 400,
    batch_size: int = 64,
    lr: float = 3e-3,
    seed: int = 0,
) -> GaussianRegressor:
    """Train a :class:`GaussianRegressor` under ``w*MSE + (1-w)*NLL``.

    ``weight=1`` is the pure-MSE regime, ``weight=0`` pure NLL.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if y.ndim == 1:
        y = y[:, None]
    if len(x) != len(y):
        raise ValueError("x and y must align")
    rng = np.random.default_rng(seed)
    model = GaussianRegressor(x.shape[1], hidden=hidden, output_dim=y.shape[1],
                              rng=rng)
    optimizer = Adam(model.parameters(), lr=lr)
    for _ in range(steps):
        idx = rng.choice(len(x), size=min(batch_size, len(x)), replace=False)
        mean, log_var = model(Tensor(x[idx]))
        if weight >= 1.0:
            # Pure MSE ignores the variance head during training; the
            # variance is then fit post-hoc from training residuals — the
            # classic underestimation recipe the paper describes.
            loss = mse(mean, y[idx])
        else:
            loss = gaussian_nll_mse(mean, log_var, y[idx], weight=weight)
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    if weight >= 1.0:
        mean, _ = model(Tensor(x))
        residual_var = np.maximum(((mean.data - y) ** 2).mean(axis=0), 1e-8)
        # Install the residual variance as a constant log-var head.
        model.logvar_head.weight.data[:] = 0.0
        model.logvar_head.bias.data[:] = np.log(residual_var)
    model.eval()
    return model


def interval_coverage(
    mean: np.ndarray, std: np.ndarray, targets: np.ndarray, nominal: float = 0.9
) -> float:
    """Fraction of targets inside the central ``nominal`` predictive interval."""
    if not 0.0 < nominal < 1.0:
        raise ValueError("nominal coverage must be in (0, 1)")
    mean = np.asarray(mean, dtype=np.float64)
    std = np.asarray(std, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64).reshape(mean.shape)
    z = norm.ppf(0.5 + nominal / 2.0)
    inside = np.abs(targets - mean) <= z * std
    return float(inside.mean())


def regression_calibration_curve(
    mean: np.ndarray,
    std: np.ndarray,
    targets: np.ndarray,
    nominal_levels: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9, 0.95),
) -> List[Tuple[float, float]]:
    """(nominal, empirical) coverage pairs — the regression reliability curve."""
    return [
        (level, interval_coverage(mean, std, targets, level))
        for level in nominal_levels
    ]


def coverage_bias(curve: Sequence[Tuple[float, float]]) -> float:
    """Mean (empirical - nominal) coverage.

    Negative => intervals too narrow (uncertainty *underestimated*);
    positive => too wide (*overestimated*); near zero => well calibrated.
    """
    return float(np.mean([emp - nom for nom, emp in curve]))


@dataclass
class WeightSweepRow:
    weight: float
    coverage_90: float
    bias: float
    mean_mae: float


def sweep_loss_weight(
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_test: np.ndarray,
    y_test: np.ndarray,
    weights: Sequence[float] = (1.0, 0.5, 0.0),
    seed: int = 0,
    **fit_kwargs,
) -> List[WeightSweepRow]:
    """Reproduce the Sec. II-D picture: coverage bias as a function of the
    MSE/NLL mixing weight."""
    y_test = np.asarray(y_test, dtype=np.float64)
    if y_test.ndim == 1:
        y_test = y_test[:, None]
    rows = []
    for weight in weights:
        model = fit_gaussian_regressor(x_train, y_train, weight, seed=seed,
                                       **fit_kwargs)
        mean, std = model.predict(x_test)
        curve = regression_calibration_curve(mean, std, y_test)
        rows.append(
            WeightSweepRow(
                weight=weight,
                coverage_90=interval_coverage(mean, std, y_test, 0.9),
                bias=coverage_bias(curve),
                mean_mae=float(np.abs(mean - y_test).mean()),
            )
        )
    return rows
