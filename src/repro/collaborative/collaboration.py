"""Collaborative inferencing pipeline (Sec. IV-B, Table IV).

Two operating modes over the same simulated world:

- **individual**: every camera runs the full 2-DNN pipeline on every frame
  (the paper's non-collaborative baseline: ~550 ms/frame, accuracy limited
  by per-camera occlusion and lighting artifacts);
- **collaborative**: cameras exchange detected boxes (remapped to the shared
  world frame).  Each camera runs the full detector only every
  ``refresh_every`` frames (staggered across cameras); on other frames it
  runs the cheap prior-guided verification path over (a) its own previous
  detections (temporal priors) and (b) boxes shared by peers.  Peer boxes
  recover occlusion misses (higher accuracy) and the cheap path slashes the
  average per-frame latency — the two Table IV effects.

The optional ``monitor`` (a :class:`~repro.collaborative.resilience.
ResilienceMonitor`) and ``rogues`` hooks implement the Sec. IV-C resilience
experiment: rogue cameras inject false boxes; the monitor learns per-source
trust from verification outcomes and filters untrusted sources.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .camera import Camera
from .detector import Detection, SSDDetector
from .world import World


def match_detections(
    detections: Sequence[Detection],
    truth_positions: np.ndarray,
    tolerance: float = 3.5,
) -> Tuple[int, int, int]:
    """Greedy nearest-distance matching of detections to ground truth.

    Returns ``(true_positives, false_positives, false_negatives)``.
    """
    if tolerance <= 0:
        raise ValueError("tolerance must be positive")
    remaining = list(range(len(truth_positions)))
    tp = 0
    fp = 0
    for det in sorted(detections, key=lambda d: -d.confidence):
        if not remaining:
            fp += 1
            continue
        xy = np.array(det.world_xy)
        dists = [float(np.linalg.norm(truth_positions[i] - xy)) for i in remaining]
        best = int(np.argmin(dists))
        if dists[best] <= tolerance:
            tp += 1
            remaining.pop(best)
        else:
            fp += 1
    return tp, fp, len(remaining)


@dataclass
class CollaborativeFrameResult:
    """Per-frame record of detections, latency and mode for every camera."""

    t: float
    detections: Dict[int, List[Detection]]
    latency_ms: Dict[int, float]
    mode: Dict[int, str]  # "full" or "prior"


@dataclass
class EvaluationSummary:
    """Aggregated Table IV metrics."""

    precision: float
    recall: float
    detection_accuracy: float  # F1
    counting_accuracy: float
    mean_latency_ms: float
    frames: int

    def as_row(self) -> Dict[str, float]:
        return {
            "detection_accuracy": self.detection_accuracy,
            "recognition_latency_ms": self.mean_latency_ms,
        }


class CollaborativePipeline:
    """Runs the camera network in individual or collaborative mode."""

    def __init__(
        self,
        world: World,
        cameras: Sequence[Camera],
        detector: SSDDetector,
        refresh_every: int = 40,
        merge_radius: float = 2.5,
        accept_unverified: bool = True,
        unverified_discount: float = 0.5,
        #: only detections at least this confident enter the shared pool —
        #: unverified hand-me-downs and low-confidence clutter are NOT
        #: re-shared, which prevents false positives from echoing through
        #: the network forever.
        share_threshold: float = 0.6,
        #: a failed verification keeps the peer box only when the sharing
        #: camera was at least this confident (fully-occluded real people).
        unverified_min_confidence: float = 0.75,
        monitor=None,
        rogues: Sequence = (),
    ) -> None:
        if not cameras:
            raise ValueError("need at least one camera")
        if refresh_every < 1:
            raise ValueError("refresh_every must be >= 1")
        if not 0.0 <= share_threshold <= 1.0:
            raise ValueError("share_threshold must be in [0, 1]")
        self.world = world
        self.cameras = list(cameras)
        self.detector = detector
        self.refresh_every = refresh_every
        self.merge_radius = merge_radius
        self.accept_unverified = accept_unverified
        self.unverified_discount = unverified_discount
        self.share_threshold = share_threshold
        self.unverified_min_confidence = unverified_min_confidence
        self.monitor = monitor
        self.rogues = list(rogues)

    # ------------------------------------------------------------------
    def _merge(self, detections: List[Detection]) -> List[Detection]:
        """Deduplicate detections that refer to the same world position."""
        kept: List[Detection] = []
        for det in sorted(detections, key=lambda d: -d.confidence):
            xy = np.array(det.world_xy)
            if all(
                np.linalg.norm(np.array(k.world_xy) - xy) > self.merge_radius
                for k in kept
            ):
                kept.append(det)
        return kept

    def run_individual(self, num_frames: int, dt: float = 1.0) -> List[CollaborativeFrameResult]:
        """Baseline: full pipeline on every camera, every frame."""
        results = []
        for frame in range(num_frames):
            t = frame * dt
            dets = {c.camera_id: self.detector.detect(c, self.world, t) for c in self.cameras}
            results.append(
                CollaborativeFrameResult(
                    t=t,
                    detections=dets,
                    latency_ms={
                        c.camera_id: self.detector.full_frame_latency_ms()
                        for c in self.cameras
                    },
                    mode={c.camera_id: "full" for c in self.cameras},
                )
            )
        return results

    def run_collaborative(
        self, num_frames: int, dt: float = 1.0
    ) -> List[CollaborativeFrameResult]:
        """Collaborative mode with box sharing and prior-guided inference."""
        results: List[CollaborativeFrameResult] = []
        previous: Dict[int, List[Detection]] = {c.camera_id: [] for c in self.cameras}
        n = len(self.cameras)
        for frame in range(num_frames):
            t = frame * dt
            frame_dets: Dict[int, List[Detection]] = {}
            latency: Dict[int, float] = {}
            mode: Dict[int, str] = {}

            # Which cameras run a full refresh this frame (staggered; all at
            # frame 0 so the system bootstraps with complete coverage).
            full_this_frame = {
                c.camera_id
                for i, c in enumerate(self.cameras)
                if frame == 0 or frame % self.refresh_every == i % self.refresh_every
            }

            # Shared pool: everything detected last frame by anyone, plus
            # this frame's refresh outputs, plus rogue injections.  Entries
            # are (source_id, world_xy, confidence).
            shared: List[Tuple[int, np.ndarray, float]] = []
            for cam_id, dets in previous.items():
                for d in dets:
                    if d.confidence >= self.share_threshold:
                        shared.append((cam_id, np.array(d.world_xy), d.confidence))
            for rogue in self.rogues:
                for xy in rogue.fake_boxes(self.world, t):
                    shared.append((rogue.camera_id, np.asarray(xy), 0.9))

            refreshed: Dict[int, List[Detection]] = {}
            for camera in self.cameras:
                if camera.camera_id in full_this_frame:
                    dets = self.detector.detect(camera, self.world, t)
                    refreshed[camera.camera_id] = dets
                    frame_dets[camera.camera_id] = self._merge(dets)
                    latency[camera.camera_id] = self.detector.full_frame_latency_ms()
                    mode[camera.camera_id] = "full"
            for cam_id, dets in refreshed.items():
                for d in dets:
                    if d.confidence >= self.share_threshold:
                        shared.append((cam_id, np.array(d.world_xy), d.confidence))

            for camera in self.cameras:
                if camera.camera_id in full_this_frame:
                    continue
                priors = [
                    (src, xy, conf)
                    for src, xy, conf in shared
                    if camera.in_fov(xy)
                    and (self.monitor is None or self.monitor.trusted(src))
                ]
                dets: List[Detection] = []
                for src, xy, conf in priors:
                    verified = self.detector.verify_prior(camera, self.world, t, xy)
                    if self.monitor is not None and src != camera.camera_id:
                        self.monitor.record(src, verified is not None)
                    if verified is not None:
                        dets.append(verified)
                    elif (
                        self.accept_unverified
                        and src != camera.camera_id
                        and conf >= self.unverified_min_confidence
                    ):
                        dets.append(
                            Detection(
                                camera_id=camera.camera_id,
                                bearing=camera.bearing_distance(xy)[0],
                                distance=camera.bearing_distance(xy)[1],
                                world_xy=(float(xy[0]), float(xy[1])),
                                confidence=conf * self.unverified_discount,
                                true_person=None,
                            )
                        )
                frame_dets[camera.camera_id] = self._merge(dets)
                latency[camera.camera_id] = self.detector.prior_frame_latency_ms(
                    len(priors)
                )
                mode[camera.camera_id] = "prior"

            previous = frame_dets
            results.append(
                CollaborativeFrameResult(
                    t=t, detections=frame_dets, latency_ms=latency, mode=mode
                )
            )
        return results

    # ------------------------------------------------------------------
    def evaluate(
        self, results: Sequence[CollaborativeFrameResult], tolerance: float = 3.5
    ) -> EvaluationSummary:
        """Score detection quality against ground truth visible in each FoV."""
        tp = fp = fn = 0
        counting_errors: List[float] = []
        latencies: List[float] = []
        for frame in results:
            positions = self.world.positions_at(frame.t)
            for camera in self.cameras:
                visible = np.array(
                    [p for p in positions if camera.in_fov(p)]
                ).reshape(-1, 2)
                dets = frame.detections[camera.camera_id]
                t_, f_, n_ = match_detections(dets, visible, tolerance)
                tp += t_
                fp += f_
                fn += n_
                true_count = len(visible)
                est_count = len(dets)
                counting_errors.append(
                    abs(est_count - true_count) / max(true_count, 1)
                )
                latencies.append(frame.latency_ms[camera.camera_id])
        precision = tp / (tp + fp) if tp + fp else 0.0
        recall = tp / (tp + fn) if tp + fn else 0.0
        f1 = (
            2 * precision * recall / (precision + recall)
            if precision + recall
            else 0.0
        )
        return EvaluationSummary(
            precision=precision,
            recall=recall,
            detection_accuracy=f1,
            counting_accuracy=max(0.0, 1.0 - float(np.mean(counting_errors))),
            mean_latency_ms=float(np.mean(latencies)),
            frames=len(results),
        )
