"""Simulated SSD-like people-detection pipeline with a calibrated latency model.

Per the paper's Sec. IV-B baseline: "executing 2 independent DNNs even on a
specialized edge node consumes ~550 msecs/frame" (MobileNet-SSD detection
followed by re-identification).  The simulator models, per camera per frame:

- **misses**: detection probability decays with distance, drops sharply for
  occluded targets, and is further reduced by a per-camera context artifact
  (poor lighting) — the effects the paper blames for individual cameras'
  lower accuracy;
- **false positives**: Poisson clutter inside the FoV;
- **localization noise** on (bearing, distance);
- **latency**: ``full_latency_ms`` for the 2-DNN path; ``prior_latency_ms``
  for the prior-guided path, where peer-supplied boxes let the camera run a
  light verification/tracking network instead of the full pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from .camera import Camera
from .world import World


@dataclass(frozen=True)
class Detection:
    """One detection, in camera-local coordinates plus the world remap."""

    camera_id: int
    bearing: float
    distance: float
    world_xy: Tuple[float, float]
    confidence: float
    #: ground-truth person id, None for false positives (hidden from
    #: algorithms — only the evaluator reads it).
    true_person: Optional[int] = None


@dataclass
class DetectorConfig:
    #: detection probability at zero distance for an unoccluded target.
    base_detect_prob: float = 0.97
    #: linear decay of detection probability per meter of distance.
    distance_decay: float = 0.006
    #: multiplier applied when the line of sight is occluded.
    occlusion_factor: float = 0.1
    #: per-camera lighting artifact: multiplier in [1-artifact, 1].
    lighting_artifact: float = 0.2
    #: expected false positives per frame per camera.
    clutter_rate: float = 0.35
    #: standard deviation of bearing (radians) and relative distance noise.
    bearing_noise: float = 0.02
    distance_noise: float = 0.04
    #: latency of the full 2-DNN pipeline (detection + re-identification).
    full_latency_ms: float = 550.0
    #: latency of the prior-guided verification path.
    prior_latency_ms: float = 12.0
    #: per-shared-box verification cost added to the prior path.
    per_prior_ms: float = 0.15

    def __post_init__(self) -> None:
        if not 0 < self.base_detect_prob <= 1:
            raise ValueError("base_detect_prob must be in (0, 1]")
        if self.full_latency_ms <= 0 or self.prior_latency_ms <= 0:
            raise ValueError("latencies must be positive")


class SSDDetector:
    """Per-camera detection simulator."""

    def __init__(self, config: Optional[DetectorConfig] = None, seed: int = 0) -> None:
        self.config = config or DetectorConfig()
        self._rng = np.random.default_rng(seed)
        self._lighting: dict = {}

    def _camera_lighting(self, camera_id: int) -> float:
        """Deterministic per-camera lighting multiplier."""
        if camera_id not in self._lighting:
            rng = np.random.default_rng(1000 + camera_id)
            self._lighting[camera_id] = 1.0 - rng.uniform(0, self.config.lighting_artifact)
        return self._lighting[camera_id]

    def detection_probability(
        self, camera: Camera, point: np.ndarray, world: World
    ) -> float:
        """Probability this camera detects a person at ``point`` this frame."""
        if not camera.in_fov(point):
            return 0.0
        _, distance = camera.bearing_distance(point)
        p = self.config.base_detect_prob - self.config.distance_decay * distance
        p *= self._camera_lighting(camera.camera_id)
        if not world.line_of_sight(camera.pose.position, point):
            p *= self.config.occlusion_factor
        return float(np.clip(p, 0.0, 1.0))

    # ------------------------------------------------------------------
    def detect(self, camera: Camera, world: World, t: float) -> List[Detection]:
        """Run the full detection DNN on this camera's current frame."""
        cfg = self.config
        detections: List[Detection] = []
        positions = world.positions_at(t)
        for person_id, point in enumerate(positions):
            p = self.detection_probability(camera, point, world)
            if self._rng.random() >= p:
                continue
            bearing, distance = camera.bearing_distance(point)
            bearing += self._rng.normal(0, cfg.bearing_noise)
            distance *= 1.0 + self._rng.normal(0, cfg.distance_noise)
            world_xy = camera.to_world(bearing, distance)
            detections.append(
                Detection(
                    camera_id=camera.camera_id,
                    bearing=float(bearing),
                    distance=float(distance),
                    world_xy=(float(world_xy[0]), float(world_xy[1])),
                    confidence=float(np.clip(p + self._rng.normal(0, 0.05), 0.05, 0.99)),
                    true_person=person_id,
                )
            )
        # Clutter false positives, uniform over the FoV wedge.
        for _ in range(self._rng.poisson(cfg.clutter_rate)):
            bearing = self._rng.uniform(-camera.pose.half_fov, camera.pose.half_fov)
            distance = self._rng.uniform(2.0, camera.pose.max_range)
            world_xy = camera.to_world(bearing, distance)
            detections.append(
                Detection(
                    camera_id=camera.camera_id,
                    bearing=float(bearing),
                    distance=float(distance),
                    world_xy=(float(world_xy[0]), float(world_xy[1])),
                    confidence=float(self._rng.uniform(0.3, 0.7)),
                    true_person=None,
                )
            )
        return detections

    def verify_prior(
        self, camera: Camera, world: World, t: float, prior_xy: np.ndarray
    ) -> Optional[Detection]:
        """Prior-guided path: verify a peer-shared box inside a small ROI.

        Much cheaper than :meth:`detect` and much more sensitive inside the
        ROI — the verification network only needs to confirm/localize, not
        search.  Returns a detection when a real person is near the prior.
        """
        cfg = self.config
        prior_xy = np.asarray(prior_xy, dtype=np.float64)
        if not camera.in_fov(prior_xy):
            return None
        positions = world.positions_at(t)
        if len(positions) == 0:
            return None
        dists = np.linalg.norm(positions - prior_xy, axis=1)
        nearest = int(dists.argmin())
        if dists[nearest] > 4.0:
            return None
        point = positions[nearest]
        if not camera.in_fov(point):
            return None
        # ROI verification recovers heavily-occluded targets: only a full
        # occlusion (probability factor below) defeats it.
        p = 0.95
        if not world.line_of_sight(camera.pose.position, point):
            p = 0.55
        if self._rng.random() >= p:
            return None
        bearing, distance = camera.bearing_distance(point)
        bearing += self._rng.normal(0, cfg.bearing_noise / 2)
        distance *= 1.0 + self._rng.normal(0, cfg.distance_noise / 2)
        world_xy = camera.to_world(bearing, distance)
        return Detection(
            camera_id=camera.camera_id,
            bearing=float(bearing),
            distance=float(distance),
            world_xy=(float(world_xy[0]), float(world_xy[1])),
            confidence=0.9,
            true_person=nearest,
        )

    # ------------------------------------------------------------------
    def full_frame_latency_ms(self) -> float:
        return self.config.full_latency_ms

    def prior_frame_latency_ms(self, num_priors: int) -> float:
        return self.config.prior_latency_ms + self.config.per_prior_ms * num_priors
