"""2-D campus world: pedestrians on waypoint trajectories plus occluders.

The PETS2009 substitute.  Everything is seeded and deterministic: given the
same config, ``positions_at(t)`` returns identical ground truth — which is
what lets the Table IV benchmark measure detection accuracy exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class Occluder:
    """A circular obstacle (tree, kiosk) blocking lines of sight."""

    x: float
    y: float
    radius: float

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ValueError("occluder radius must be positive")

    def blocks(self, a: np.ndarray, b: np.ndarray) -> bool:
        """Does the segment a->b pass through this occluder?"""
        center = np.array([self.x, self.y])
        d = b - a
        length_sq = float(d @ d)
        if length_sq == 0.0:
            return float(np.linalg.norm(a - center)) < self.radius
        t = float(np.clip(((center - a) @ d) / length_sq, 0.0, 1.0))
        closest = a + t * d
        return float(np.linalg.norm(closest - center)) < self.radius


@dataclass
class WorldConfig:
    width: float = 100.0
    height: float = 100.0
    num_people: int = 12
    num_occluders: int = 5
    occluder_radius: Tuple[float, float] = (2.0, 5.0)
    speed_range: Tuple[float, float] = (0.8, 1.8)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("world dimensions must be positive")
        if self.num_people < 0 or self.num_occluders < 0:
            raise ValueError("counts must be non-negative")


class Pedestrian:
    """A person walking between random waypoints at constant speed."""

    def __init__(self, person_id: int, rng: np.random.Generator,
                 config: WorldConfig, num_waypoints: int = 8) -> None:
        self.person_id = person_id
        self.speed = float(rng.uniform(*config.speed_range))
        self.waypoints = np.column_stack(
            [
                rng.uniform(0, config.width, num_waypoints),
                rng.uniform(0, config.height, num_waypoints),
            ]
        )
        # Cumulative path lengths let position_at run in O(#waypoints).
        deltas = np.diff(self.waypoints, axis=0)
        seg_lengths = np.linalg.norm(deltas, axis=1)
        self._cum = np.concatenate([[0.0], np.cumsum(seg_lengths)])

    @property
    def path_length(self) -> float:
        return float(self._cum[-1])

    def position_at(self, t: float) -> np.ndarray:
        """Position at time ``t`` (loops over the waypoint cycle)."""
        if self.path_length == 0.0:
            return self.waypoints[0].copy()
        s = (t * self.speed) % self.path_length
        idx = int(np.searchsorted(self._cum, s, side="right") - 1)
        idx = min(idx, len(self.waypoints) - 2)
        seg_start, seg_end = self.waypoints[idx], self.waypoints[idx + 1]
        seg_len = self._cum[idx + 1] - self._cum[idx]
        frac = (s - self._cum[idx]) / seg_len if seg_len > 0 else 0.0
        return seg_start + frac * (seg_end - seg_start)


class World:
    """The simulated campus."""

    def __init__(self, config: Optional[WorldConfig] = None) -> None:
        self.config = config or WorldConfig()
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        self.people = [Pedestrian(i, rng, cfg) for i in range(cfg.num_people)]
        self.occluders = [
            Occluder(
                x=float(rng.uniform(0.15 * cfg.width, 0.85 * cfg.width)),
                y=float(rng.uniform(0.15 * cfg.height, 0.85 * cfg.height)),
                radius=float(rng.uniform(*cfg.occluder_radius)),
            )
            for _ in range(cfg.num_occluders)
        ]

    def positions_at(self, t: float) -> np.ndarray:
        """(num_people, 2) ground-truth positions at time ``t``."""
        if not self.people:
            return np.zeros((0, 2))
        return np.stack([p.position_at(t) for p in self.people])

    def line_of_sight(self, a: np.ndarray, b: np.ndarray) -> bool:
        """True when no occluder blocks the segment a->b."""
        a = np.asarray(a, dtype=np.float64)
        b = np.asarray(b, dtype=np.float64)
        return not any(occ.blocks(a, b) for occ in self.occluders)
