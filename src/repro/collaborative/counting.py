"""People counting across camera regions (Sec. IV's first application).

"...applications such as people counting (estimating the aggregated
occupancy in different parts of the campus)..."

Counting from multiple overlapping cameras is not just summing per-camera
detections: a person seen by three cameras must count once.  This module
aggregates shared (world-remapped) detections into region-level occupancy:

- :class:`RegionGrid` — partitions the campus into rectangular regions;
- :func:`deduplicate_detections` — cross-camera merging of detections that
  refer to the same person (greedy radius clustering, highest confidence
  wins — the same rule the collaborative pipeline uses per camera, applied
  network-wide);
- :class:`OccupancyEstimator` — per-frame and time-averaged region counts,
  with evaluation against the simulator's ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .collaboration import CollaborativeFrameResult
from .detector import Detection
from .world import World


@dataclass(frozen=True)
class RegionGrid:
    """A rows x cols partition of the world rectangle."""

    width: float
    height: float
    rows: int = 2
    cols: int = 2

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("grid dimensions must be positive")
        if self.rows < 1 or self.cols < 1:
            raise ValueError("need at least one row and one column")

    @property
    def num_regions(self) -> int:
        return self.rows * self.cols

    def region_of(self, xy: np.ndarray) -> int:
        """Region index of a world point (points outside clamp to the edge)."""
        x, y = float(xy[0]), float(xy[1])
        col = int(np.clip(x / self.width * self.cols, 0, self.cols - 1))
        row = int(np.clip(y / self.height * self.rows, 0, self.rows - 1))
        return row * self.cols + col

    def region_name(self, index: int) -> str:
        if not 0 <= index < self.num_regions:
            raise IndexError(f"region {index} out of range")
        row, col = divmod(index, self.cols)
        return f"R{row}{col}"


def deduplicate_detections(
    detections: Sequence[Detection], merge_radius: float = 2.5
) -> List[Detection]:
    """Merge detections (across cameras) referring to the same person."""
    if merge_radius <= 0:
        raise ValueError("merge_radius must be positive")
    kept: List[Detection] = []
    for det in sorted(detections, key=lambda d: -d.confidence):
        xy = np.array(det.world_xy)
        if all(
            np.linalg.norm(np.array(k.world_xy) - xy) > merge_radius
            for k in kept
        ):
            kept.append(det)
    return kept


@dataclass
class OccupancyReport:
    """Counting quality over an evaluation window."""

    #: (num_frames, num_regions) estimated counts.
    estimated: np.ndarray
    #: (num_frames, num_regions) ground-truth counts.
    truth: np.ndarray

    @property
    def mean_absolute_error(self) -> float:
        return float(np.abs(self.estimated - self.truth).mean())

    @property
    def counting_accuracy(self) -> float:
        """1 - normalized absolute error, clamped at 0 (Table IV's metric)."""
        denom = np.maximum(self.truth, 1)
        return float(max(0.0, 1.0 - (np.abs(self.estimated - self.truth) / denom).mean()))

    @property
    def total_count_bias(self) -> float:
        """Mean (estimated - true) total occupancy; sign shows over/under-count."""
        return float((self.estimated.sum(axis=1) - self.truth.sum(axis=1)).mean())


class OccupancyEstimator:
    """Region-occupancy estimation from collaborative frame results."""

    def __init__(self, world: World, grid: RegionGrid, merge_radius: float = 2.5) -> None:
        self.world = world
        self.grid = grid
        self.merge_radius = merge_radius

    def counts_for_frame(self, frame: CollaborativeFrameResult) -> np.ndarray:
        """Per-region deduplicated head count for one frame."""
        all_dets = [d for dets in frame.detections.values() for d in dets]
        unique = deduplicate_detections(all_dets, self.merge_radius)
        counts = np.zeros(self.grid.num_regions, dtype=np.int64)
        for det in unique:
            counts[self.grid.region_of(np.array(det.world_xy))] += 1
        return counts

    def truth_for_time(self, t: float) -> np.ndarray:
        counts = np.zeros(self.grid.num_regions, dtype=np.int64)
        for point in self.world.positions_at(t):
            counts[self.grid.region_of(point)] += 1
        return counts

    def evaluate(self, frames: Sequence[CollaborativeFrameResult]) -> OccupancyReport:
        if not frames:
            raise ValueError("need at least one frame")
        estimated = np.stack([self.counts_for_frame(f) for f in frames])
        truth = np.stack([self.truth_for_time(f.t) for f in frames])
        return OccupancyReport(estimated=estimated, truth=truth)
