"""Ready-made collaborative-sensing scenarios.

Two deployments the paper describes:

- :func:`campus_quad` — the Table IV setup: cameras ringing a quad with
  heavily overlapping FoVs (concurrent correlation, lag 0);
- :func:`corridor` — the Sec. IV-C brokering story: "two corridors at two
  ends of a campus building ... are likely to observe the same individuals
  20 seconds apart".  People stream down a long corridor past camera A and,
  ``transit_time`` later, past camera B; the FoVs do not overlap, so only a
  *lagged* correlation exists for the broker to find.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from .camera import Camera, CameraPose, ring_of_cameras
from .world import Pedestrian, World, WorldConfig


def campus_quad(
    num_cameras: int = 8,
    num_people: int = 12,
    num_occluders: int = 6,
    seed: int = 2,
) -> Tuple[World, List[Camera]]:
    """The Table IV deployment: a ring of overlapping cameras."""
    world = World(
        WorldConfig(num_people=num_people, num_occluders=num_occluders, seed=seed)
    )
    return world, ring_of_cameras(num_cameras, world)


class _CorridorWalker(Pedestrian):
    """A pedestrian pacing the corridor at constant speed, looping."""

    def __init__(self, person_id: int, offset: float, speed: float,
                 corridor_length: float, y: float) -> None:
        # Bypass Pedestrian's random waypoints entirely.
        self.person_id = person_id
        self.speed = speed
        self._offset = offset
        self._length = corridor_length
        self._y = y

    @property
    def path_length(self) -> float:
        return self._length

    def position_at(self, t: float) -> np.ndarray:
        x = (self._offset + t * self.speed) % self._length
        return np.array([x, self._y])


@dataclass(frozen=True)
class CorridorScenario:
    world: World
    camera_a: Camera
    camera_b: Camera
    #: seconds a walker needs from camera A's FoV center to camera B's.
    transit_time: float

    @property
    def cameras(self) -> List[Camera]:
        return [self.camera_a, self.camera_b]


def corridor(
    num_people: int = 6,
    transit_time: float = 20.0,
    walker_speed: float = 2.0,
    fov_degrees: float = 40.0,
    seed: int = 0,
) -> CorridorScenario:
    """Build the lagged-correlation corridor.

    Two narrow-FoV cameras watch spots ``transit_time * walker_speed``
    apart along a corridor; walkers enter at staggered offsets and loop.
    The cameras' FoVs are disjoint, so concurrent count correlation is
    ~zero while the correlation at the transit lag is strong.
    """
    if num_people < 1 or transit_time <= 0 or walker_speed <= 0:
        raise ValueError("invalid corridor parameters")
    spacing = transit_time * walker_speed
    length = spacing * 3.0  # room before, between and after the cameras
    y = 10.0
    world = World(WorldConfig(width=length, height=20.0, num_people=0,
                              num_occluders=0, seed=seed))
    rng = np.random.default_rng(seed)
    world.people = [
        _CorridorWalker(
            person_id=i,
            offset=float(rng.uniform(0, length)),
            speed=walker_speed,
            corridor_length=length,
            y=y,
        )
        for i in range(num_people)
    ]
    # Cameras hang on the corridor wall looking straight down at a spot.
    ax = spacing
    bx = 2 * spacing
    camera_a = Camera(0, CameraPose(x=ax, y=0.0, orientation=np.pi / 2,
                                    fov_degrees=fov_degrees, max_range=12.0))
    camera_b = Camera(1, CameraPose(x=bx, y=0.0, orientation=np.pi / 2,
                                    fov_degrees=fov_degrees, max_range=12.0))
    return CorridorScenario(
        world=world, camera_a=camera_a, camera_b=camera_b,
        transit_time=transit_time,
    )
