"""Cross-camera people tracking (Sec. IV's second application).

Table IV's workload includes "people tracking (capturing the movement
trajectory of a specific individual throughout the campus)", and Sec. IV-C
raises the corridor scenario: "two corridors at two ends of a campus
building are likely to observe the same individuals 20 seconds apart",
which the broker should exploit by instructing cameras "to apply the
collaborative tracking mechanism ... but with a time lag of 20 seconds".

This module provides:

- :class:`Track` / :class:`Tracker` — per-camera nearest-neighbour
  association of frame detections into world-coordinate tracks with a
  constant-velocity motion gate;
- :func:`stitch_tracks` — cross-camera track handover: tracks whose
  endpoints align in space and time (optionally with a known lag) are
  merged into campus-wide trajectories;
- :func:`tracking_metrics` — MOTA-style scores against the simulator's
  ground-truth trajectories (matches, misses, false tracks, identity
  switches).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .collaboration import CollaborativeFrameResult
from .world import World


@dataclass
class TrackPoint:
    t: float
    xy: np.ndarray
    #: evaluator-only ground truth; None for clutter-born points.
    true_person: Optional[int] = None


@dataclass
class Track:
    """A sequence of associated detections in world coordinates."""

    track_id: int
    camera_id: int
    points: List[TrackPoint] = field(default_factory=list)

    @property
    def start_time(self) -> float:
        return self.points[0].t

    @property
    def end_time(self) -> float:
        return self.points[-1].t

    @property
    def length(self) -> int:
        return len(self.points)

    def position_at_end(self) -> np.ndarray:
        return self.points[-1].xy

    def velocity(self) -> np.ndarray:
        """Average velocity over the last few points (constant-velocity model)."""
        if self.length < 2:
            return np.zeros(2)
        tail = self.points[-min(4, self.length):]
        dt = tail[-1].t - tail[0].t
        if dt <= 0:
            return np.zeros(2)
        return (tail[-1].xy - tail[0].xy) / dt

    def predict(self, t: float) -> np.ndarray:
        """Constant-velocity extrapolation to time ``t``."""
        return self.position_at_end() + self.velocity() * (t - self.end_time)

    def dominant_person(self) -> Optional[int]:
        """Ground-truth person this track mostly follows (evaluator only)."""
        ids = [p.true_person for p in self.points if p.true_person is not None]
        if not ids:
            return None
        values, counts = np.unique(ids, return_counts=True)
        return int(values[counts.argmax()])


class Tracker:
    """Greedy nearest-neighbour tracker with a motion gate.

    Detections are associated to the track whose constant-velocity
    prediction is closest, within ``gate`` meters; unmatched detections
    start new tracks; tracks silent for longer than ``max_silence`` frames
    are closed.
    """

    def __init__(self, gate: float = 4.0, max_silence: float = 3.0) -> None:
        if gate <= 0 or max_silence <= 0:
            raise ValueError("gate and max_silence must be positive")
        self.gate = gate
        self.max_silence = max_silence
        self._counter = itertools.count()

    def build_tracks(
        self, frames: Sequence[CollaborativeFrameResult], camera_id: int
    ) -> List[Track]:
        """Associate one camera's detections across frames into tracks."""
        open_tracks: List[Track] = []
        closed: List[Track] = []
        for frame in frames:
            detections = frame.detections.get(camera_id, [])
            now = frame.t
            # Close stale tracks.
            still_open: List[Track] = []
            for track in open_tracks:
                if now - track.end_time > self.max_silence:
                    closed.append(track)
                else:
                    still_open.append(track)
            open_tracks = still_open

            unmatched = list(detections)
            # Greedy global matching by predicted distance.
            pairs: List[Tuple[float, Track, object]] = []
            for track in open_tracks:
                predicted = track.predict(now)
                for det in unmatched:
                    dist = float(np.linalg.norm(np.array(det.world_xy) - predicted))
                    if dist <= self.gate:
                        pairs.append((dist, track, det))
            pairs.sort(key=lambda p: p[0])
            used_tracks: set = set()
            used_dets: set = set()
            for dist, track, det in pairs:
                if id(track) in used_tracks or id(det) in used_dets:
                    continue
                track.points.append(
                    TrackPoint(t=now, xy=np.array(det.world_xy),
                               true_person=det.true_person)
                )
                used_tracks.add(id(track))
                used_dets.add(id(det))
            for det in unmatched:
                if id(det) in used_dets:
                    continue
                track = Track(track_id=next(self._counter), camera_id=camera_id)
                track.points.append(
                    TrackPoint(t=now, xy=np.array(det.world_xy),
                               true_person=det.true_person)
                )
                open_tracks.append(track)
        return closed + open_tracks


def stitch_tracks(
    tracks: Sequence[Track],
    max_gap_s: float = 4.0,
    max_distance: float = 6.0,
    lag_s: float = 0.0,
) -> List[List[Track]]:
    """Merge tracks across cameras into campus-wide trajectories.

    Track B continues track A when B starts within ``max_gap_s`` after A
    ends (shifted by ``lag_s`` for corridor-style lagged pairs) and B's
    start lies within ``max_distance`` of A's constant-velocity prediction.
    Returns groups of tracks, each group one stitched trajectory.
    """
    if max_gap_s <= 0 or max_distance <= 0:
        raise ValueError("max_gap_s and max_distance must be positive")
    ordered = sorted(tracks, key=lambda t: t.start_time)
    successor_of: Dict[int, int] = {}
    has_predecessor: set = set()
    for i, a in enumerate(ordered):
        best: Optional[Tuple[float, int]] = None
        for j, b in enumerate(ordered):
            if i == j or id(b) in has_predecessor:
                continue
            gap = b.start_time - (a.end_time + lag_s)
            if not 0.0 <= gap <= max_gap_s:
                continue
            predicted = a.predict(b.start_time - lag_s)
            dist = float(np.linalg.norm(b.points[0].xy - predicted))
            if dist > max_distance:
                continue
            if best is None or dist < best[0]:
                best = (dist, j)
        if best is not None:
            successor_of[i] = best[1]
            has_predecessor.add(id(ordered[best[1]]))

    # Walk chains.
    groups: List[List[Track]] = []
    starts = [i for i in range(len(ordered)) if id(ordered[i]) not in has_predecessor]
    for start in starts:
        chain = [ordered[start]]
        cursor = start
        while cursor in successor_of:
            cursor = successor_of[cursor]
            chain.append(ordered[cursor])
        groups.append(chain)
    return groups


@dataclass
class TrackingMetrics:
    """MOTA-style summary of tracking quality."""

    num_tracks: int
    num_trajectories: int
    #: fraction of track points whose ground-truth person matches the
    #: track's dominant person (track purity).
    purity: float
    #: fraction of ground-truth people covered by at least one track.
    person_coverage: float
    #: identity switches: extra dominant-person changes inside stitched
    #: trajectories.
    identity_switches: int


def tracking_metrics(
    groups: Sequence[Sequence[Track]], world: World
) -> TrackingMetrics:
    """Score stitched trajectories against ground truth."""
    all_tracks = [t for g in groups for t in g]
    if not all_tracks:
        return TrackingMetrics(0, 0, 0.0, 0.0, 0)
    pure_points = 0
    total_points = 0
    covered: set = set()
    switches = 0
    for group in groups:
        dominant_sequence: List[int] = []
        for track in group:
            dom = track.dominant_person()
            if dom is not None:
                covered.add(dom)
                if not dominant_sequence or dominant_sequence[-1] != dom:
                    dominant_sequence.append(dom)
            for point in track.points:
                total_points += 1
                if point.true_person is not None and point.true_person == dom:
                    pure_points += 1
        switches += max(0, len(dominant_sequence) - 1)
    num_people = len(world.people)
    return TrackingMetrics(
        num_tracks=len(all_tracks),
        num_trajectories=len(groups),
        purity=pure_points / max(total_points, 1),
        person_coverage=len(covered) / max(num_people, 1),
        identity_switches=switches,
    )
