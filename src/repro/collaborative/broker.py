"""Collaboration brokering (Sec. IV-C): discover FoV overlap autonomously.

"By operating on the metadata & higher-level inferences from individual
nodes, Eugene can discover and establish the relevant collaboration
parameters — e.g., instructing cameras A & B to apply the collaborative
tracking mechanism ... but with a time lag of 20 seconds."

The broker never sees camera poses.  It only sees each camera's per-frame
*inference stream* (here: detected-people counts over time) and finds camera
pairs whose streams are significantly correlated at some lag: concurrent
overlap shows up at lag 0; corridor-style temporal correlation shows up at
the transit lag.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class BrokerResult:
    """One discovered collaboration: cameras (a, b) correlated at ``lag``."""

    camera_a: int
    camera_b: int
    lag: int
    correlation: float


def _lagged_correlation(a: np.ndarray, b: np.ndarray, lag: int) -> float:
    """Pearson correlation of a[t] with b[t + lag]."""
    if lag > 0:
        a_seg, b_seg = a[:-lag], b[lag:]
    elif lag < 0:
        a_seg, b_seg = a[-lag:], b[:lag]
    else:
        a_seg, b_seg = a, b
    if len(a_seg) < 3 or a_seg.std() == 0 or b_seg.std() == 0:
        return 0.0
    return float(np.corrcoef(a_seg, b_seg)[0, 1])


class CollaborationBroker:
    """Finds correlated camera pairs from count streams.

    Parameters
    ----------
    max_lag:
        Largest time lag (frames) searched in either direction.
    threshold:
        Minimum |correlation| for a pair to be reported.
    """

    def __init__(self, max_lag: int = 0, threshold: float = 0.35) -> None:
        if max_lag < 0:
            raise ValueError("max_lag must be non-negative")
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        self.max_lag = max_lag
        self.threshold = threshold

    def discover(self, streams: Dict[int, np.ndarray]) -> List[BrokerResult]:
        """Return significant pairs sorted by descending correlation.

        ``streams`` maps camera id to a 1-D per-frame count series; all
        series must have equal length.
        """
        ids = sorted(streams)
        if len(ids) < 2:
            return []
        lengths = {len(streams[i]) for i in ids}
        if len(lengths) != 1:
            raise ValueError("all streams must have the same length")
        results: List[BrokerResult] = []
        for i, a in enumerate(ids):
            for b in ids[i + 1 :]:
                sa = np.asarray(streams[a], dtype=np.float64)
                sb = np.asarray(streams[b], dtype=np.float64)
                best_lag, best_corr = 0, 0.0
                for lag in range(-self.max_lag, self.max_lag + 1):
                    corr = _lagged_correlation(sa, sb, lag)
                    if abs(corr) > abs(best_corr):
                        best_lag, best_corr = lag, corr
                if abs(best_corr) >= self.threshold:
                    results.append(
                        BrokerResult(
                            camera_a=a, camera_b=b, lag=best_lag,
                            correlation=best_corr,
                        )
                    )
        return sorted(results, key=lambda r: -abs(r.correlation))

    @staticmethod
    def count_streams(results: Sequence, cameras: Sequence) -> Dict[int, np.ndarray]:
        """Build per-camera count streams from pipeline frame results."""
        streams: Dict[int, List[int]] = {c.camera_id: [] for c in cameras}
        for frame in results:
            for cam_id, dets in frame.detections.items():
                streams[cam_id].append(len(dets))
        return {cid: np.array(v, dtype=np.float64) for cid, v in streams.items()}
