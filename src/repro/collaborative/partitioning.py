"""Client/server partitioning of staged inference models (Sec. IV-A).

"In performing inference, it may be possible to execute some stages of the
neural network on the client, leaving other stages to execute on the server.
If the confidence in results obtained on the client is sufficiently high, no
subsequent offloading to the server is needed. ...  An ideal partitioning
should maximally reduce client reliance on remote processing on the server,
while observing client-side resource constraints as well as communication
bandwidth constraints between the client and server."

:class:`PartitionPlanner` solves exactly that: given

- per-stage execution costs on the client and on the server,
- the size of the intermediate feature map at every stage boundary,
- the client->server bandwidth and round-trip latency,
- the probability that inference *early-exits* at each stage (derived from
  observed confidence curves and a confidence threshold),

it enumerates every cut point (stages ``0..cut-1`` on the client, the rest
on the server) and returns the cut minimizing expected end-to-end latency,
subject to a client compute budget and an optional latency constraint.

The early-exit coupling is what makes this more than a classic Neurosurgeon
split: executing more stages on the client costs client compute but lets
high-confidence tasks skip the uplink entirely.

:func:`plan_chain_partition` extends the same idea to a chain of devices
(sensor -> gateway -> server), assigning a contiguous block of stages per
hop by dynamic programming.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class LinkSpec:
    """A communication link between two placement tiers."""

    bandwidth_bytes_per_s: float
    rtt_s: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0 or self.rtt_s < 0:
            raise ValueError("invalid link specification")

    def transfer_time(self, num_bytes: float) -> float:
        return self.rtt_s + num_bytes / self.bandwidth_bytes_per_s


@dataclass
class PartitionPlan:
    """Result of a two-tier partitioning decision."""

    cut: int  # stages [0, cut) on the client, [cut, S) on the server
    expected_latency_s: float
    client_compute_s: float
    offload_probability: float
    per_cut_latencies: Tuple[float, ...]

    @property
    def fully_local(self) -> bool:
        return self.offload_probability == 0.0

    @property
    def fully_remote(self) -> bool:
        return self.cut == 0


def exit_probabilities(
    stage_confidences: np.ndarray, threshold: float
) -> np.ndarray:
    """P(task first reaches ``confidence >= threshold`` at stage s).

    Computed from a (num_stages, N) confidence matrix; the final entry
    absorbs tasks that never cross the threshold (they run every stage).
    """
    stage_confidences = np.asarray(stage_confidences, dtype=np.float64)
    if stage_confidences.ndim != 2:
        raise ValueError("stage_confidences must be (num_stages, N)")
    num_stages, n = stage_confidences.shape
    if n == 0:
        raise ValueError("need at least one sample")
    first_exit = np.full(n, num_stages - 1)
    undecided = np.ones(n, dtype=bool)
    for s in range(num_stages):
        crossing = undecided & (stage_confidences[s] >= threshold)
        first_exit[crossing] = s
        undecided &= ~crossing
    return np.bincount(first_exit, minlength=num_stages) / n


class PartitionPlanner:
    """Two-tier (client/server) partition optimizer for a staged model."""

    def __init__(
        self,
        client_stage_costs_s: Sequence[float],
        server_stage_costs_s: Sequence[float],
        boundary_feature_bytes: Sequence[float],
        input_bytes: float,
        link: LinkSpec,
        exit_probs: Optional[Sequence[float]] = None,
    ) -> None:
        """
        Parameters
        ----------
        client_stage_costs_s / server_stage_costs_s:
            Execution time of each stage on each tier (same length S).
        boundary_feature_bytes:
            Size of the intermediate representation after each stage
            (length S; entry s is what must be uplinked when cutting after
            stage s+1... i.e. cut = s+1 transmits boundary_feature_bytes[s]).
        input_bytes:
            Size of the raw input (transmitted when cut = 0).
        exit_probs:
            Early-exit distribution over stages (length S, sums to 1).
            Defaults to "never exits early" (all mass on the last stage).
        """
        self.client_costs = [float(c) for c in client_stage_costs_s]
        self.server_costs = [float(c) for c in server_stage_costs_s]
        self.boundary_bytes = [float(b) for b in boundary_feature_bytes]
        self.input_bytes = float(input_bytes)
        self.link = link
        s = len(self.client_costs)
        if not (len(self.server_costs) == len(self.boundary_bytes) == s) or s == 0:
            raise ValueError("cost/size vectors must share a positive length")
        if any(c <= 0 for c in self.client_costs + self.server_costs):
            raise ValueError("stage costs must be positive")
        if exit_probs is None:
            probs = np.zeros(s)
            probs[-1] = 1.0
        else:
            probs = np.asarray(exit_probs, dtype=np.float64)
            if probs.shape != (s,) or probs.min() < 0 or abs(probs.sum() - 1) > 1e-6:
                raise ValueError("exit_probs must be a length-S distribution")
        self.exit_probs = probs
        self.num_stages = s

    # ------------------------------------------------------------------
    def _uplink_bytes(self, cut: int) -> float:
        if cut == 0:
            return self.input_bytes
        return self.boundary_bytes[cut - 1]

    def expected_latency(self, cut: int) -> Tuple[float, float, float]:
        """(expected latency, client compute, offload probability) at ``cut``.

        A task exits at stage e with probability ``exit_probs[e]``:

        - e < cut: entirely client-side; latency = client cost of stages 0..e;
        - e >= cut: client runs 0..cut-1, uplinks the boundary features, and
          the server runs cut..e.
        """
        if not 0 <= cut <= self.num_stages:
            raise ValueError(f"cut must be in [0, {self.num_stages}]")
        client_prefix = np.concatenate([[0.0], np.cumsum(self.client_costs)])
        server_prefix = np.concatenate([[0.0], np.cumsum(self.server_costs)])
        total = 0.0
        client_compute = 0.0
        offload_prob = 0.0
        for exit_stage, prob in enumerate(self.exit_probs):
            if prob == 0.0:
                continue
            if exit_stage < cut:
                latency = client_prefix[exit_stage + 1]
                client_compute += prob * client_prefix[exit_stage + 1]
            else:
                transfer = self.link.transfer_time(self._uplink_bytes(cut))
                latency = (
                    client_prefix[cut]
                    + transfer
                    + (server_prefix[exit_stage + 1] - server_prefix[cut])
                )
                client_compute += prob * client_prefix[cut]
                offload_prob += prob
            total += prob * latency
        return total, client_compute, offload_prob

    def plan(
        self,
        client_compute_budget_s: Optional[float] = None,
        latency_constraint_s: Optional[float] = None,
    ) -> PartitionPlan:
        """Pick the feasible cut minimizing expected latency.

        Raises ``ValueError`` when no cut satisfies both constraints.
        """
        candidates: List[Tuple[float, int, float, float]] = []
        latencies = []
        for cut in range(self.num_stages + 1):
            latency, compute, offload = self.expected_latency(cut)
            latencies.append(latency)
            if client_compute_budget_s is not None and compute > client_compute_budget_s:
                continue
            if latency_constraint_s is not None and latency > latency_constraint_s:
                continue
            candidates.append((latency, cut, compute, offload))
        if not candidates:
            raise ValueError("no cut point satisfies the given constraints")
        latency, cut, compute, offload = min(candidates)
        return PartitionPlan(
            cut=cut,
            expected_latency_s=latency,
            client_compute_s=compute,
            offload_probability=offload,
            per_cut_latencies=tuple(latencies),
        )


def plan_chain_partition(
    tier_stage_costs_s: Sequence[Sequence[float]],
    boundary_feature_bytes: Sequence[float],
    input_bytes: float,
    links: Sequence[LinkSpec],
) -> Tuple[List[int], float]:
    """Assign contiguous stage blocks across a chain of tiers by DP.

    ``tier_stage_costs_s[t][s]`` is stage ``s``'s cost on tier ``t``; tiers
    are ordered client-first.  ``links[t]`` connects tier ``t`` to ``t+1``.
    No early exits here (the conservative full-execution plan).

    Returns ``(cuts, total_latency)`` where ``cuts[t]`` is the first stage
    executed at tier ``t+1`` (monotone non-decreasing boundaries).
    """
    num_tiers = len(tier_stage_costs_s)
    if num_tiers < 1:
        raise ValueError("need at least one tier")
    if len(links) != num_tiers - 1:
        raise ValueError("need exactly one link between consecutive tiers")
    num_stages = len(tier_stage_costs_s[0])
    if any(len(costs) != num_stages for costs in tier_stage_costs_s):
        raise ValueError("every tier must cost all stages")

    def block_cost(tier: int, start: int, stop: int) -> float:
        return float(sum(tier_stage_costs_s[tier][start:stop]))

    def boundary_size(stage: int) -> float:
        return input_bytes if stage == 0 else float(boundary_feature_bytes[stage - 1])

    # dp[(tier, start)] = minimal latency executing stages [start, S) on
    # tiers tier..T-1, given the data currently sits at `tier`.
    from functools import lru_cache

    @lru_cache(maxsize=None)
    def dp(tier: int, start: int) -> Tuple[float, Tuple[int, ...]]:
        if tier == num_tiers - 1:
            return block_cost(tier, start, num_stages), ()
        best: Optional[Tuple[float, Tuple[int, ...]]] = None
        for stop in range(start, num_stages + 1):
            here = block_cost(tier, start, stop)
            transfer = links[tier].transfer_time(boundary_size(stop))
            rest, rest_cuts = dp(tier + 1, stop)
            total = here + transfer + rest
            if best is None or total < best[0]:
                best = (total, (stop,) + rest_cuts)
        assert best is not None
        return best

    total, cuts = dp(0, 0)
    return list(cuts), total
