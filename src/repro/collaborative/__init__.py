"""Collaborative inferencing (Sec. IV, Table IV) — multi-camera substrate.

The paper evaluates collaboration between surveillance cameras with
overlapping fields of view on the PETS2009 dataset using Movidius edge
nodes.  Neither is available offline, so this package simulates the whole
stack (see DESIGN.md §2): a 2-D campus world with pedestrians and occluders,
cameras with wedge-shaped FoVs, an SSD-like detection pipeline with a
calibrated latency model, bounding-box sharing with coordinate remapping,
autonomous discovery of FoV overlap from inference streams (collaboration
brokering), and resilience against rogue peers.
"""

from .world import Occluder, Pedestrian, World, WorldConfig
from .camera import Camera, CameraPose, ring_of_cameras
from .detector import Detection, DetectorConfig, SSDDetector
from .collaboration import (
    CollaborativeFrameResult,
    CollaborativePipeline,
    EvaluationSummary,
    match_detections,
)
from .broker import BrokerResult, CollaborationBroker
from .counting import (
    OccupancyEstimator,
    OccupancyReport,
    RegionGrid,
    deduplicate_detections,
)
from .partitioning import (
    LinkSpec,
    PartitionPlan,
    PartitionPlanner,
    exit_probabilities,
    plan_chain_partition,
)
from .resilience import ResilienceMonitor, RogueCamera
from .scenarios import CorridorScenario, campus_quad, corridor
from .tracking import (
    Track,
    Tracker,
    TrackingMetrics,
    TrackPoint,
    stitch_tracks,
    tracking_metrics,
)

__all__ = [
    "World",
    "WorldConfig",
    "Pedestrian",
    "Occluder",
    "Camera",
    "CameraPose",
    "ring_of_cameras",
    "SSDDetector",
    "DetectorConfig",
    "Detection",
    "CollaborativePipeline",
    "CollaborativeFrameResult",
    "EvaluationSummary",
    "match_detections",
    "CollaborationBroker",
    "BrokerResult",
    "ResilienceMonitor",
    "RogueCamera",
    "PartitionPlanner",
    "PartitionPlan",
    "LinkSpec",
    "exit_probabilities",
    "plan_chain_partition",
    "Track",
    "TrackPoint",
    "Tracker",
    "TrackingMetrics",
    "stitch_tracks",
    "tracking_metrics",
    "campus_quad",
    "corridor",
    "CorridorScenario",
    "RegionGrid",
    "OccupancyEstimator",
    "OccupancyReport",
    "deduplicate_detections",
]
