"""Resilient collaboration (Sec. IV-C): rogue peers and trust monitoring.

"False or noisy bounding box estimates by one camera can reduce the people
detection accuracy of other peer cameras by over 20%.  To promote practical
use ... Eugene must also provide resiliency services."

:class:`RogueCamera` injects fabricated boxes into the shared pool.
:class:`ResilienceMonitor` is the defense: it tracks, per source camera, how
often that source's shared boxes survive local ROI verification, and stops
trusting sources whose verification rate is anomalously low.  Plugged into
:class:`~repro.collaborative.collaboration.CollaborativePipeline`, it
filters rogue boxes before they pollute the cheap inference path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from .world import World


@dataclass
class RogueCamera:
    """A compromised node flooding the shared pool with fake boxes."""

    camera_id: int
    rate: float = 3.0
    seed: int = 0
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.rate < 0:
            raise ValueError("rate must be non-negative")
        self._rng = np.random.default_rng(self.seed)

    def fake_boxes(self, world: World, t: float) -> List[np.ndarray]:
        """Fabricated world-coordinate boxes for this frame."""
        cfg = world.config
        count = self._rng.poisson(self.rate)
        return [
            np.array(
                [self._rng.uniform(0, cfg.width), self._rng.uniform(0, cfg.height)]
            )
            for _ in range(count)
        ]


class ResilienceMonitor:
    """Per-source trust from verification outcomes.

    A source is *trusted* until it has at least ``min_observations`` recorded
    verification attempts with a success rate below ``min_verify_rate``.
    Honest cameras' boxes verify most of the time (the box really is a
    person, merely observed from a different angle); rogue boxes almost
    never verify, so their rate collapses quickly.
    """

    def __init__(self, min_verify_rate: float = 0.3, min_observations: int = 12) -> None:
        if not 0.0 <= min_verify_rate <= 1.0:
            raise ValueError("min_verify_rate must be in [0, 1]")
        if min_observations < 1:
            raise ValueError("min_observations must be positive")
        self.min_verify_rate = min_verify_rate
        self.min_observations = min_observations
        self._success: Dict[int, int] = {}
        self._total: Dict[int, int] = {}

    def record(self, source_id: int, verified: bool) -> None:
        self._total[source_id] = self._total.get(source_id, 0) + 1
        if verified:
            self._success[source_id] = self._success.get(source_id, 0) + 1

    def verify_rate(self, source_id: int) -> float:
        total = self._total.get(source_id, 0)
        if total == 0:
            return 1.0
        return self._success.get(source_id, 0) / total

    def trusted(self, source_id: int) -> bool:
        if self._total.get(source_id, 0) < self.min_observations:
            return True
        return self.verify_rate(source_id) >= self.min_verify_rate

    def distrusted_sources(self) -> List[int]:
        return sorted(s for s in self._total if not self.trusted(s))
