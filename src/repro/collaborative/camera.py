"""Cameras with wedge-shaped fields of view and pose-based remapping."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from .world import World


def _wrap_angle(a: float) -> float:
    """Wrap an angle to (-pi, pi]."""
    return float((a + np.pi) % (2 * np.pi) - np.pi)


@dataclass(frozen=True)
class CameraPose:
    """Position, viewing direction (radians) and FoV of a camera."""

    x: float
    y: float
    orientation: float
    fov_degrees: float = 70.0
    max_range: float = 45.0

    def __post_init__(self) -> None:
        if not 0 < self.fov_degrees <= 360:
            raise ValueError("fov_degrees must be in (0, 360]")
        if self.max_range <= 0:
            raise ValueError("max_range must be positive")

    @property
    def position(self) -> np.ndarray:
        return np.array([self.x, self.y])

    @property
    def half_fov(self) -> float:
        return np.deg2rad(self.fov_degrees) / 2.0


class Camera:
    """One surveillance camera.

    World points are converted to *camera-local* observations
    ``(bearing, distance)`` — the 2-D analogue of an image-plane bounding
    box (bearing = box center x, 1/distance = box height).  Cameras share
    detections with peers by remapping local observations back to the common
    world frame through their known pose (Sec. IV-B's "suitably remapped to
    a common coordinate space").
    """

    def __init__(self, camera_id: int, pose: CameraPose) -> None:
        self.camera_id = camera_id
        self.pose = pose

    # ------------------------------------------------------------------
    def bearing_distance(self, point: np.ndarray) -> Tuple[float, float]:
        """Camera-local observation of a world point."""
        delta = np.asarray(point, dtype=np.float64) - self.pose.position
        distance = float(np.linalg.norm(delta))
        bearing = _wrap_angle(float(np.arctan2(delta[1], delta[0])) - self.pose.orientation)
        return bearing, distance

    def in_fov(self, point: np.ndarray) -> bool:
        """Within the wedge and range (ignores occlusion)."""
        bearing, distance = self.bearing_distance(point)
        return abs(bearing) <= self.pose.half_fov and 0 < distance <= self.pose.max_range

    def can_see(self, point: np.ndarray, world: World) -> bool:
        """Within FoV and with clear line of sight."""
        return self.in_fov(point) and world.line_of_sight(
            self.pose.position, np.asarray(point, dtype=np.float64)
        )

    def to_world(self, bearing: float, distance: float) -> np.ndarray:
        """Remap a camera-local observation into world coordinates."""
        angle = self.pose.orientation + bearing
        return self.pose.position + distance * np.array([np.cos(angle), np.sin(angle)])

    # ------------------------------------------------------------------
    def fov_overlap(self, other: "Camera", world: World, samples: int = 400,
                    seed: int = 0) -> float:
        """Monte-Carlo estimate of |FoV_a intersect FoV_b| / |FoV_a|.

        This is the *ground truth* the collaboration broker tries to
        discover from inference streams alone.
        """
        rng = np.random.default_rng(seed)
        cfg = world.config
        points = np.column_stack(
            [rng.uniform(0, cfg.width, samples), rng.uniform(0, cfg.height, samples)]
        )
        mine = np.array([self.in_fov(p) for p in points])
        if not mine.any():
            return 0.0
        both = np.array([self.in_fov(p) and other.in_fov(p) for p in points])
        return float(both.sum() / mine.sum())


def ring_of_cameras(
    num_cameras: int,
    world: World,
    fov_degrees: float = 70.0,
    max_range: float = 55.0,
    margin: float = 5.0,
) -> List[Camera]:
    """Place cameras evenly around the world boundary, all facing the center.

    With eight cameras (the PETS2009 setup) neighbouring FoVs overlap
    substantially near the center — the geometry the Table IV experiment
    relies on.
    """
    if num_cameras < 1:
        raise ValueError("need at least one camera")
    cfg = world.config
    cx, cy = cfg.width / 2, cfg.height / 2
    radius = min(cfg.width, cfg.height) / 2 - margin
    cameras = []
    for i in range(num_cameras):
        angle = 2 * np.pi * i / num_cameras
        x = cx + radius * np.cos(angle)
        y = cy + radius * np.sin(angle)
        orientation = _wrap_angle(angle + np.pi)  # face the center
        cameras.append(
            Camera(
                camera_id=i,
                pose=CameraPose(
                    x=x, y=y, orientation=orientation,
                    fov_degrees=fov_degrees, max_range=max_range,
                ),
            )
        )
    return cameras
