"""Human-readable rendering of scheduling episodes.

The paper's Fig. 1 shows tasks advancing along "dynamic confidence curves"
as the scheduler grants them stages.  These helpers render that picture as
text: a per-task table of stage allocations and confidence trajectories,
and a timeline strip showing which policy served whom.  Used by the
examples and handy when debugging scheduling behaviour.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from .simulator import EpisodeResult


def episode_summary(result: EpisodeResult) -> str:
    """One-paragraph summary of an episode."""
    lines = [
        f"tasks: {result.num_tasks}  "
        f"completed: {result.num_fully_completed}  "
        f"evicted: {result.num_evicted}",
        f"service accuracy: {result.accuracy:.1%}  "
        f"mean confidence: {result.mean_final_confidence:.3f}",
        f"makespan: {result.makespan:.2f}  "
        f"utilization: {result.utilization:.1%}  "
        f"mean stages/task: {result.stages_executed.mean():.2f}",
    ]
    return "\n".join(lines)


def task_table(result: EpisodeResult, max_rows: Optional[int] = 20) -> str:
    """Per-task view: stages run, confidence trajectory, verdict."""
    header = f"{'task':>5} {'stages':>7} {'confidence trajectory':32} {'verdict':>8}"
    lines = [header, "-" * len(header)]
    records = result.records if max_rows is None else result.records[:max_rows]
    for record in records:
        trajectory = " -> ".join(f"{o.confidence:.2f}" for o in record.outcomes)
        if not trajectory:
            trajectory = "(no stage ran)"
        verdict = (
            "evicted" if record.evicted and not record.outcomes
            else ("right" if record.final_correct else "wrong")
        )
        lines.append(
            f"{record.task_id:>5} {record.stages_done:>7} {trajectory:32} {verdict:>8}"
        )
    hidden = result.num_tasks - len(records)
    if hidden > 0:
        lines.append(f"... {hidden} more tasks")
    return "\n".join(lines)


def stage_histogram(result: EpisodeResult, max_stages: Optional[int] = None) -> str:
    """Distribution of stages executed per task — the fairness picture."""
    stages = result.stages_executed
    top = max_stages if max_stages is not None else (int(stages.max()) if len(stages) else 0)
    counts = np.bincount(stages, minlength=top + 1)
    total = max(counts.sum(), 1)
    lines = ["stages | tasks"]
    for s in range(top + 1):
        bar = "#" * int(round(40 * counts[s] / total))
        lines.append(f"{s:>6} | {counts[s]:>5} {bar}")
    return "\n".join(lines)


def confidence_curve_plot(
    curves: np.ndarray, width: int = 50, labels: Optional[Sequence[str]] = None
) -> str:
    """ASCII rendering of confidence-vs-stage curves (Fig. 1's inset).

    ``curves`` is (num_tasks, num_stages) in [0, 1]; each row becomes one
    line of positions along a 0..1 axis, one marker per stage (1, 2, 3...).
    """
    curves = np.asarray(curves, dtype=np.float64)
    if curves.ndim != 2:
        raise ValueError("curves must be (num_tasks, num_stages)")
    if curves.min() < 0 or curves.max() > 1:
        raise ValueError("confidences must lie in [0, 1]")
    lines = ["0.0" + " " * (width - 5) + "1.0"]
    for i, row in enumerate(curves):
        strip = ["-"] * (width + 1)
        for stage, conf in enumerate(row):
            pos = int(round(conf * width))
            strip[pos] = str((stage + 1) % 10)
        label = labels[i] if labels is not None else f"task {i}"
        lines.append(f"{label:>10} |{''.join(strip)}|")
    return "\n".join(lines)


def render_episode(result: EpisodeResult, max_rows: int = 15) -> str:
    """Full report: summary + task table + fairness histogram."""
    return "\n\n".join(
        [
            episode_summary(result),
            task_table(result, max_rows=max_rows),
            stage_histogram(result),
        ]
    )
