"""User-space real-time inference runtime (the paper's process-pool design).

Where :mod:`repro.scheduler.simulator` replays precomputed oracles for
deterministic experiments, this module actually executes a
:class:`~repro.nn.resnet.StagedResNet` stage by stage under the scheduler, in
threads (the Python analogue of the paper's worker-process pool):

- a pool of worker threads pulls (task, stage) work items from a queue,
  runs one network stage, and reports ``(prediction, confidence)`` back to
  the scheduler over a result queue — the role the paper gives to Linux
  named pipes;
- the scheduler loop re-plans with the freshest confidences whenever its
  timeline drains ("restarts again with the most recent utility estimates");
- a daemon thread watches elapsed time per task and evicts tasks whose
  latency constraint expired; a stage whose result arrives after eviction is
  discarded, the worker simply "returns to the pool".

Implemented in user space, no OS support needed — the portability argument
of Section III.

Two inference-fast-path extensions beyond the paper's design:

- **No-grad stage execution.**  Workers run stages through the model's
  raw-ndarray :meth:`~repro.nn.resnet.StagedResNet.infer_stage` path, so
  serving never pays autograd-graph construction.
- **Micro-batching.**  When ``RuntimeConfig.max_batch > 1`` the scheduler
  coalesces queued (task, stage) items for the *same* stage into one
  batched stage execution (one BLAS matmul instead of ``B`` small ones) and
  splits the per-task confidences back out of the batch afterwards.  An
  optional ``drain_window`` lets an undersized batch briefly wait for more
  same-stage work while other results are still in flight.  Batches are
  formed under the scheduler lock, so a task evicted by the daemon can
  never appear in a newly formed batch.

Resilience (exercised by :mod:`repro.faults` and ``tests/faults/``):

- **Lost-item watchdog.**  Every dispatched micro-batch is tracked until
  its result returns; an item outstanding longer than
  ``RuntimeConfig.item_timeout`` (a crashed/hung worker, a dropped result)
  is declared lost, its tasks are released back to the scheduler, and a
  late result for a reaped item is discarded as stale.
- **Worker respawn.**  A worker thread that dies (the ``crash`` fault
  kind) is detected and replaced, so pool capacity survives crashes.
- **Result validation.**  Stage results with non-finite confidences (the
  ``corrupt`` fault kind) are rejected and re-executed rather than served.
- **Graceful degradation.**  A task that cannot finish all stages inside
  its budget still reports the best already-computed stage's result,
  flagged via :attr:`RuntimeTaskResult.degraded` / ``served_stage``.

Injection sites: ``runtime.worker.stage`` (all fault kinds) and
``runtime.dispatch`` (``latency``/``hang`` only — the scheduler thread
must never die).  Both disarm to one global read + ``None`` check.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import faults, telemetry
from ..admission import AdmissionConfig, expected_utility, select_shed
from ..nn import functional as F
from ..nn.resnet import StagedResNet
from .gen2 import apply_stage_budgets
from .policies import SchedulingPolicy
from .task import StageOutcome, TaskRecord

#: Named injection sites this module consults (see docs/FAULTS.md).
WORKER_STAGE_SITE = "runtime.worker.stage"
DISPATCH_SITE = "runtime.dispatch"


@dataclass
class RuntimeConfig:
    num_workers: int = 2
    #: seconds each task may stay in the system (the latency constraint).
    latency_constraint: float = 5.0
    #: daemon polling period in seconds.
    daemon_interval: float = 0.005
    #: maximum number of same-stage tasks coalesced into one batched stage
    #: execution (1 = the paper's one-image-per-worker behaviour).
    max_batch: int = 1
    #: seconds an undersized batch may be held back waiting for more
    #: same-stage work while other results are still in flight (0 = never
    #: wait; dispatch whatever was coalesced immediately).
    drain_window: float = 0.0
    #: seconds a dispatched micro-batch may stay outstanding before the
    #: scheduler declares it lost (crashed/hung worker, dropped result) and
    #: releases its tasks for re-execution.  Generous by default: a healthy
    #: pool never trips it, so the disarmed behaviour is unchanged.
    item_timeout: float = 5.0
    #: admission control / overload management (:mod:`repro.admission`):
    #: bounds the admitted-but-unserved queue, degrading excess tasks to an
    #: early exit and shedding past the hard bound.  ``None`` (default)
    #: keeps the unbounded legacy behaviour — and the fast path untouched.
    admission: Optional[AdmissionConfig] = None
    #: anytime-inference contract (gen-2 imprecise computations): a task
    #: whose latency constraint expires with at least one completed stage is
    #: *served* its best-so-far early-exit result at the deadline (degraded,
    #: never late) instead of being evicted.  Only tasks that finished
    #: nothing at all still count as deadline misses.
    anytime: bool = False

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("need at least one worker")
        if self.latency_constraint <= 0:
            raise ValueError("latency constraint must be positive")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.drain_window < 0:
            raise ValueError("drain_window must be non-negative")
        if self.drain_window > 0 and self.max_batch <= 1:
            raise ValueError(
                "drain_window > 0 requires max_batch > 1: a single-task "
                "batch can never grow, so holding it back only adds latency"
            )
        if self.item_timeout <= 0:
            raise ValueError("item_timeout must be positive")


@dataclass
class RuntimeTaskResult:
    """Outcome of one task after the runtime drains."""

    task_id: int
    outcomes: List[StageOutcome]
    evicted: bool
    elapsed: float
    #: all stages ran inside the budget (the non-degraded happy path).
    completed: bool = False
    #: dropped by admission control before receiving any service; a shed
    #: task has no outcomes and counts toward neither goodput nor misses.
    shed: bool = False
    #: the anytime contract served this task's best-so-far early exit at
    #: its deadline (a degraded answer, delivered on time — never late).
    anytime_served: bool = False

    @property
    def prediction(self) -> Optional[int]:
        return self.outcomes[-1].prediction if self.outcomes else None

    @property
    def confidence(self) -> Optional[float]:
        return self.outcomes[-1].confidence if self.outcomes else None

    @property
    def served_stage(self) -> Optional[int]:
        """Which stage the served result came from (``None`` = no result)."""
        return self.outcomes[-1].stage if self.outcomes else None

    @property
    def degraded(self) -> bool:
        """Served from an early exit because later stages never finished
        inside the budget (fault, deadline, or a degrade-mode stage cap) —
        a result, but a weaker one."""
        return not self.completed and bool(self.outcomes)


class _WorkItem:
    """One unit of worker work: a same-stage micro-batch of tasks."""

    __slots__ = ("item_id", "task_ids", "stage", "features", "needs_stem")

    def __init__(
        self,
        item_id: int,
        task_ids: Tuple[int, ...],
        stage: int,
        features: np.ndarray,
        needs_stem: bool,
    ) -> None:
        self.item_id = item_id
        self.task_ids = task_ids
        self.stage = stage
        self.features = features
        self.needs_stem = needs_stem


def _eligible(
    records: Dict[int, TaskRecord], in_flight: Dict[int, int], tid: int, stage: int
) -> bool:
    """Can (tid, stage) be executed right now?  (Call with the lock held.)"""
    record = records.get(tid)
    return (
        record is not None
        and not record.done
        and tid not in in_flight
        and record.next_stage == stage
    )


def form_batch(
    timeline: Deque[tuple],
    records: Dict[int, TaskRecord],
    in_flight: Dict[int, int],
    max_batch: int,
) -> Tuple[List[int], Optional[int], Deque[tuple]]:
    """Pop one same-stage micro-batch off the timeline.

    Scans from the front: the first eligible entry fixes the batch's stage;
    further eligible entries for the same stage join it (up to
    ``max_batch``); eligible entries for *other* stages keep their timeline
    position; stale entries (done, evicted, already executing, or whose
    stage no longer matches the task's next stage) are dropped, exactly as
    the unbatched scheduler dropped them.

    Returns ``(batch_task_ids, stage, remaining_timeline)``.  Must be
    called with the scheduler lock held, which is what guarantees an
    evicted task can never appear in a formed batch.
    """
    batch: List[int] = []
    stage: Optional[int] = None
    leftovers: Deque[tuple] = deque()
    while timeline:
        tid, st = timeline.popleft()
        if not _eligible(records, in_flight, tid, st):
            continue
        if stage is None:
            stage = st
            batch.append(tid)
        elif st == stage:
            # A duplicate entry for an already-batched (tid, stage) is
            # redundant now that the batch covers it: drop it.
            if tid not in batch:
                batch.append(tid)
        else:
            leftovers.append((tid, st))
        if len(batch) >= max_batch:
            break
    leftovers.extend(timeline)
    return batch, stage, leftovers


def _extract_stage(
    timeline: Deque[tuple],
    stage: int,
    need: int,
    records: Dict[int, TaskRecord],
    in_flight: Dict[int, int],
    exclude: set,
) -> Tuple[List[int], Deque[tuple]]:
    """Pull up to ``need`` eligible entries for ``stage`` out of the timeline.

    Used to top up a held-back (drain-window) batch.  Entries for other
    stages keep their position; stale entries are dropped.  Lock held.
    """
    taken: List[int] = []
    remaining: Deque[tuple] = deque()
    while timeline:
        tid, st = timeline.popleft()
        if not _eligible(records, in_flight, tid, st) or tid in exclude:
            continue
        if st == stage and len(taken) < need:
            taken.append(tid)
            exclude.add(tid)
        else:
            remaining.append((tid, st))
    return taken, remaining


class StagedInferenceRuntime:
    """Executes submitted inputs through a staged model under a policy."""

    def __init__(
        self,
        model: StagedResNet,
        policy: SchedulingPolicy,
        config: Optional[RuntimeConfig] = None,
    ) -> None:
        self.model = model
        self.policy = policy
        self.config = config or RuntimeConfig()
        self._inputs: List[np.ndarray] = []
        #: (stage, task_ids) of every dispatched micro-batch, for the last
        #: :meth:`run_until_complete` call — introspection for tests/metrics.
        self.batch_log: List[Tuple[int, Tuple[int, ...]]] = []

    def submit(self, inputs: np.ndarray) -> List[int]:
        """Queue a batch of single-image tasks; returns their task ids."""
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 4:
            raise ValueError("inputs must be (N, C, H, W)")
        start = len(self._inputs)
        for i in range(inputs.shape[0]):
            self._inputs.append(inputs[i : i + 1])
        return list(range(start, len(self._inputs)))

    # ------------------------------------------------------------------
    def _apply_admission(
        self,
        records: Dict[int, TaskRecord],
        admission: AdmissionConfig,
        tel,
        now: float,
        stage_time_s: float = 0.0,
    ) -> None:
        """Overload management over the submitted batch (before serving).

        Every submitted task beyond ``max_queue_depth`` is shed —
        lowest expected utility first, scored with the scheduling policy's
        own confidence predictor when it has one.  Survivors beyond
        ``degrade_queue_depth`` are capped at ``degrade_stage_cap`` stages
        (degrade-before-drop), composing with the runtime's existing
        graceful-degradation reporting.

        ``now`` is the runtime's actual clock (seconds since the episode
        started): the deadline-feasibility discount inside
        :func:`expected_utility` compares it against task deadlines, so a
        hard-coded 0.0 here mis-ranked near-deadline tasks and stamped
        every shed/degrade trace event at t=0.
        """
        live = [r for r in records.values() if not r.done]
        predictor = getattr(self.policy, "predictor", None)
        depth = admission.max_queue_depth
        if depth is not None and len(live) > depth:
            views = {r.task_id: r.view() for r in live}
            to_shed = select_shed(
                list(views.values()),
                len(live) - depth,
                predictor=predictor,
                now=now,
                stage_time_s=stage_time_s,
                policy=admission.shed_policy,
            )
            for tid in to_shed:
                record = records[tid]
                record.shed = True
                record.finish_time = now
                if tel is not None:
                    tel.registry.counter("runtime.tasks_shed").inc()
                    tel.trace.load_shed(
                        now,
                        tid,
                        expected_utility=expected_utility(
                            views[tid], predictor, now=now,
                            stage_time_s=stage_time_s,
                        ),
                    )
            live = [r for r in live if not r.shed]
        degrade_depth = admission.degrade_queue_depth
        if degrade_depth is not None and len(live) > degrade_depth:
            views = [r.view() for r in live]
            # The same utility ranking picks which survivors to degrade:
            # the lowest-expected-utility tasks lose the least by exiting
            # early, so they take the stage cap.
            to_degrade = select_shed(
                views,
                len(live) - degrade_depth,
                predictor=predictor,
                now=now,
                stage_time_s=stage_time_s,
                policy=admission.shed_policy,
            )
            for tid in to_degrade:
                records[tid].stage_cap = admission.degrade_stage_cap
                if tel is not None:
                    tel.registry.counter("runtime.tasks_degraded").inc()
                    tel.trace.degrade_cap(
                        now, tid, stage_cap=admission.degrade_stage_cap
                    )

    # ------------------------------------------------------------------
    def run_until_complete(self) -> List[RuntimeTaskResult]:
        """Serve every submitted task to completion or eviction."""
        if not self._inputs:
            return []
        self.model.eval()
        cfg = self.config
        t0 = time.monotonic()
        self.batch_log = []
        tel = telemetry.active()

        records: Dict[int, TaskRecord] = {}
        features: Dict[int, np.ndarray] = {}
        lock = threading.Lock()
        work_queue: "queue.Queue[Optional[_WorkItem]]" = queue.Queue()
        result_queue: "queue.Queue[tuple]" = queue.Queue()
        stop = threading.Event()

        if tel is not None:
            # Pre-create the episode counters so a clean run still exports
            # an explicit zero for misses rather than omitting the series.
            tel.registry.counter("runtime.tasks_submitted").inc(len(self._inputs))
            tel.registry.counter("runtime.tasks_completed")
            tel.registry.counter("runtime.deadline_misses")

        for tid, x in enumerate(self._inputs):
            records[tid] = TaskRecord(
                task_id=tid,
                arrival_time=0.0,
                deadline=cfg.latency_constraint,
                num_stages=self.model.num_stages,
            )
            if tel is not None:
                tel.trace.admit(0.0, tid, deadline=cfg.latency_constraint)

        if cfg.admission is not None and cfg.admission.bounded:
            # Scored at the runtime's actual clock (non-zero once model
            # warm-up and record setup have run), not a hard-coded t=0.
            self._apply_admission(
                records, cfg.admission, tel, now=time.monotonic() - t0
            )

        def worker_loop() -> None:
            while not stop.is_set():
                try:
                    item = work_queue.get(timeout=0.01)
                except queue.Empty:
                    continue
                if item is None:
                    return
                decision = faults.inject(WORKER_STAGE_SITE)
                if decision is not None:
                    if decision.kind in (faults.LATENCY, faults.HANG):
                        # A slow (or apparently dead) worker: stall, then
                        # proceed.  A hang longer than item_timeout means the
                        # scheduler reaps the item and this result is stale.
                        time.sleep(decision.latency_s)
                    elif decision.kind == faults.CRASH:
                        # The worker process dies mid-item: thread exits
                        # without reporting; the supervisor respawns it and
                        # the watchdog requeues the lost item.
                        return
                    elif decision.kind in (faults.DROP, faults.ERROR):
                        # The stage result never reaches the scheduler (lost
                        # pipe write / transient executor error): swallow the
                        # item; the watchdog requeues its tasks.
                        continue
                start = time.perf_counter()
                feats = item.features
                if item.needs_stem:
                    feats = self.model.infer_stem(feats)
                new_features, logits = self.model.infer_stage(feats, item.stage)
                probs = F.softmax_infer(logits, axis=-1)
                predictions = probs.argmax(axis=-1)
                confidences = probs.max(axis=-1)
                if decision is not None and decision.kind == faults.CORRUPT:
                    confidences = np.full_like(confidences, np.nan)
                if tel is not None:
                    elapsed_ms = 1e3 * (time.perf_counter() - start)
                    tel.registry.histogram(
                        f"runtime.stage_latency_ms.stage{item.stage}"
                    ).observe(elapsed_ms)
                    tel.registry.histogram("runtime.stage_latency_ms.all").observe(
                        elapsed_ms
                    )
                result_queue.put(
                    (
                        item.item_id,
                        item.task_ids,
                        item.stage,
                        predictions,
                        confidences,
                        new_features,
                    )
                )

        def evict_task(record: TaskRecord, now: float) -> None:
            """Close one task whose latency constraint expired.  Lock held.

            Under the anytime contract a task holding at least one stage
            result is *served* best-so-far at the deadline (degraded, never
            late); only a task with nothing computed is a deadline miss.
            """
            if cfg.anytime and record.outcomes:
                record.finalize_anytime(now)
                if tel is not None:
                    tel.registry.counter("runtime.anytime_served").inc()
                    tel.trace.degraded(
                        record.finish_time, record.task_id,
                        record.outcomes[-1].stage,
                    )
                return
            record.evicted = True
            record.finish_time = now
            if tel is not None:
                tel.registry.counter("runtime.deadline_misses").inc()
                tel.trace.deadline_miss(now, record.task_id, deadline=record.deadline)
                tel.trace.evict(now, record.task_id, stages_done=record.stages_done)

        def daemon_loop() -> None:
            """The latency-constraint daemon of Section III."""
            while not stop.is_set():
                now = time.monotonic() - t0
                with lock:
                    for record in records.values():
                        if not record.done and now > record.deadline:
                            evict_task(record, now)
                time.sleep(cfg.daemon_interval)

        workers = [
            threading.Thread(target=worker_loop, daemon=True)
            for _ in range(cfg.num_workers)
        ]
        daemon = threading.Thread(target=daemon_loop, daemon=True)
        for w in workers:
            w.start()
        daemon.start()

        in_flight: Dict[int, int] = {}  # task_id -> stage being executed
        timeline: Deque[tuple] = deque()
        # Undersized batch waiting out the drain window: (tids, stage, t_formed).
        pending: Optional[Tuple[List[int], int, float]] = None
        # Dispatched micro-batches awaiting results:
        # item_id -> (task_ids, stage, dispatch time).  A result whose item
        # was already reaped by the watchdog is stale and discarded.
        outstanding: Dict[int, Tuple[Tuple[int, ...], int, float]] = {}
        item_ids = itertools.count()

        def items_in_flight() -> int:
            return len(outstanding)

        def dispatch(batch: Sequence[int], stage: int, now: float) -> None:
            """Hand a formed micro-batch to the worker pool.  Lock held."""
            decision = faults.inject(DISPATCH_SITE)
            if decision is not None and decision.kind in (faults.LATENCY, faults.HANG):
                # Only stalls make sense here: the scheduler thread itself
                # must never crash or drop work.
                time.sleep(decision.latency_s)
            tids = tuple(batch)
            if stage == 0:
                feats = np.concatenate([self._inputs[tid] for tid in tids], axis=0)
                needs_stem = True
            else:
                feats = np.concatenate([features[tid] for tid in tids], axis=0)
                needs_stem = False
            for tid in tids:
                in_flight[tid] = stage
            item_id = next(item_ids)
            outstanding[item_id] = (tids, stage, time.monotonic() - t0)
            self.batch_log.append((stage, tids))
            if tel is not None:
                tel.registry.histogram("runtime.batch_occupancy", lo=0.5).observe(
                    len(tids)
                )
                queue_depth = sum(
                    1
                    for r in records.values()
                    if not r.done and r.task_id not in in_flight
                )
                tel.registry.gauge("runtime.queue_depth").set(queue_depth)
                tel.registry.histogram("runtime.queue_depth", lo=0.5).observe(
                    queue_depth
                )
                tel.trace.stage_dispatch(now, stage, tids)
            work_queue.put(_WorkItem(item_id, tids, stage, feats, needs_stem))

        def drop_overdue(batch: Sequence[int], now: float) -> List[int]:
            """Deadline re-check at dispatch time.  Lock held.

            The eviction daemon only samples every ``daemon_interval``; a
            task whose deadline passed while a drain-window hold (or a
            worker queue) delayed it must not be dispatched in the gap —
            it is evicted here, exactly as the daemon would have.
            """
            live: List[int] = []
            for tid in batch:
                record = records[tid]
                if now > record.deadline:
                    evict_task(record, now)
                else:
                    live.append(tid)
            return live

        def next_batch(now: float) -> Tuple[List[int], Optional[int]]:
            """Form the next micro-batch, replanning as needed.

            Policies like FIFO and RTDeepIoT-k plan only one task's work at
            a time, so filling a batch requires replanning with the already
            batched tasks masked out: each fresh plan contributes its
            same-stage head items until the batch fills, the policy's next
            choice is a different stage, or no schedulable tasks remain.
            """
            nonlocal timeline
            batch: List[int] = []
            stage: Optional[int] = None
            replans = 0
            while True:
                if stage is None:
                    batch, stage, timeline = form_batch(
                        timeline, records, in_flight, cfg.max_batch
                    )
                    progressed = bool(batch)
                else:
                    extra, timeline = _extract_stage(
                        timeline,
                        stage,
                        cfg.max_batch - len(batch),
                        records,
                        in_flight,
                        set(batch),
                    )
                    batch.extend(extra)
                    progressed = bool(extra)
                if len(batch) >= cfg.max_batch:
                    break
                if not progressed and replans > 0:
                    break
                if replans >= cfg.max_batch:
                    break
                candidates = [
                    r.view()
                    for r in records.values()
                    if not r.done
                    and r.task_id not in in_flight
                    and r.task_id not in batch
                ]
                if not candidates:
                    break
                fresh = self.policy.plan(candidates, now)
                # Gen-2 preemption: freshly planned budgets tighten stage
                # caps (no-op for gen-1 policies).  A task revoked down to
                # its executed frontier is complete as of now.  The runtime
                # has no admission queue, so "contended" is the planner's
                # own capacity deficit: stages demanded but not fundable.
                preempted = apply_stage_budgets(
                    self.policy,
                    records,
                    now,
                    tel,
                    scope="runtime",
                    contended=bool(
                        getattr(
                            getattr(self.policy, "last_plan", None),
                            "contended",
                            True,
                        )
                    ),
                )
                for ptid in preempted:
                    revoked = records[ptid]
                    if revoked.complete and revoked.finish_time is None:
                        revoked.finish_time = now
                        if tel is not None:
                            tel.registry.counter("runtime.tasks_completed").inc()
                            tel.trace.complete(
                                now, ptid, stages_done=revoked.stages_done
                            )
                if not fresh:
                    break
                timeline.extend(fresh)
                replans += 1
            return batch, stage

        def refill(now: float) -> None:
            """Keep the workers fed; replan when the timeline drains."""
            nonlocal timeline, pending
            while items_in_flight() < cfg.num_workers:
                if pending is not None:
                    batch, stage, formed_at = pending
                    # Re-validate: eviction or completion may have struck
                    # while the batch waited out the drain window.
                    batch = [
                        tid for tid in batch
                        if _eligible(records, in_flight, tid, stage)
                    ]
                    if batch and len(batch) < cfg.max_batch:
                        extra, timeline = _extract_stage(
                            timeline,
                            stage,
                            cfg.max_batch - len(batch),
                            records,
                            in_flight,
                            set(batch),
                        )
                        batch.extend(extra)
                    if not batch:
                        pending = None
                        continue
                    expired = (now - formed_at) >= cfg.drain_window
                    if len(batch) >= cfg.max_batch or expired or items_in_flight() == 0:
                        pending = None
                        # The hold may have outlived a deadline the daemon
                        # has not noticed yet: evict, never dispatch.
                        batch = drop_overdue(batch, now)
                        if batch:
                            dispatch(batch, stage, now)
                        continue
                    pending = (batch, stage, formed_at)
                    return
                batch, stage = next_batch(now)
                if not batch:
                    return
                batch = drop_overdue(batch, now)
                if not batch:
                    continue
                if (
                    len(batch) < cfg.max_batch
                    and cfg.drain_window > 0
                    and items_in_flight() > 0
                ):
                    # Hold back: in-flight results may yield same-stage work.
                    pending = (batch, stage, now)
                    return
                dispatch(batch, stage, now)

        def reap_lost_items(now: float) -> None:
            """Release tasks of items outstanding past the timeout.  Lock held.

            A reaped item's tasks become schedulable again; a late result
            for it is recognised as stale (its id is gone) and discarded, so
            no stage can ever be applied twice.
            """
            for item_id, (tids, stage, dispatched_at) in list(outstanding.items()):
                if now - dispatched_at < cfg.item_timeout:
                    continue
                del outstanding[item_id]
                for tid in tids:
                    in_flight.pop(tid, None)
                if tel is not None:
                    tel.registry.counter("runtime.items_lost").inc()
                    tel.trace.item_retry(now, stage, tids)

        def respawn_dead_workers(now: float) -> None:
            """Replace crashed worker threads so pool capacity survives."""
            for i, w in enumerate(workers):
                if w.is_alive() or stop.is_set():
                    continue
                replacement = threading.Thread(target=worker_loop, daemon=True)
                workers[i] = replacement
                replacement.start()
                if tel is not None:
                    tel.registry.counter("runtime.worker_respawns").inc()
                    tel.trace.worker_respawn(now, i)

        try:
            with lock:
                refill(0.0)
            while True:
                with lock:
                    if (
                        all(r.done for r in records.values())
                        and items_in_flight() == 0
                    ):
                        break
                    wait = 0.005 if pending is not None else 0.05
                try:
                    item_id, tids, stage, predictions, confidences, new_features = (
                        result_queue.get(timeout=wait)
                    )
                except queue.Empty:
                    # Evictions (or an expiring drain window) may have freed
                    # scheduling slots meanwhile; with a fault plan armed,
                    # items may also be lost and workers dead.
                    now = time.monotonic() - t0
                    with lock:
                        if faults.active() is not None:
                            reap_lost_items(now)
                            respawn_dead_workers(now)
                        refill(now)
                    continue
                now = time.monotonic() - t0
                with lock:
                    if outstanding.pop(item_id, None) is None:
                        # Stale: the watchdog already reaped this item (its
                        # tasks may even be re-executing).  Discard.
                        if tel is not None:
                            tel.registry.counter("runtime.stale_results").inc()
                        continue
                    if not np.all(np.isfinite(confidences)):
                        # Corrupted payload: reject the whole batch and
                        # release its tasks for re-execution — a NaN
                        # confidence must never reach the policy or a client.
                        for tid in tids:
                            in_flight.pop(tid, None)
                        if tel is not None:
                            tel.registry.counter("runtime.corrupt_results").inc()
                            tel.trace.item_retry(now, stage, tids)
                        refill(now)
                        continue
                    for i, tid in enumerate(tids):
                        in_flight.pop(tid, None)
                        record = records[tid]
                        if record.done:
                            # Evicted, shed, or already served best-so-far
                            # by the anytime contract: a late stage result
                            # must never be appended after the response.
                            continue
                        if now > record.deadline:
                            # The stage finished after the latency constraint
                            # expired (the daemon may not have sampled yet):
                            # the result is discarded, as the simulator does.
                            evict_task(record, now)
                            continue
                        record.outcomes.append(
                            StageOutcome(
                                stage=stage,
                                prediction=int(predictions[i]),
                                confidence=float(confidences[i]),
                            )
                        )
                        features[tid] = new_features[i : i + 1].copy()
                        if record.complete:
                            record.finish_time = now
                            if tel is not None:
                                tel.registry.counter("runtime.tasks_completed").inc()
                                tel.trace.complete(
                                    now, tid, stages_done=record.stages_done
                                )
                    refill(now)
        finally:
            stop.set()
            for _ in workers:
                work_queue.put(None)
            for w in workers:
                w.join(timeout=1.0)
            daemon.join(timeout=1.0)

        results = []
        for tid in sorted(records):
            record = records[tid]
            elapsed = record.finish_time if record.finish_time is not None else (
                time.monotonic() - t0
            )
            results.append(
                RuntimeTaskResult(
                    task_id=tid,
                    outcomes=list(record.outcomes),
                    evicted=record.evicted,
                    elapsed=float(elapsed),
                    completed=record.fully_complete,
                    shed=record.shed,
                    anytime_served=record.anytime_served,
                )
            )
        self._inputs = []
        return results
