"""User-space real-time inference runtime (the paper's process-pool design).

Where :mod:`repro.scheduler.simulator` replays precomputed oracles for
deterministic experiments, this module actually executes a
:class:`~repro.nn.resnet.StagedResNet` stage by stage under the scheduler, in
threads (the Python analogue of the paper's worker-process pool):

- a pool of worker threads pulls (task, stage) work items from a queue,
  runs one network stage, and reports ``(prediction, confidence)`` back to
  the scheduler over a result queue — the role the paper gives to Linux
  named pipes;
- the scheduler loop re-plans with the freshest confidences whenever its
  timeline drains ("restarts again with the most recent utility estimates");
- a daemon thread watches elapsed time per task and evicts tasks whose
  latency constraint expired; a stage whose result arrives after eviction is
  discarded, the worker simply "returns to the pool".

Implemented in user space, no OS support needed — the portability argument
of Section III.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..nn import functional as F
from ..nn.resnet import StagedResNet
from ..nn.tensor import Tensor
from .policies import SchedulingPolicy
from .task import StageOutcome, TaskRecord


@dataclass
class RuntimeConfig:
    num_workers: int = 2
    #: seconds each task may stay in the system (the latency constraint).
    latency_constraint: float = 5.0
    #: daemon polling period in seconds.
    daemon_interval: float = 0.005

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("need at least one worker")
        if self.latency_constraint <= 0:
            raise ValueError("latency constraint must be positive")


@dataclass
class RuntimeTaskResult:
    """Outcome of one task after the runtime drains."""

    task_id: int
    outcomes: List[StageOutcome]
    evicted: bool
    elapsed: float

    @property
    def prediction(self) -> Optional[int]:
        return self.outcomes[-1].prediction if self.outcomes else None

    @property
    def confidence(self) -> Optional[float]:
        return self.outcomes[-1].confidence if self.outcomes else None


class _WorkItem:
    __slots__ = ("task_id", "stage", "features")

    def __init__(self, task_id: int, stage: int, features) -> None:
        self.task_id = task_id
        self.stage = stage
        self.features = features


class StagedInferenceRuntime:
    """Executes submitted inputs through a staged model under a policy."""

    def __init__(
        self,
        model: StagedResNet,
        policy: SchedulingPolicy,
        config: Optional[RuntimeConfig] = None,
    ) -> None:
        self.model = model
        self.policy = policy
        self.config = config or RuntimeConfig()
        self._inputs: List[np.ndarray] = []

    def submit(self, inputs: np.ndarray) -> List[int]:
        """Queue a batch of single-image tasks; returns their task ids."""
        inputs = np.asarray(inputs, dtype=np.float64)
        if inputs.ndim != 4:
            raise ValueError("inputs must be (N, C, H, W)")
        start = len(self._inputs)
        for i in range(inputs.shape[0]):
            self._inputs.append(inputs[i : i + 1])
        return list(range(start, len(self._inputs)))

    # ------------------------------------------------------------------
    def run_until_complete(self) -> List[RuntimeTaskResult]:
        """Serve every submitted task to completion or eviction."""
        if not self._inputs:
            return []
        self.model.eval()
        cfg = self.config
        t0 = time.monotonic()

        records: Dict[int, TaskRecord] = {}
        features: Dict[int, Tensor] = {}
        lock = threading.Lock()
        work_queue: "queue.Queue[Optional[_WorkItem]]" = queue.Queue()
        result_queue: "queue.Queue[tuple]" = queue.Queue()
        stop = threading.Event()

        for tid, x in enumerate(self._inputs):
            records[tid] = TaskRecord(
                task_id=tid,
                arrival_time=0.0,
                deadline=cfg.latency_constraint,
                num_stages=self.model.num_stages,
            )

        def worker_loop() -> None:
            while not stop.is_set():
                try:
                    item = work_queue.get(timeout=0.01)
                except queue.Empty:
                    continue
                if item is None:
                    return
                new_features, logits = self.model.run_stage(item.features, item.stage)
                probs = F.softmax(logits, axis=-1).data[0]
                prediction = int(probs.argmax())
                confidence = float(probs.max())
                result_queue.put(
                    (item.task_id, item.stage, prediction, confidence, new_features)
                )

        def daemon_loop() -> None:
            """The latency-constraint daemon of Section III."""
            while not stop.is_set():
                now = time.monotonic() - t0
                with lock:
                    for record in records.values():
                        if not record.done and now > record.deadline:
                            record.evicted = True
                            record.finish_time = now
                time.sleep(cfg.daemon_interval)

        workers = [
            threading.Thread(target=worker_loop, daemon=True)
            for _ in range(cfg.num_workers)
        ]
        daemon = threading.Thread(target=daemon_loop, daemon=True)
        for w in workers:
            w.start()
        daemon.start()

        in_flight: Dict[int, int] = {}  # task_id -> stage being executed
        timeline: List[tuple] = []

        def refill(now: float) -> None:
            """Keep the workers fed; replan when the timeline drains."""
            nonlocal timeline
            while len(in_flight) < cfg.num_workers:
                item = None
                for attempt in range(2):
                    while timeline:
                        tid, stage = timeline.pop(0)
                        record = records[tid]
                        if record.done or tid in in_flight:
                            continue
                        if record.next_stage != stage:
                            continue
                        item = (tid, stage)
                        break
                    if item is not None or attempt == 1:
                        break
                    views = [
                        r.view()
                        for r in records.values()
                        if not r.done and r.task_id not in in_flight
                    ]
                    timeline = list(self.policy.plan(views, now))
                    if not timeline:
                        break
                if item is None:
                    return
                tid, stage = item
                feats = features[tid] if stage > 0 else self.model.run_stem(
                    Tensor(self._inputs[tid])
                )
                in_flight[tid] = stage
                work_queue.put(_WorkItem(tid, stage, feats))

        try:
            with lock:
                refill(0.0)
            while True:
                with lock:
                    if all(r.done for r in records.values()) and not in_flight:
                        break
                try:
                    tid, stage, prediction, confidence, new_features = result_queue.get(
                        timeout=0.05
                    )
                except queue.Empty:
                    # Evictions may have freed scheduling slots meanwhile.
                    now = time.monotonic() - t0
                    with lock:
                        refill(now)
                    continue
                now = time.monotonic() - t0
                with lock:
                    in_flight.pop(tid, None)
                    record = records[tid]
                    if not record.evicted:
                        record.outcomes.append(
                            StageOutcome(
                                stage=stage,
                                prediction=prediction,
                                confidence=confidence,
                            )
                        )
                        features[tid] = new_features
                        if record.complete:
                            record.finish_time = now
                    refill(now)
        finally:
            stop.set()
            for _ in workers:
                work_queue.put(None)
            for w in workers:
                w.join(timeout=1.0)
            daemon.join(timeout=1.0)

        results = []
        for tid in sorted(records):
            record = records[tid]
            elapsed = record.finish_time if record.finish_time is not None else (
                time.monotonic() - t0
            )
            results.append(
                RuntimeTaskResult(
                    task_id=tid,
                    outcomes=list(record.outcomes),
                    evicted=record.evicted,
                    elapsed=float(elapsed),
                )
            )
        self._inputs = []
        return results
