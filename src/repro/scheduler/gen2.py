"""Gen-2 imprecise-computation scheduling (ROADMAP item 4).

The authors' follow-up paper ("Scheduling Real-time Deep Learning Services
as Imprecise Computations") recasts a staged model as an *imprecise
computation*: a **mandatory prefix** every task must receive, plus
**optional refinement** stages whose utility is a function of both the
deadline and how many stages completed.  The first-generation scheduler in
:mod:`repro.scheduler.policies` plans one stage at a time by confidence
gain; this module plans **per-task stage budgets jointly across the whole
runnable queue**:

- :class:`StageBudgetPlanner` allocates worker capacity to stages by
  *marginal expected utility per unit cost*, reusing the fitted
  :class:`~repro.scheduler.confidence.ConfidencePredictor` and discounting
  by deadline feasibility (a stage that cannot finish before its task's
  deadline is never funded);
- :class:`Gen2Policy` wraps the planner as a drop-in
  :class:`~repro.scheduler.policies.SchedulingPolicy`: every ``plan()``
  re-plans the joint allocation (the runtime/simulator call it on every
  arrival and completion) and publishes the budgets in ``last_budgets``;
- :func:`apply_stage_budgets` turns a fresh plan into **preemption of
  optional stages**: an in-progress task whose remaining optional stages
  lost the capacity auction has its ``stage_cap`` tightened (the cap is
  tightening-only, enforced by :class:`~repro.scheduler.task.TaskRecord`) —
  the mandatory prefix and already-executed stages are never revoked.

Together with the anytime contract (``SimulationConfig.anytime`` /
``RuntimeConfig.anytime`` / ``InferRequest.anytime``: respond best-so-far
at the deadline, never late) this is the DeepRT-style serving tier that
holds SLOs under 2-3x overload — gated by ``make anytime``.  Full design
notes: ``docs/SCHEDULER.md``.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..admission.shedding import reachable_stage
from .confidence import ConfidencePredictor
from .policies import PlanItem, SchedulingPolicy
from .task import TaskView

_EPS = 1e-9


@dataclass(frozen=True)
class StageBid:
    """One candidate stage in the capacity auction."""

    task_id: int
    stage: int
    #: marginal expected utility of running this stage (predicted confidence
    #: after it minus predicted confidence before it; never negative).
    gain: float
    #: execution-time estimate of the stage, seconds.
    cost: float
    deadline: float
    #: part of the task's mandatory prefix (funded before any optional bid).
    mandatory: bool

    @property
    def density(self) -> float:
        """Marginal expected utility per unit cost — the auction's key."""
        return self.gain / max(self.cost, _EPS)


@dataclass
class BudgetPlan:
    """Outcome of one joint planning pass."""

    #: task id -> total stages the task is entitled to (executed + funded).
    budgets: Dict[int, int]
    #: funded stages in execution order (mandatory EDF prefix first, then
    #: optional stages by descending marginal utility per cost).
    order: List[PlanItem]
    #: stages demanded vs. funded — equal when the pool is uncontended.
    demanded: int = 0
    funded: int = 0

    @property
    def contended(self) -> bool:
        return self.funded < self.demanded


class _CapacityLedger:
    """Feasibility bookkeeping for the auction.

    A funded stage due by deadline ``d`` consumes worker time that must fit
    before ``d``: for every deadline in the funded set, the cumulative cost
    of stages due by then must not exceed ``num_workers * (deadline - now)``
    (the EDF-schedulability condition the planner enforces greedily).
    """

    def __init__(self, num_workers: int, now: float) -> None:
        self.num_workers = num_workers
        self.now = now
        self._alloc: Dict[float, float] = {}  # deadline -> funded cost

    def try_add(self, deadline: float, cost: float) -> bool:
        """Fund one stage due by ``deadline`` if it keeps the set feasible."""
        if deadline <= self.now + _EPS:
            return False
        tentative = dict(self._alloc)
        tentative[deadline] = tentative.get(deadline, 0.0) + cost
        cum = 0.0
        for d in sorted(tentative):
            cum += tentative[d]
            # Adding cost at `deadline` only raises cumulative load at
            # deadlines >= it; earlier deadlines cannot newly violate.
            if d + _EPS >= deadline and cum > self.num_workers * (d - self.now) + _EPS:
                return False
        self._alloc = tentative
        return True


@dataclass
class StageBudgetPlanner:
    """Jointly assigns per-task stage budgets across the runnable queue.

    Two-pass greedy auction over a worker-time ledger:

    1. **Mandatory pass** — each task's mandatory prefix (first
       ``mandatory_stages`` stages), earliest deadline first.  A prefix
       that cannot finish before its deadline is not funded (the capacity
       would be wasted; the task serves whatever it already holds under
       the anytime contract).
    2. **Optional pass** — remaining stages compete by marginal expected
       utility per unit cost, highest density first; a task's stage ``s+1``
       only becomes biddable once its stage ``s`` was funded (stages are
       sequential), and every funded stage must keep the whole set
       deadline-feasible.
    """

    predictor: Optional[ConfidencePredictor]
    num_workers: int = 2
    #: per-stage execution-time estimate, seconds (the auction's cost unit).
    stage_time_s: float = 1.0
    #: stages every task must receive before any optional stage is funded
    #: anywhere — the imprecise-computation mandatory prefix.
    mandatory_stages: int = 1

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("need at least one worker")
        if self.stage_time_s <= 0:
            raise ValueError("stage_time_s must be positive")
        if self.mandatory_stages < 1:
            raise ValueError("mandatory prefix needs at least one stage")

    # ------------------------------------------------------------------
    def _confidence_curve(self, view: TaskView) -> List[float]:
        """Predicted confidence after each not-yet-run stage.

        Monotone envelope over the predictor's point estimates, so marginal
        gains are never negative (utility is non-decreasing in stages — the
        imprecise-computation axiom).
        """
        if self.predictor is None:
            held = view.latest_confidence or 0.0
            return [
                max(held, (s + 1) / view.num_stages)
                for s in range(view.stages_done, view.num_stages)
            ]
        if view.stages_done == 0:
            held = self.predictor.baseline()
            estimate = lambda s: self.predictor.prior(s)  # noqa: E731
        else:
            held = view.latest_confidence
            observed = view.stages_done - 1
            estimate = lambda s: self.predictor.predict(  # noqa: E731
                observed, view.latest_confidence, s
            )
        curve: List[float] = []
        prev = held
        for s in range(view.stages_done, view.num_stages):
            prev = max(prev, float(estimate(s)))
            curve.append(prev)
        return curve

    def _bids_for(self, view: TaskView, now: float) -> List[StageBid]:
        """Feasible stage bids for one task, in stage order."""
        feasible_count = reachable_stage(view, now, self.stage_time_s) + 1
        if feasible_count <= view.stages_done:
            return []
        curve = self._confidence_curve(view)
        held = (
            view.latest_confidence
            if view.stages_done
            else (self.predictor.baseline() if self.predictor else 0.0)
        )
        bids: List[StageBid] = []
        prev = held or 0.0
        for i, stage in enumerate(range(view.stages_done, view.num_stages)):
            if stage >= feasible_count:
                break
            gain = max(0.0, curve[i] - prev)
            prev = curve[i]
            bids.append(
                StageBid(
                    task_id=view.task_id,
                    stage=stage,
                    gain=gain,
                    cost=self.stage_time_s,
                    deadline=view.deadline,
                    mandatory=stage < self.mandatory_stages,
                )
            )
        return bids

    def plan_budgets(self, views: Sequence[TaskView], now: float) -> BudgetPlan:
        runnable = [v for v in views if v.next_stage is not None]
        # Executed stages are owned unconditionally — a budget can never
        # fall below what already ran.
        budgets: Dict[int, int] = {v.task_id: v.stages_done for v in runnable}
        if not runnable:
            return BudgetPlan(budgets=budgets, order=[])
        per_task: Dict[int, List[StageBid]] = {
            v.task_id: self._bids_for(v, now) for v in runnable
        }
        demanded = sum(
            v.num_stages - v.stages_done for v in runnable
        )
        ledger = _CapacityLedger(self.num_workers, now)
        mandatory_order: List[PlanItem] = []
        optional_order: List[PlanItem] = []
        funded = 0

        # Pass 1: mandatory prefixes, earliest deadline first.  All of a
        # task's mandatory stages are funded atomically — a half-funded
        # prefix delivers nothing the task does not already hold.
        for view in sorted(runnable, key=lambda v: (v.deadline, v.task_id)):
            prefix = [b for b in per_task[view.task_id] if b.mandatory]
            if not prefix:
                continue
            trial = _CapacityLedger(self.num_workers, now)
            trial._alloc = dict(ledger._alloc)
            if all(trial.try_add(b.deadline, b.cost) for b in prefix):
                ledger._alloc = trial._alloc
                for b in prefix:
                    mandatory_order.append((b.task_id, b.stage))
                budgets[view.task_id] = max(
                    budgets[view.task_id], prefix[-1].stage + 1
                )
                funded += len(prefix)

        # Pass 2: optional stages by marginal utility per unit cost.  Only
        # the next unfunded stage of each task is biddable; funding it
        # unlocks the one after (stages are sequential).
        frontier: Dict[int, int] = {}
        heap: List[Tuple[float, int, int]] = []  # (-density, task_id, idx)
        for tid, bids in per_task.items():
            idx = budgets[tid] - (bids[0].stage if bids else 0)
            idx = max(0, idx)
            frontier[tid] = idx
            if idx < len(bids):
                heapq.heappush(heap, (-bids[idx].density, tid, idx))
        while heap:
            neg_density, tid, idx = heapq.heappop(heap)
            if frontier[tid] != idx:
                continue  # stale entry from an earlier frontier
            bid = per_task[tid][idx]
            if ledger.try_add(bid.deadline, bid.cost):
                optional_order.append((bid.task_id, bid.stage))
                budgets[tid] = bid.stage + 1
                funded += 1
                frontier[tid] = idx + 1
                if idx + 1 < len(per_task[tid]):
                    nxt = per_task[tid][idx + 1]
                    heapq.heappush(heap, (-nxt.density, tid, idx + 1))
            # An infeasible bid is dropped and never unlocks later stages
            # of its task (they would be even less feasible).
        return BudgetPlan(
            budgets=budgets,
            order=mandatory_order + optional_order,
            demanded=demanded,
            funded=funded,
        )


@dataclass
class Gen2Policy(SchedulingPolicy):
    """Imprecise-computation scheduler: joint budgets + optional preemption.

    A drop-in :class:`SchedulingPolicy` whose every ``plan()`` call runs the
    joint budget auction and publishes the result in ``last_budgets``; the
    simulator and runtime apply those budgets as tightening-only stage caps
    (see :func:`apply_stage_budgets`), which is how a newly arrived
    higher-marginal-utility task preempts an in-progress task's remaining
    *optional* stages — never its mandatory prefix, never stages already
    executed.
    """

    predictor: Optional[ConfidencePredictor]
    num_workers: int = 2
    stage_time_s: float = 1.0
    mandatory_stages: int = 1
    #: publish budgets for preemption; False plans budgets for ordering
    #: only (no caps are applied — an ablation knob).
    preempt: bool = True
    name: str = field(default="gen2", init=False)
    last_plan: Optional[BudgetPlan] = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        self._planner = StageBudgetPlanner(
            predictor=self.predictor,
            num_workers=self.num_workers,
            stage_time_s=self.stage_time_s,
            mandatory_stages=self.mandatory_stages,
        )
        self.plans_stage_budgets = bool(self.preempt)
        self.last_budgets = None

    def plan(self, tasks: Sequence[TaskView], now: float) -> List[PlanItem]:
        plan = self._planner.plan_budgets(tasks, now)
        self.last_plan = plan
        self.last_budgets = dict(plan.budgets) if self.preempt else None
        return list(plan.order)


def apply_stage_budgets(
    policy: SchedulingPolicy,
    records: Dict[int, "object"],
    now: float,
    tel=None,
    scope: str = "scheduler",
    contended: bool = True,
) -> List[int]:
    """Turn a policy's freshly planned budgets into stage-cap preemptions.

    For every live task whose fresh budget is *below* its current stage
    entitlement, the ``stage_cap`` is tightened to the budget — revoking
    the remaining optional stages.  Floors guarantee the mandatory
    invariants: a cap never drops below one stage nor below what already
    executed.  Returns the preempted task ids.  Policies that do not plan
    budgets (``plans_stage_budgets`` unset) are a no-op, so calling this
    unconditionally after ``plan()`` is free for gen-1 policies.

    ``contended`` must reflect whether any task is *waiting* for an
    admission slot.  Revoking optional stages pays only through slot
    turnover — retiring a capped task admits a queued one.  With nobody
    waiting, a cap would be pure loss (the cap is tightening-only, so a
    transient plan deficit would permanently forfeit refinement a later
    lull could have funded) — so budgets plan the dispatch *order* but
    are not applied as caps.
    """
    if not getattr(policy, "plans_stage_budgets", False):
        return []
    if not contended:
        return []
    budgets = getattr(policy, "last_budgets", None) or {}
    preempted: List[int] = []
    for tid, budget in budgets.items():
        record = records.get(tid)
        if record is None or record.done:
            continue
        floor = max(1, record.stages_done)
        budget = max(int(budget), floor)
        if budget >= record.effective_stages:
            continue  # nothing to revoke (or would loosen — disallowed)
        record.stage_cap = budget
        preempted.append(tid)
        if tel is not None:
            tel.registry.counter(f"{scope}.stages_preempted").inc()
            tel.trace.degrade_cap(now, tid, stage_cap=budget)
    return preempted
