"""Scheduling policies: RTDeepIoT-k greedy, the DC variant, RR and FIFO.

A policy plans a short *timeline* of (task, stage) work items.  The greedy
algorithm of Section III: "starts from an empty set.  In each step, the
algorithm picks a stage of a task with the maximum differential utility
(where utility ... is set equal to the estimated confidence in results).
This selected stage is added to the future timeline.  A lookahead parameter
k specifies how many items will be added to the timeline before the
scheduler quits.  When the timeline has been executed, the algorithm
restarts again with the most recent utility estimates."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .confidence import ConfidencePredictor, ConstantSlopePredictor
from .task import TaskView

PlanItem = Tuple[int, int]  # (task_id, stage index)


class SchedulingPolicy:
    """Interface: produce the next timeline of work items."""

    name: str = "base"
    #: gen-2 protocol (:mod:`repro.scheduler.gen2`): a policy that jointly
    #: plans per-task stage budgets sets this True and publishes its latest
    #: allocation in ``last_budgets`` after every ``plan()`` call; the
    #: simulator/runtime then apply those budgets as tightening-only stage
    #: caps (preemption of optional stages).  Gen-1 policies leave both
    #: untouched and are entirely unaffected.
    plans_stage_budgets: bool = False
    last_budgets: Optional[Dict[int, int]] = None

    def plan(self, tasks: Sequence[TaskView], now: float) -> List[PlanItem]:
        raise NotImplementedError  # pragma: no cover

    @staticmethod
    def _runnable(tasks: Sequence[TaskView]) -> List[TaskView]:
        return [t for t in tasks if t.next_stage is not None]


@dataclass
class RTDeepIoTPolicy(SchedulingPolicy):
    """Greedy utility-maximizing scheduler with lookahead ``k``.

    ``dynamic=True`` (default) predicts future confidence with the fitted
    GP-based (or any) :class:`ConfidencePredictor`; ``dynamic=False`` gives
    the RTDeepIoT-DC-k variant: constant-slope extrapolation of the increase
    observed in the task's most recent stage.
    """

    predictor: ConfidencePredictor
    k: int = 1
    dynamic: bool = True

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("lookahead k must be >= 1")
        self.name = f"RTDeepIoT-{'' if self.dynamic else 'DC-'}{self.k}"

    # -- per-task utility bookkeeping ----------------------------------
    def _anchor(self, view: TaskView) -> Tuple[Optional[int], float, float]:
        """(observed_stage, observed_conf, slope) of a task's latest state."""
        if view.stages_done == 0:
            return None, self.predictor.baseline(), 0.0
        observed_stage = view.stages_done - 1
        observed_conf = view.confidences[-1]
        if view.stages_done >= 2:
            slope = view.confidences[-1] - view.confidences[-2]
        else:
            slope = observed_conf - self.predictor.baseline()
        return observed_stage, observed_conf, slope

    def _predicted_conf(
        self,
        view: TaskView,
        target_stage: int,
        anchor: Tuple[Optional[int], float, float],
    ) -> float:
        observed_stage, observed_conf, slope = anchor
        if observed_stage is None:
            if self.dynamic:
                return self.predictor.prior(target_stage)
            # DC cold start: same prior statistics.
            return self.predictor.prior(target_stage)
        if self.dynamic:
            return self.predictor.predict(observed_stage, observed_conf, target_stage)
        steps = target_stage - observed_stage
        return float(np.clip(observed_conf + slope * steps, 0.0, 1.0))

    def plan(self, tasks: Sequence[TaskView], now: float) -> List[PlanItem]:
        runnable = self._runnable(tasks)
        if not runnable:
            return []
        # Simulated per-task state during timeline construction:
        # (next stage to schedule, predicted confidence at current frontier).
        anchors = {t.task_id: self._anchor(t) for t in runnable}
        frontier: Dict[int, int] = {t.task_id: t.stages_done for t in runnable}
        current_conf: Dict[int, float] = {}
        for t in runnable:
            _, observed_conf, _ = anchors[t.task_id]
            current_conf[t.task_id] = observed_conf
        views = {t.task_id: t for t in runnable}

        timeline: List[PlanItem] = []
        for _ in range(self.k):
            best: Optional[Tuple[float, int]] = None
            for t in runnable:
                tid = t.task_id
                stage = frontier[tid]
                if stage >= t.num_stages:
                    continue
                predicted = self._predicted_conf(views[tid], stage, anchors[tid])
                gain = predicted - current_conf[tid]
                if best is None or gain > best[0]:
                    best = (gain, tid)
            if best is None:
                break
            _, tid = best
            stage = frontier[tid]
            predicted = self._predicted_conf(views[tid], stage, anchors[tid])
            timeline.append((tid, stage))
            frontier[tid] = stage + 1
            current_conf[tid] = predicted
        return timeline


@dataclass
class RoundRobinPolicy(SchedulingPolicy):
    """Stage-level round robin: one stage per in-flight task, rotating.

    "The scheduler will select a stage to run among all the deep learning
    services in a round-robin manner."
    """

    name: str = field(default="RR", init=False)
    #: task id served at the head of the previous plan; the next plan
    #: starts with the first runnable id *after* it.  A free-running index
    #: taken modulo the runnable count skews the rotation whenever the
    #: runnable set shrinks between plans (completed/evicted tasks shift
    #: every position, so the cursor lands on an arbitrary task and some
    #: tasks get double-served while others starve).
    _last_served: Optional[int] = field(default=None, init=False)

    def plan(self, tasks: Sequence[TaskView], now: float) -> List[PlanItem]:
        runnable = sorted(self._runnable(tasks), key=lambda t: t.task_id)
        if not runnable:
            return []
        # Resume after the task served last, by id — stable under a
        # changing runnable set, unlike a positional cursor.
        start = 0
        if self._last_served is not None:
            for i, t in enumerate(runnable):
                if t.task_id > self._last_served:
                    start = i
                    break
        ordered = runnable[start:] + runnable[:start]
        self._last_served = ordered[0].task_id
        return [(t.task_id, t.stages_done) for t in ordered]


@dataclass
class FIFOPolicy(SchedulingPolicy):
    """First-come-first-served, running every stage of a task to the end."""

    name: str = field(default="FIFO", init=False)

    def plan(self, tasks: Sequence[TaskView], now: float) -> List[PlanItem]:
        runnable = self._runnable(tasks)
        if not runnable:
            return []
        oldest = min(runnable, key=lambda t: (t.arrival_time, t.task_id))
        return [
            (oldest.task_id, s) for s in range(oldest.stages_done, oldest.num_stages)
        ]


@dataclass
class EDFPolicy(SchedulingPolicy):
    """Earliest-deadline-first, running the most urgent task to the end.

    The classic real-time baseline the gen-2 imprecise-computation
    scheduler is gated against: optimal for unit-utility jobs on one
    worker, but stage-blind — it spends capacity completing one task's
    optional refinement while other tasks' mandatory prefixes starve.
    """

    name: str = field(default="EDF", init=False)

    def plan(self, tasks: Sequence[TaskView], now: float) -> List[PlanItem]:
        runnable = self._runnable(tasks)
        if not runnable:
            return []
        urgent = min(runnable, key=lambda t: (t.deadline, t.arrival_time, t.task_id))
        return [
            (urgent.task_id, s) for s in range(urgent.stages_done, urgent.num_stages)
        ]
