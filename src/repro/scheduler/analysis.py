"""Scheduler optimality analysis (Sec. III-B's closing claim).

"Under certain conditions (submodular utility curves and equal stage
execution times), the scheduler optimizes global utility of the service."

This module makes that claim checkable:

- :func:`submodularity_violations` — measures how far a population of
  confidence curves is from submodular (diminishing per-stage gains);
- :func:`greedy_utility` / :func:`optimal_offline_utility` — total utility
  (sum of final confidences) achieved by the greedy stage-picking rule vs
  the true optimum found by exhaustive search over stage allocations, for
  small instances with a fixed stage budget and equal stage times;
- :func:`greedy_optimality_gap` — their ratio, which must be 1.0 on
  submodular curves and can drop below 1.0 when curves are non-submodular
  (confidence jumps late), demonstrating both halves of the claim.

The model here is the clean abstraction of the paper's setting: ``B`` stage
executions fit in the schedule (workers x deadline / stage time), stages of
a task must run in order, and the utility of a task is the confidence after
its last executed stage (chance-level baseline if none ran).
"""

from __future__ import annotations

from itertools import combinations_with_replacement
from typing import List, Sequence, Tuple

import numpy as np


def _validate_curves(curves: np.ndarray, baseline: float) -> np.ndarray:
    curves = np.asarray(curves, dtype=np.float64)
    if curves.ndim != 2:
        raise ValueError("curves must be (num_tasks, num_stages)")
    if not 0.0 <= baseline <= 1.0:
        raise ValueError("baseline must be in [0, 1]")
    return curves


def marginal_gains(curves: np.ndarray, baseline: float = 0.1) -> np.ndarray:
    """Per-stage confidence increments, including the baseline->stage-1 step."""
    curves = _validate_curves(curves, baseline)
    padded = np.concatenate(
        [np.full((curves.shape[0], 1), baseline), curves], axis=1
    )
    return np.diff(padded, axis=1)


def submodularity_violations(
    curves: np.ndarray, baseline: float = 0.1, tolerance: float = 1e-9
) -> float:
    """Fraction of tasks whose confidence curve is NOT submodular.

    A curve is submodular (diminishing returns) when its marginal gains are
    non-increasing across stages.
    """
    gains = marginal_gains(curves, baseline)
    increasing = (np.diff(gains, axis=1) > tolerance).any(axis=1)
    return float(increasing.mean())


def _allocation_utility(
    curves: np.ndarray, allocation: Sequence[int], baseline: float
) -> float:
    total = 0.0
    for task, stages in enumerate(allocation):
        total += baseline if stages == 0 else float(curves[task, stages - 1])
    return total


def greedy_allocation(
    curves: np.ndarray, budget: int, baseline: float = 0.1
) -> List[int]:
    """Stages-per-task chosen by the paper's greedy rule with perfect
    confidence prediction: repeatedly run the next stage with the maximum
    differential utility."""
    curves = _validate_curves(curves, baseline)
    if budget < 0:
        raise ValueError("budget must be non-negative")
    num_tasks, num_stages = curves.shape
    allocation = [0] * num_tasks
    current = [baseline] * num_tasks
    for _ in range(min(budget, num_tasks * num_stages)):
        best_gain, best_task = -np.inf, -1
        for task in range(num_tasks):
            if allocation[task] >= num_stages:
                continue
            gain = curves[task, allocation[task]] - current[task]
            if gain > best_gain:
                best_gain, best_task = gain, task
        if best_task < 0:
            break
        current[best_task] = float(curves[best_task, allocation[best_task]])
        allocation[best_task] += 1
    return allocation


def greedy_utility(curves: np.ndarray, budget: int, baseline: float = 0.1) -> float:
    return _allocation_utility(
        _validate_curves(curves, baseline),
        greedy_allocation(curves, budget, baseline),
        baseline,
    )


def optimal_offline_utility(
    curves: np.ndarray, budget: int, baseline: float = 0.1
) -> float:
    """Exact optimum by dynamic programming over (task, remaining budget).

    Feasible because stages of one task are consumed in order: each task
    contributes a choice of 0..num_stages executions.
    """
    curves = _validate_curves(curves, baseline)
    if budget < 0:
        raise ValueError("budget must be non-negative")
    num_tasks, num_stages = curves.shape
    neg = -np.inf
    dp = np.full(budget + 1, neg)
    dp[0] = 0.0
    for task in range(num_tasks):
        new = np.full(budget + 1, neg)
        options = [(0, baseline)] + [
            (s + 1, float(curves[task, s])) for s in range(num_stages)
        ]
        for spent in range(budget + 1):
            if dp[spent] == neg:
                continue
            for cost, value in options:
                if spent + cost <= budget:
                    candidate = dp[spent] + value
                    if candidate > new[spent + cost]:
                        new[spent + cost] = candidate
        dp = new
    return float(dp.max())


def greedy_optimality_gap(
    curves: np.ndarray, budget: int, baseline: float = 0.1
) -> float:
    """greedy utility / optimal utility (1.0 = greedy is optimal)."""
    optimal = optimal_offline_utility(curves, budget, baseline)
    if optimal <= 0:
        return 1.0
    return greedy_utility(curves, budget, baseline) / optimal
