"""Dynamic confidence-curve prediction (Sec. III-B).

The scheduler needs, for every task, an estimate of the confidence its
classifier would report *after* stages that have not executed yet.  The
paper trains one Gaussian-process regressor per (observed stage, future
stage) pair — GP1→2, GP1→3, GP2→3 for a three-stage network — on the
confidence curves of the training data, then approximates each fitted GP
with a piecewise-linear function for cheap runtime evaluation.

Two predictor families are provided:

- :class:`GPConfidencePredictor` — the full method (exact GP fit +
  piecewise-linear runtime approximation; set ``use_approximation=False`` to
  query the exact GP for the ablation benchmark);
- :class:`ConstantSlopePredictor` — the paper's RTDeepIoT-DC simplification:
  assume confidence keeps increasing with the same slope observed so far.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..gp import GPRegression, PiecewiseLinear, RBFKernel, approximate_gp


class ConfidencePredictor:
    """Interface: predict confidence at a future stage given observations."""

    num_stages: int

    def prior(self, stage: int) -> float:
        """Predicted confidence at ``stage`` before any stage has executed."""
        raise NotImplementedError  # pragma: no cover

    def baseline(self) -> float:
        """Confidence attributed to a task with no completed stage."""
        raise NotImplementedError  # pragma: no cover

    def predict(self, observed_stage: int, observed_conf: float, target_stage: int) -> float:
        """Predicted confidence at ``target_stage`` given stage
        ``observed_stage`` reported ``observed_conf``."""
        raise NotImplementedError  # pragma: no cover


@dataclass
class GPConfidencePredictor(ConfidencePredictor):
    """GP-based confidence-curve predictor with piecewise-linear runtime path.

    Parameters
    ----------
    max_fit_points:
        Exact GP fitting is O(n^3); training confidences are subsampled to
        at most this many points (uniformly, seeded).
    num_profile_points:
        M of the paper's profiling grid {0, 1/M, ..., 1}.
    use_approximation:
        If False, queries go to the exact GP — used by the ablation that
        measures what the piecewise-linear approximation costs/saves.
    """

    num_classes: int = 10
    max_fit_points: int = 300
    num_profile_points: int = 10
    use_approximation: bool = True
    seed: int = 0
    num_stages: int = field(default=0, init=False)
    _gps: Dict[Tuple[int, int], GPRegression] = field(default_factory=dict, init=False)
    _pls: Dict[Tuple[int, int], PiecewiseLinear] = field(default_factory=dict, init=False)
    _priors: np.ndarray = field(default=None, init=False)

    def fit(self, stage_confidences: np.ndarray) -> "GPConfidencePredictor":
        """Fit from a (num_stages, N) matrix of training-set confidences.

        Trains GP_{l→l'} for every pair l < l' (the paper's GP1→2, GP1→3,
        GP2→3 generalized to any stage count) and profiles each into a
        piecewise-linear function.
        """
        stage_confidences = np.asarray(stage_confidences, dtype=np.float64)
        if stage_confidences.ndim != 2:
            raise ValueError("stage_confidences must be (num_stages, N)")
        self.num_stages, n = stage_confidences.shape
        if self.num_stages < 1 or n < 2:
            raise ValueError("need at least one stage and two samples")
        rng = np.random.default_rng(self.seed)
        if n > self.max_fit_points:
            idx = rng.choice(n, size=self.max_fit_points, replace=False)
        else:
            idx = np.arange(n)
        sub = stage_confidences[:, idx]
        self._priors = stage_confidences.mean(axis=1)
        for l_from in range(self.num_stages):
            for l_to in range(l_from + 1, self.num_stages):
                gp = GPRegression.fit_with_grid_search(sub[l_from], sub[l_to])
                self._gps[(l_from, l_to)] = gp
                self._pls[(l_from, l_to)] = approximate_gp(
                    gp, num_points=self.num_profile_points
                )
        return self

    # ------------------------------------------------------------------
    @property
    def fitted(self) -> bool:
        return self._priors is not None

    def _check_fitted(self) -> None:
        if not self.fitted:
            raise RuntimeError("call fit() first")

    def baseline(self) -> float:
        """A task with no executed stage carries chance-level confidence."""
        return 1.0 / self.num_classes

    def prior(self, stage: int) -> float:
        """Before any execution, predicted confidence is the same for all
        tasks, "based on overall statistics computed from training data"."""
        self._check_fitted()
        if not 0 <= stage < self.num_stages:
            raise IndexError(f"stage {stage} out of range")
        return float(self._priors[stage])

    def predict(self, observed_stage: int, observed_conf: float, target_stage: int) -> float:
        self._check_fitted()
        if target_stage <= observed_stage:
            raise ValueError("target stage must come after the observed stage")
        if not 0 <= target_stage < self.num_stages:
            raise IndexError(f"stage {target_stage} out of range")
        key = (observed_stage, target_stage)
        if self.use_approximation:
            value = float(self._pls[key](observed_conf))
        else:
            mean, _ = self._gps[key].predict(np.array([observed_conf]))
            value = float(mean[0])
        return float(np.clip(value, 0.0, 1.0))

    def exact_gp(self, observed_stage: int, target_stage: int) -> GPRegression:
        """Access the underlying GP (used by the Table III evaluation)."""
        self._check_fitted()
        return self._gps[(observed_stage, target_stage)]


@dataclass
class ConstantSlopePredictor(ConfidencePredictor):
    """The RTDeepIoT-DC simplification (Sec. III-C experiment list).

    "Instead of using dynamic confidence updates, it assumes that the
    confidence will continue to increase with the same slope.  Therefore it
    uses the confidence increase in the current stage as the predicted
    increase per each of the future stages."

    For a task that has executed no stage yet, the per-stage prior means of
    the training data are used (same cold-start as the GP predictor).
    """

    num_classes: int = 10
    num_stages: int = field(default=0, init=False)
    _priors: np.ndarray = field(default=None, init=False)

    def fit(self, stage_confidences: np.ndarray) -> "ConstantSlopePredictor":
        stage_confidences = np.asarray(stage_confidences, dtype=np.float64)
        if stage_confidences.ndim != 2:
            raise ValueError("stage_confidences must be (num_stages, N)")
        self.num_stages = stage_confidences.shape[0]
        self._priors = stage_confidences.mean(axis=1)
        return self

    def baseline(self) -> float:
        return 1.0 / self.num_classes

    def prior(self, stage: int) -> float:
        if self._priors is None:
            raise RuntimeError("call fit() first")
        if not 0 <= stage < self.num_stages:
            raise IndexError(f"stage {stage} out of range")
        return float(self._priors[stage])

    def predict(self, observed_stage: int, observed_conf: float, target_stage: int) -> float:
        if self._priors is None:
            raise RuntimeError("call fit() first")
        if target_stage <= observed_stage:
            raise ValueError("target stage must come after the observed stage")
        if not 0 <= target_stage < self.num_stages:
            raise IndexError(f"stage {target_stage} out of range")
        if observed_stage == 0:
            # Slope of the current (first) stage relative to chance level.
            slope = observed_conf - self.baseline()
        else:
            # The caller only knows the latest confidence; the DC policy
            # tracks the previous stage's value and passes the slope through
            # observed_conf bookkeeping at the policy level.  Here we fall
            # back to the prior inter-stage increment when unavailable.
            slope = float(self._priors[observed_stage] - self._priors[observed_stage - 1])
        steps = target_stage - observed_stage
        return float(np.clip(observed_conf + slope * steps, 0.0, 1.0))

    def predict_with_slope(
        self, observed_conf: float, slope: float, steps: int
    ) -> float:
        """Direct DC extrapolation used by the policy (which knows the
        actually-observed per-stage increase)."""
        return float(np.clip(observed_conf + slope * steps, 0.0, 1.0))
