"""Multiple service classes and pricing (the paper's Sec. V future work).

"In reality, different applications will have different demands and
constraints.  For example, an interactive voice chatbot might have
significantly tighter latency constraints than an intrusion detection
camera. ...  The scheduler described in this paper needs to be modified to
support multiple service classes and account for different execution cost
and constraints.  An appropriate pricing structure may be needed that is
informed of the true resource cost imposed by clients of each class."

This module implements that modification:

- :class:`ServiceClass` — a named class with its own latency constraint,
  utility weight and per-stage price;
- :class:`ClassAwareRTDeepIoTPolicy` — the greedy scheduler with utility
  scaled by each task's class weight, and an urgency boost as a task's
  deadline approaches (tight-deadline classes get served first);
- :class:`PricingModel` — charges per executed stage at class rates, with a
  refund for tasks evicted before finishing a single stage (no answer, no
  charge), so revenue reflects the true resource cost per class.

:class:`~repro.scheduler.simulator.PoolSimulator` accepts per-task latency
constraints and class assignments through
:func:`assign_classes` / ``SimulationConfig`` extension points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .confidence import ConfidencePredictor
from .policies import PlanItem, RTDeepIoTPolicy, SchedulingPolicy
from .task import TaskView


@dataclass(frozen=True)
class ServiceClass:
    """A client class with its own constraints and economics."""

    name: str
    latency_constraint: float
    weight: float = 1.0
    price_per_stage: float = 1.0

    def __post_init__(self) -> None:
        if self.latency_constraint <= 0:
            raise ValueError("latency constraint must be positive")
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if self.price_per_stage < 0:
            raise ValueError("price cannot be negative")


#: two example classes matching the paper's motivating sentence.
INTERACTIVE = ServiceClass("interactive", latency_constraint=4.0, weight=3.0,
                           price_per_stage=3.0)
BATCH = ServiceClass("batch", latency_constraint=12.0, weight=1.0,
                     price_per_stage=1.0)


def assign_classes(
    num_tasks: int,
    classes: Sequence[ServiceClass],
    fractions: Sequence[float],
    seed: int = 0,
) -> List[ServiceClass]:
    """Randomly assign one class per task with the given mix fractions."""
    if len(classes) != len(fractions) or not classes:
        raise ValueError("classes and fractions must align and be non-empty")
    fractions = np.asarray(fractions, dtype=np.float64)
    if fractions.min() < 0 or abs(fractions.sum() - 1.0) > 1e-9:
        raise ValueError("fractions must be a distribution")
    rng = np.random.default_rng(seed)
    indices = rng.choice(len(classes), size=num_tasks, p=fractions)
    return [classes[i] for i in indices]


@dataclass
class ClassAwareRTDeepIoTPolicy(SchedulingPolicy):
    """Greedy utility scheduler with class weights and deadline urgency.

    The marginal utility of a stage is the predicted confidence gain (as in
    :class:`~repro.scheduler.policies.RTDeepIoTPolicy`) multiplied by the
    task's class weight, and further scaled by an urgency factor
    ``1 + urgency * max(0, 1 - slack/constraint)`` so work migrates toward
    tasks about to hit their (class-specific) deadline.
    """

    predictor: ConfidencePredictor
    task_classes: Dict[int, ServiceClass]
    k: int = 1
    urgency: float = 1.0
    default_class: ServiceClass = BATCH

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("lookahead k must be >= 1")
        if self.urgency < 0:
            raise ValueError("urgency must be non-negative")
        self.name = f"ClassAware-RTDeepIoT-{self.k}"
        self._inner = RTDeepIoTPolicy(self.predictor, k=1, dynamic=True)

    def _scale(self, view: TaskView, now: float) -> float:
        service_class = self.task_classes.get(view.task_id, self.default_class)
        slack = view.remaining_time(now)
        pressure = max(0.0, 1.0 - slack / service_class.latency_constraint)
        return service_class.weight * (1.0 + self.urgency * pressure)

    def plan(self, tasks: Sequence[TaskView], now: float) -> List[PlanItem]:
        runnable = self._runnable(tasks)
        if not runnable:
            return []
        anchors = {t.task_id: self._inner._anchor(t) for t in runnable}
        frontier = {t.task_id: t.stages_done for t in runnable}
        current = {t.task_id: anchors[t.task_id][1] for t in runnable}
        views = {t.task_id: t for t in runnable}
        timeline: List[PlanItem] = []
        for _ in range(self.k):
            best: Optional[Tuple[float, int]] = None
            for t in runnable:
                tid = t.task_id
                stage = frontier[tid]
                if stage >= t.num_stages:
                    continue
                predicted = self._inner._predicted_conf(views[tid], stage, anchors[tid])
                gain = (predicted - current[tid]) * self._scale(t, now)
                if best is None or gain > best[0]:
                    best = (gain, tid)
            if best is None:
                break
            _, tid = best
            stage = frontier[tid]
            predicted = self._inner._predicted_conf(views[tid], stage, anchors[tid])
            timeline.append((tid, stage))
            frontier[tid] = stage + 1
            current[tid] = predicted
        return timeline


@dataclass
class ClassBill:
    """Per-class revenue/served accounting."""

    served_tasks: int = 0
    evicted_unserved: int = 0
    stages_charged: int = 0
    revenue: float = 0.0


class PricingModel:
    """Charges per executed stage at class rates; no answer, no charge."""

    def __init__(self, task_classes: Dict[int, ServiceClass],
                 default_class: ServiceClass = BATCH) -> None:
        self.task_classes = task_classes
        self.default_class = default_class

    def bill(self, records) -> Dict[str, ClassBill]:
        """Aggregate an episode's :class:`TaskRecord` list into class bills."""
        bills: Dict[str, ClassBill] = {}
        for record in records:
            service_class = self.task_classes.get(record.task_id, self.default_class)
            entry = bills.setdefault(service_class.name, ClassBill())
            if record.stages_done == 0:
                entry.evicted_unserved += 1
                continue
            entry.served_tasks += 1
            entry.stages_charged += record.stages_done
            entry.revenue += record.stages_done * service_class.price_per_stage
        return bills
