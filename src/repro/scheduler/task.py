"""Task representations shared by the scheduler, simulator and runtime."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass(frozen=True)
class StageOutcome:
    """Result of executing one stage of one task: (predicted value, confidence).

    This is exactly the tuple the paper's worker processes emit at the end of
    each stage and push to the scheduler over a named pipe.
    """

    stage: int
    prediction: int
    confidence: float
    correct: Optional[bool] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.confidence <= 1.0:
            raise ValueError(f"confidence must be in [0, 1], got {self.confidence}")
        if self.stage < 0:
            raise ValueError("stage must be non-negative")


@dataclass
class TaskRecord:
    """Full mutable record of a task inside the simulator/runtime."""

    task_id: int
    arrival_time: float
    deadline: float
    num_stages: int
    outcomes: List[StageOutcome] = field(default_factory=list)
    evicted: bool = False
    finish_time: Optional[float] = None
    #: dropped by admission control before receiving any service (overload
    #: shedding) — distinct from ``evicted``, which is a deadline miss.
    shed: bool = False
    #: served by the anytime contract: the best already-computed stage
    #: result was returned at the deadline instead of evicting the task.
    anytime_served: bool = False
    #: degrade-before-drop / gen-2 preemption: the task will be served only
    #: up to this stage (exclusive upper bound on stage count); ``None`` =
    #: full service.  Assignments are **tightening-only** — the property
    #: installed below this class enforces ``min(old, new)`` in one place.
    stage_cap: Optional[int] = None

    def __post_init__(self) -> None:
        if self.deadline <= self.arrival_time:
            raise ValueError("deadline must be after arrival")
        if self.num_stages < 1:
            raise ValueError("a task needs at least one stage")

    def _get_stage_cap(self) -> Optional[int]:
        return self._stage_cap

    def _set_stage_cap(self, value: Optional[int]) -> None:
        """Tightening-only: a later degrade/preemption pass must never
        *raise* a previously assigned lower cap (``min(old, new)`` enforced
        here, the single authoritative place).  Assigning ``None`` is a
        no-op — a granted cap cannot be loosened back to full service.
        """
        old = getattr(self, "_stage_cap", None)
        if value is None:
            self._stage_cap = old
            return
        if value < 1:
            raise ValueError("stage_cap must be >= 1 when given")
        self._stage_cap = int(value) if old is None else min(old, int(value))

    @property
    def effective_stages(self) -> int:
        """Stages this task will actually be served (cap-aware)."""
        if self.stage_cap is None:
            return self.num_stages
        return min(self.num_stages, self.stage_cap)

    @property
    def stages_done(self) -> int:
        return len(self.outcomes)

    @property
    def next_stage(self) -> Optional[int]:
        if self.stages_done >= self.effective_stages:
            return None
        return self.stages_done

    @property
    def complete(self) -> bool:
        """All stages the task is *entitled to* ran (cap-aware)."""
        return self.stages_done >= self.effective_stages

    @property
    def fully_complete(self) -> bool:
        """Every stage of the full model ran — the non-degraded outcome."""
        return self.stages_done >= self.num_stages

    @property
    def done(self) -> bool:
        """No more work will happen (all stages ran, eviction, or shed)."""
        return self.complete or self.evicted or self.shed

    @property
    def latest_confidence(self) -> Optional[float]:
        return self.outcomes[-1].confidence if self.outcomes else None

    @property
    def latest_prediction(self) -> Optional[int]:
        return self.outcomes[-1].prediction if self.outcomes else None

    @property
    def final_correct(self) -> bool:
        """Service-level correctness: last completed stage's verdict.

        Tasks that never completed a stage produce no usable answer and count
        as incorrect ("no utility is accrued for tasks that are not
        completed").
        """
        if not self.outcomes:
            return False
        return bool(self.outcomes[-1].correct)

    def finalize_anytime(self, now: float) -> None:
        """Close the task under the anytime contract at its deadline.

        The best already-computed stage becomes the served answer: the cap
        tightens to what actually ran (so ``complete`` holds), and the
        response is stamped at the deadline itself — a deadline-constrained
        ``infer()`` is *never late*, even if the daemon noticed after the
        fact.  Callers must guarantee ``outcomes`` is non-empty.
        """
        if not self.outcomes:
            raise ValueError("anytime finalize needs at least one outcome")
        self.stage_cap = self.stages_done
        self.anytime_served = True
        self.finish_time = min(now, self.deadline)

    def view(self) -> "TaskView":
        # Policies see the cap-aware stage count, so a degraded task is
        # never planned past its early exit.
        return TaskView(
            task_id=self.task_id,
            arrival_time=self.arrival_time,
            deadline=self.deadline,
            num_stages=self.effective_stages,
            stages_done=self.stages_done,
            confidences=tuple(o.confidence for o in self.outcomes),
        )


# The dataclass-generated ``__init__``/``__repr__``/``__eq__`` captured the
# plain ``stage_cap`` field above; replacing the class attribute with a
# property afterwards routes *every* assignment — constructor included —
# through the tightening-only setter, so no call site can loosen a cap.
TaskRecord.stage_cap = property(TaskRecord._get_stage_cap, TaskRecord._set_stage_cap)


@dataclass(frozen=True)
class TaskView:
    """Immutable scheduling-visible snapshot of a task.

    Policies receive these — they can see confidence history but never the
    oracle correctness, mirroring the information available to the real
    system at run time.
    """

    task_id: int
    arrival_time: float
    deadline: float
    num_stages: int
    stages_done: int
    confidences: tuple

    @property
    def next_stage(self) -> Optional[int]:
        if self.stages_done >= self.num_stages:
            return None
        return self.stages_done

    @property
    def latest_confidence(self) -> Optional[float]:
        return self.confidences[-1] if self.confidences else None

    def remaining_time(self, now: float) -> float:
        return self.deadline - now
