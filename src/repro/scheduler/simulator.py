"""Discrete-event simulation of the Eugene worker pool (Sec. III-C).

The paper's proof-of-concept spawns a pool of worker processes; each runs one
stage of one task at a time, reports (prediction, confidence) to the
user-space scheduler through a named pipe, and a daemon process evicts tasks
whose latency constraint expires.  This module reproduces that architecture
as a deterministic discrete-event simulation so the Fig. 4 scalability
experiments are exactly repeatable: stage outcomes come from a precomputed
*oracle table* (the trained staged ResNet run over the test set), stage
durations come from a cost model, and the scheduling policy is pluggable.

Concurrency model: all tasks are backlogged at t=0 and at most
``concurrency`` are admitted ("in flight") at any instant — a task's latency
constraint starts at its admission.  When a task finishes or is evicted, the
next backlogged task is admitted immediately, keeping the system at the
target concurrency level, which is the x-axis of Fig. 4.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import telemetry
from ..admission import AdmissionConfig, TokenBucket, expected_utility, select_shed
from .gen2 import apply_stage_budgets
from .policies import PlanItem, SchedulingPolicy
from .task import StageOutcome, TaskRecord, TaskView


@dataclass(frozen=True)
class TaskOracle:
    """Precomputed per-stage outcomes for one task's input.

    ``confidences[s]``, ``predictions[s]`` and ``correct[s]`` describe what
    the staged model *would* report after executing stage ``s`` on this
    task's input.
    """

    confidences: Tuple[float, ...]
    predictions: Tuple[int, ...]
    correct: Tuple[bool, ...]

    def __post_init__(self) -> None:
        if not (len(self.confidences) == len(self.predictions) == len(self.correct)):
            raise ValueError("oracle arrays must have equal length")
        if len(self.confidences) == 0:
            raise ValueError("oracle needs at least one stage")

    @property
    def num_stages(self) -> int:
        return len(self.confidences)

    @staticmethod
    def table_from_outputs(outputs: dict) -> List["TaskOracle"]:
        """Build oracles from :func:`repro.nn.training.collect_stage_outputs`."""
        confs = outputs["confidences"]
        preds = outputs["predictions"]
        correct = outputs["correct"]
        n = confs.shape[1]
        return [
            TaskOracle(
                confidences=tuple(float(c) for c in confs[:, i]),
                predictions=tuple(int(p) for p in preds[:, i]),
                correct=tuple(bool(c) for c in correct[:, i]),
            )
            for i in range(n)
        ]


@dataclass
class SimulationConfig:
    """Parameters of one simulated serving episode."""

    num_workers: int = 4
    concurrency: int = 5
    #: execution time of each stage ("equal stage execution times" is the
    #: paper's optimality condition; pass unequal values to break it).
    stage_times: Sequence[float] = (1.0, 1.0, 1.0)
    #: per-task latency constraint, seconds from admission.
    latency_constraint: float = 4.0
    #: refuse to start a stage that cannot finish before the task's deadline
    #: (the daemon would kill it anyway and the work would be wasted).
    skip_doomed_stages: bool = True
    #: failure injection: probability a finished stage produced no usable
    #: result (worker crash / corrupted output).  The stage's time is spent,
    #: no outcome is recorded, and the task remains schedulable — the
    #: scheduler must absorb the retry.
    stage_failure_prob: float = 0.0
    failure_seed: int = 0
    #: admission control / overload management (:mod:`repro.admission`):
    #: bounds the arrived-but-unadmitted waiting queue, rate-limits ingress,
    #: and sheds/degrades excess work.  ``None`` (default) keeps the
    #: unbounded legacy behaviour bit-for-bit.
    admission: Optional[AdmissionConfig] = None
    #: anytime-inference contract (gen-2 imprecise computations): a task
    #: whose deadline fires with at least one completed stage is *served*
    #: its best-so-far early-exit result exactly at the deadline (degraded,
    #: never late) instead of being evicted; only tasks holding nothing
    #: still miss.  ``False`` (default) keeps the legacy eviction.
    anytime: bool = False

    def __post_init__(self) -> None:
        if self.num_workers < 1:
            raise ValueError("need at least one worker")
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if self.latency_constraint <= 0:
            raise ValueError("latency constraint must be positive")
        if any(t <= 0 for t in self.stage_times):
            raise ValueError("stage times must be positive")
        if not 0.0 <= self.stage_failure_prob < 1.0:
            raise ValueError("stage_failure_prob must be in [0, 1)")


@dataclass
class EpisodeResult:
    """Aggregate metrics of one simulated episode."""

    records: List[TaskRecord]
    makespan: float
    busy_time: float
    num_workers: int
    #: deepest the arrived-but-unadmitted waiting queue ever got, sampled
    #: at admission points (admission control bounds this; without it the
    #: queue grows with offered load).
    peak_queue_depth: int = 0

    @property
    def num_tasks(self) -> int:
        return len(self.records)

    @property
    def correct_flags(self) -> np.ndarray:
        return np.array([r.final_correct for r in self.records], dtype=bool)

    @property
    def accuracy(self) -> float:
        """Service classification accuracy — the Fig. 4 y-axis."""
        return float(self.correct_flags.mean())

    @property
    def stages_executed(self) -> np.ndarray:
        return np.array([r.stages_done for r in self.records], dtype=int)

    @property
    def num_evicted(self) -> int:
        return sum(1 for r in self.records if r.evicted)

    @property
    def num_fully_completed(self) -> int:
        return sum(1 for r in self.records if r.complete)

    @property
    def mean_final_confidence(self) -> float:
        confs = [r.latest_confidence for r in self.records if r.outcomes]
        return float(np.mean(confs)) if confs else 0.0

    def final_confidences(self, default: float = 0.0) -> np.ndarray:
        """Per-task confidence of the answer delivered (``default`` when a
        task produced no answer).  The spread of this vector is the paper's
        fairness measure: "a lower deviation means better fairness"."""
        return np.array(
            [
                r.latest_confidence if r.outcomes else default
                for r in self.records
            ]
        )

    @property
    def utilization(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return self.busy_time / (self.makespan * self.num_workers)

    @property
    def latencies(self) -> np.ndarray:
        return np.array(
            [
                (r.finish_time - r.arrival_time)
                for r in self.records
                if r.finish_time is not None
            ]
        )

    # -- overload-management metrics (the `repro overload` experiment) -----
    @property
    def num_shed(self) -> int:
        """Tasks dropped by admission control before any service."""
        return sum(1 for r in self.records if r.shed)

    @property
    def num_degraded(self) -> int:
        """Tasks served under a degrade-mode stage cap."""
        return sum(1 for r in self.records if r.stage_cap is not None and not r.shed)

    @property
    def num_anytime_served(self) -> int:
        """Tasks the anytime contract served best-so-far at their deadline."""
        return sum(1 for r in self.records if r.anytime_served)

    @property
    def num_late(self) -> int:
        """Served answers delivered *after* their deadline.

        The anytime contract promises this is zero: a deadline-constrained
        task either responds by its deadline or counts as a miss — never
        both late and served.
        """
        return sum(
            1
            for r in self.records
            if r.outcomes
            and not r.evicted
            and not r.shed
            and r.finish_time is not None
            and r.finish_time > r.deadline + 1e-9
        )

    @property
    def mean_served_stage(self) -> float:
        """Average 0-based stage index answers were served from."""
        stages = [
            r.outcomes[-1].stage
            for r in self.records
            if r.outcomes and not r.evicted and not r.shed
        ]
        return float(np.mean(stages)) if stages else float("nan")

    @property
    def num_served(self) -> int:
        """Tasks that delivered an answer inside their deadline."""
        return sum(
            1 for r in self.records if r.outcomes and not r.evicted and not r.shed
        )

    @property
    def goodput(self) -> float:
        """Answers delivered inside their deadline, per unit time."""
        if self.makespan <= 0:
            return 0.0
        return self.num_served / self.makespan

    @property
    def shed_fraction(self) -> float:
        if not self.records:
            return 0.0
        return self.num_shed / len(self.records)

    @property
    def accrued_utility(self) -> float:
        """Total utility = summed confidence of answers delivered in time
        (the paper's objective; shed and evicted tasks accrue nothing)."""
        return float(
            sum(
                r.latest_confidence or 0.0
                for r in self.records
                if r.outcomes and not r.evicted and not r.shed
            )
        )

    def served_latency_percentile(self, q: float) -> float:
        """Latency percentile over *served* tasks only (p99 of admitted work
        is what admission control promises to bound)."""
        lat = [
            r.finish_time - r.arrival_time
            for r in self.records
            if r.finish_time is not None and r.outcomes and not r.evicted and not r.shed
        ]
        if not lat:
            return float("nan")
        return float(np.percentile(lat, q))


# Event kinds, ordered so simultaneous events resolve deterministically:
# stage completions first (they free capacity), then deadlines, then arrivals.
_STAGE_DONE = 0
_DEADLINE = 1
_ARRIVAL = 2


class PoolSimulator:
    """Runs one serving episode under a given policy.

    The simulator repeatedly asks the policy for a timeline of (task, stage)
    items ("when the timeline has been executed, the algorithm restarts again
    with the most recent utility estimates") and feeds free workers from that
    timeline, skipping items that became stale (task evicted / stage already
    run / cannot meet its deadline).
    """

    def __init__(
        self,
        oracles: Sequence[TaskOracle],
        policy: SchedulingPolicy,
        config: Optional[SimulationConfig] = None,
        task_latency_constraints: Optional[Sequence[float]] = None,
        arrival_times: Optional[Sequence[float]] = None,
    ) -> None:
        if not oracles:
            raise ValueError("need at least one task")
        self.oracles = list(oracles)
        self.policy = policy
        self.config = config or SimulationConfig()
        if arrival_times is not None:
            if len(arrival_times) != len(self.oracles):
                raise ValueError("arrival_times must align with oracles")
            if any(a < 0 for a in arrival_times):
                raise ValueError("arrival times must be non-negative")
            self.arrival_times = [float(a) for a in arrival_times]
        else:
            self.arrival_times = None
        if task_latency_constraints is not None:
            if len(task_latency_constraints) != len(self.oracles):
                raise ValueError(
                    "task_latency_constraints must align with oracles"
                )
            if any(c <= 0 for c in task_latency_constraints):
                raise ValueError("latency constraints must be positive")
            self.task_latency_constraints = [float(c) for c in task_latency_constraints]
        else:
            self.task_latency_constraints = None
        num_stages = self.oracles[0].num_stages
        if any(o.num_stages != num_stages for o in self.oracles):
            raise ValueError("all oracles must have the same stage count")
        if len(self.config.stage_times) != num_stages:
            raise ValueError(
                f"config has {len(self.config.stage_times)} stage times but "
                f"oracles have {num_stages} stages"
            )
        self.num_stages = num_stages

    # ------------------------------------------------------------------
    def run(self) -> EpisodeResult:
        cfg = self.config
        failure_rng = np.random.default_rng(cfg.failure_seed)
        tel = telemetry.active()
        records: Dict[int, TaskRecord] = {}
        active: Dict[int, TaskRecord] = {}
        # Admission order pops from the front for every admitted task, so the
        # backlog is a deque — list.pop(0) here was O(n) per admission.
        timeline: Deque[PlanItem] = deque()
        busy_time = 0.0
        makespan = 0.0
        counter = itertools.count()
        events: List[Tuple[float, int, int, tuple]] = []

        def arrival_of(tid: int) -> float:
            return self.arrival_times[tid] if self.arrival_times is not None else 0.0

        order = list(range(len(self.oracles)))
        if self.arrival_times is not None:
            order.sort(key=lambda tid: (arrival_of(tid), tid))
        backlog: Deque[int] = deque(order)

        # ---- admission control (disabled unless the config bounds it) ----
        adm = (
            cfg.admission
            if cfg.admission is not None and cfg.admission.bounded
            else None
        )
        bucket = (
            TokenBucket(adm.rate_limit_per_s, adm.burst, clock=lambda: 0.0)
            if adm is not None and adm.rate_limit_per_s is not None
            else None
        )
        rate_checked: set = set()
        peak_queue_depth = 0
        predictor = getattr(self.policy, "predictor", None)
        mean_stage_time = float(np.mean(cfg.stage_times))

        def constraint_of(tid: int) -> float:
            return (
                self.task_latency_constraints[tid]
                if self.task_latency_constraints is not None
                else cfg.latency_constraint
            )

        def waiting_ids(now: float) -> List[int]:
            """Arrived-but-unadmitted task ids (the ingress queue)."""
            out: List[int] = []
            for tid in backlog:  # sorted by arrival, so stop at the future
                if arrival_of(tid) > now + 1e-12:
                    break
                out.append(tid)
            return out

        def waiting_view(tid: int, now: float) -> TaskView:
            arrived = arrival_of(tid) if self.arrival_times is not None else now
            return TaskView(
                task_id=tid,
                arrival_time=arrived,
                deadline=arrived + constraint_of(tid),
                num_stages=self.num_stages,
                stages_done=0,
                confidences=(),
            )

        def shed_task(
            tid: int, now: float, reason: str, view: Optional[TaskView] = None
        ) -> None:
            """Drop a waiting task before it receives any service."""
            backlog.remove(tid)
            arrived = arrival_of(tid) if self.arrival_times is not None else now
            record = TaskRecord(
                task_id=tid,
                arrival_time=arrived,
                deadline=arrived + constraint_of(tid),
                num_stages=self.num_stages,
            )
            record.shed = True
            records[tid] = record
            if tel is not None:
                tel.registry.counter("simulator.tasks_shed").inc()
                if reason == "rate-limit" and bucket is not None:
                    tel.trace.admission_reject(
                        now, "simulator", reason, bucket.retry_after(now=now)
                    )
                else:
                    eu = (
                        expected_utility(view, predictor, now, mean_stage_time)
                        if view is not None
                        else 0.0
                    )
                    tel.trace.load_shed(now, tid, expected_utility=eu)

        def manage_overload(now: float) -> None:
            """Rate-limit and queue-bound the ingress before admitting."""
            waiting = waiting_ids(now)
            if bucket is not None:
                for tid in list(waiting):
                    if tid in rate_checked:
                        continue
                    rate_checked.add(tid)
                    if not bucket.try_acquire(now=now):
                        shed_task(tid, now, reason="rate-limit")
                        waiting.remove(tid)
            depth = adm.max_queue_depth
            # Tasks about to be admitted into free concurrency slots don't
            # occupy the waiting queue — only the remainder is bounded.
            slots = max(0, cfg.concurrency - len(active))
            excess = len(waiting) - slots - (depth if depth is not None else len(waiting))
            if depth is not None and excess > 0:
                views = {tid: waiting_view(tid, now) for tid in waiting}
                to_shed = select_shed(
                    list(views.values()),
                    excess,
                    predictor=predictor,
                    now=now,
                    stage_time_s=mean_stage_time,
                    policy=adm.shed_policy,
                )
                for tid in to_shed:
                    shed_task(tid, now, reason="queue-full", view=views[tid])

        if tel is not None:
            tel.registry.counter("simulator.tasks_submitted").inc(len(self.oracles))
            tel.registry.counter("simulator.tasks_completed")
            tel.registry.counter("simulator.deadline_misses")
            tel.registry.counter("simulator.utility_accrued")

        def admit(now: float) -> None:
            nonlocal peak_queue_depth
            if adm is not None:
                manage_overload(now)
            while (
                backlog
                and len(active) < cfg.concurrency
                and arrival_of(backlog[0]) <= now + 1e-12
            ):
                tid = backlog.popleft()
                constraint = constraint_of(tid)
                # Closed-loop (no arrival times): a task "arrives" when
                # admitted, matching the paper's constant-concurrency test.
                # Open-loop: the clock starts at the true arrival instant,
                # so queueing delay counts against the latency constraint.
                arrived = arrival_of(tid) if self.arrival_times is not None else now
                record = TaskRecord(
                    task_id=tid,
                    arrival_time=arrived,
                    deadline=arrived + constraint,
                    num_stages=self.num_stages,
                )
                if (
                    adm is not None
                    and adm.degrade_queue_depth is not None
                    and len(waiting_ids(now)) > adm.degrade_queue_depth
                ):
                    # Degrade-before-drop: admitted into a congested system,
                    # so cap the task at an early exit to turn capacity over
                    # faster.
                    record.stage_cap = adm.degrade_stage_cap
                    if tel is not None:
                        tel.registry.counter("simulator.tasks_degraded").inc()
                        tel.trace.degrade_cap(now, tid, stage_cap=record.stage_cap)
                records[tid] = record
                if record.deadline <= now:
                    # The latency constraint expired while the task queued.
                    record.evicted = True
                    record.finish_time = record.deadline
                    if tel is not None:
                        tel.registry.counter("simulator.deadline_misses").inc()
                        tel.trace.deadline_miss(now, tid, deadline=record.deadline)
                    continue
                active[tid] = record
                if tel is not None:
                    tel.trace.admit(now, tid, deadline=record.deadline)
                heapq.heappush(
                    events, (record.deadline, _DEADLINE, next(counter), (tid,))
                )
            depth_now = len(waiting_ids(now))
            if depth_now > peak_queue_depth:
                peak_queue_depth = depth_now
            if tel is not None and adm is not None:
                tel.registry.gauge("simulator.queue_depth").set(depth_now)

        def retire(tid: int, now: float, evicted: bool) -> None:
            record = active.pop(tid, None)
            if record is None:
                return
            if evicted and cfg.anytime and record.outcomes:
                # Anytime contract: the deadline fired with stages in hand —
                # serve the best-so-far early exit exactly at the deadline
                # (never late) instead of evicting.
                record.finalize_anytime(now)
                if tel is not None:
                    tel.registry.counter("simulator.anytime_served").inc()
                    tel.trace.degraded(
                        record.finish_time, tid, record.outcomes[-1].stage
                    )
                    tel.registry.counter("simulator.tasks_completed").inc()
                    tel.trace.complete(
                        record.finish_time, tid, stages_done=record.stages_done
                    )
            else:
                record.evicted = evicted
                record.finish_time = now
                if tel is not None:
                    if evicted:
                        tel.registry.counter("simulator.deadline_misses").inc()
                        tel.trace.deadline_miss(now, tid, deadline=record.deadline)
                        tel.trace.evict(now, tid, stages_done=record.stages_done)
                    else:
                        tel.registry.counter("simulator.tasks_completed").inc()
                        tel.trace.complete(now, tid, stages_done=record.stages_done)
            if replan_on_events:
                # Gen-2: a completion changes the joint budget picture;
                # drop the stale timeline so the next dispatch re-plans.
                timeline.clear()
            admit(now)

        in_flight: set = set()  # task ids with a stage currently executing
        #: gen-2 policies re-plan their joint budgets on every arrival and
        #: completion; gen-1 policies keep the cheaper drain-then-replan.
        replan_on_events = bool(getattr(self.policy, "plans_stage_budgets", False))

        def next_item(now: float) -> Optional[PlanItem]:
            """Pop the next valid work item, replanning at most once.

            A task with a stage already on a worker is never double-scheduled
            (its stages are sequential), so it is filtered both from stale
            timeline items and from the views handed to the policy.
            """
            nonlocal timeline
            for attempt in range(2):
                while timeline:
                    tid, stage = timeline.popleft()
                    record = active.get(tid)
                    if record is None or record.done or tid in in_flight:
                        continue
                    if record.next_stage != stage:
                        continue
                    duration = cfg.stage_times[stage]
                    if cfg.skip_doomed_stages and now + duration > record.deadline:
                        continue
                    return tid, stage
                if attempt == 0:
                    views = [
                        r.view()
                        for r in active.values()
                        if not r.done and r.task_id not in in_flight
                    ]
                    timeline = deque(self.policy.plan(views, now))
                    # Gen-2 preemption: apply the freshly planned budgets as
                    # tightening-only stage caps (no-op for gen-1 policies).
                    # Caps pay through slot turnover, so they apply only
                    # while somebody is actually waiting for admission.
                    preempted = apply_stage_budgets(
                        self.policy,
                        active,
                        now,
                        tel,
                        scope="simulator",
                        contended=bool(waiting_ids(now)),
                    )
                    for ptid in preempted:
                        revoked = active.get(ptid)
                        # Revoked down to its already-executed frontier: the
                        # task is complete *now* — retire it immediately so
                        # its concurrency slot turns over instead of idling
                        # until the deadline daemon fires.
                        if (
                            revoked is not None
                            and revoked.complete
                            and ptid not in in_flight
                        ):
                            retire(ptid, now, evicted=False)
                    if not timeline:
                        return None
            return None

        running: Dict[int, Tuple[int, int]] = {}  # worker -> (tid, stage)
        free_workers = list(range(cfg.num_workers))

        def dispatch(now: float) -> None:
            nonlocal busy_time
            while free_workers:
                item = next_item(now)
                if item is None:
                    return
                worker = free_workers.pop()
                tid, stage = item
                duration = cfg.stage_times[stage]
                running[worker] = (tid, stage)
                in_flight.add(tid)
                busy_time += duration
                heapq.heappush(
                    events,
                    (now + duration, _STAGE_DONE, next(counter), (worker, tid, stage)),
                )

        if self.arrival_times is not None:
            for tid in backlog:
                heapq.heappush(
                    events, (arrival_of(tid), _ARRIVAL, next(counter), (tid,))
                )
        admit(0.0)
        dispatch(0.0)

        while events:
            now, kind, _, payload = heapq.heappop(events)
            if kind == _STAGE_DONE:
                makespan = max(makespan, now)
                worker, tid, stage = payload
                running.pop(worker, None)
                free_workers.append(worker)
                in_flight.discard(tid)
                failed = (
                    cfg.stage_failure_prob > 0.0
                    and failure_rng.random() < cfg.stage_failure_prob
                )
                record = records[tid]
                if failed:
                    pass  # time was spent, no result; task stays schedulable
                elif not record.done and now <= record.deadline + 1e-12:
                    oracle = self.oracles[tid]
                    previous_conf = record.latest_confidence or 0.0
                    record.outcomes.append(
                        StageOutcome(
                            stage=stage,
                            prediction=oracle.predictions[stage],
                            confidence=oracle.confidences[stage],
                            correct=oracle.correct[stage],
                        )
                    )
                    if tel is not None:
                        # Utility = confidence gain of the executed stage
                        # (the paper's service-utility objective).
                        gain = oracle.confidences[stage] - previous_conf
                        if gain > 0:
                            tel.registry.counter("simulator.utility_accrued").inc(gain)
                    if record.complete:
                        retire(tid, now, evicted=False)
                dispatch(now)
            elif kind == _DEADLINE:
                (tid,) = payload
                record = records[tid]
                if tid in active and not record.done:
                    # Daemon eviction: task leaves with whatever stages ran.
                    makespan = max(makespan, now)
                    retire(tid, now, evicted=True)
                elif tid in active and record.done:
                    # Safety net: completed (e.g. revoked to its executed
                    # frontier) but never retired — close it on time.
                    makespan = max(makespan, now)
                    retire(tid, now, evicted=False)
                dispatch(now)
            elif kind == _ARRIVAL:
                if replan_on_events:
                    # Gen-2: a new arrival may out-bid in-progress optional
                    # stages — force a fresh joint budget plan.
                    timeline.clear()
                admit(now)
                dispatch(now)

        # Tasks still active when events drain (shouldn't happen: deadlines
        # guarantee progress) are counted as evicted at their deadline.
        for tid, record in list(active.items()):
            retire(tid, record.deadline, evicted=True)
        # Backlog leftovers (possible only in open-loop corner cases) are
        # evicted at their own deadlines with no stages executed.
        for tid in backlog:
            constraint = (
                self.task_latency_constraints[tid]
                if self.task_latency_constraints is not None
                else cfg.latency_constraint
            )
            arrived = arrival_of(tid)
            record = TaskRecord(
                task_id=tid,
                arrival_time=arrived,
                deadline=arrived + constraint,
                num_stages=self.num_stages,
            )
            record.evicted = True
            record.finish_time = record.deadline
            records[tid] = record
            if tel is not None:
                tel.registry.counter("simulator.deadline_misses").inc()
                tel.trace.deadline_miss(record.deadline, tid, deadline=record.deadline)

        ordered = [records[tid] for tid in sorted(records)]
        return EpisodeResult(
            records=ordered,
            makespan=makespan,
            busy_time=busy_time,
            num_workers=cfg.num_workers,
            peak_queue_depth=peak_queue_depth,
        )


def run_episodes(
    oracles: Sequence[TaskOracle],
    policy_factory,
    config: SimulationConfig,
    episodes: int = 5,
    tasks_per_episode: int = 60,
    seed: int = 0,
) -> List[EpisodeResult]:
    """Run several episodes over random task subsets; returns their results.

    ``policy_factory`` must build a *fresh* policy per episode (policies may
    carry cursor state).  Episode task subsets are drawn with a seeded RNG so
    sweeps across policies see identical workloads.
    """
    rng = np.random.default_rng(seed)
    results = []
    for _ in range(episodes):
        idx = rng.choice(len(oracles), size=min(tasks_per_episode, len(oracles)), replace=False)
        subset = [oracles[i] for i in idx]
        sim = PoolSimulator(subset, policy_factory(), config)
        results.append(sim.run())
    return results
