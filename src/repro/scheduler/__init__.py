"""RTDeepIoT — the utility-maximizing scheduler of Section III.

This package is the paper's core contribution: a user-space scheduler that
decides, per inference task, how many stages of a staged deep network to
execute so total service utility (predicted confidence gain) is maximized.

Components
----------
- :mod:`repro.scheduler.task` — tasks, stage outcomes, scheduling views
- :mod:`repro.scheduler.confidence` — dynamic confidence-curve predictors
  (GP-based, Sec. III-B) and the constant-slope DC variant
- :mod:`repro.scheduler.policies` — RTDeepIoT-k greedy, RR and FIFO baselines
- :mod:`repro.scheduler.simulator` — deterministic discrete-event worker-pool
  simulator used by the Fig. 4 experiments
- :mod:`repro.scheduler.runtime` — thread-based real-time executor with the
  latency-constraint daemon, mirroring the paper's process-pool architecture
- :mod:`repro.scheduler.gen2` — the gen-2 imprecise-computation scheduler:
  joint per-task stage budgets by marginal utility per cost, preemption of
  optional stages via tightening-only caps, and the anytime contract
  (best-so-far at the deadline, never late) — see docs/SCHEDULER.md
"""

from .arrivals import bursty_arrivals, constant_arrivals, poisson_arrivals
from .analysis import (
    greedy_allocation,
    greedy_optimality_gap,
    greedy_utility,
    marginal_gains,
    optimal_offline_utility,
    submodularity_violations,
)
from .confidence import (
    ConfidencePredictor,
    ConstantSlopePredictor,
    GPConfidencePredictor,
)
from .gen2 import (
    BudgetPlan,
    Gen2Policy,
    StageBid,
    StageBudgetPlanner,
    apply_stage_budgets,
)
from .policies import (
    EDFPolicy,
    FIFOPolicy,
    RoundRobinPolicy,
    RTDeepIoTPolicy,
    SchedulingPolicy,
)
from .simulator import EpisodeResult, PoolSimulator, SimulationConfig, TaskOracle
from .task import StageOutcome, TaskRecord, TaskView
from .runtime import RuntimeConfig, StagedInferenceRuntime, RuntimeTaskResult
from .service_classes import (
    BATCH,
    INTERACTIVE,
    ClassAwareRTDeepIoTPolicy,
    ClassBill,
    PricingModel,
    ServiceClass,
    assign_classes,
)

__all__ = [
    "ConfidencePredictor",
    "GPConfidencePredictor",
    "ConstantSlopePredictor",
    "SchedulingPolicy",
    "RTDeepIoTPolicy",
    "RoundRobinPolicy",
    "FIFOPolicy",
    "EDFPolicy",
    "Gen2Policy",
    "StageBudgetPlanner",
    "StageBid",
    "BudgetPlan",
    "apply_stage_budgets",
    "PoolSimulator",
    "SimulationConfig",
    "EpisodeResult",
    "TaskOracle",
    "StageOutcome",
    "TaskRecord",
    "TaskView",
    "StagedInferenceRuntime",
    "RuntimeConfig",
    "RuntimeTaskResult",
    "ServiceClass",
    "ClassAwareRTDeepIoTPolicy",
    "PricingModel",
    "ClassBill",
    "assign_classes",
    "INTERACTIVE",
    "BATCH",
    "marginal_gains",
    "submodularity_violations",
    "greedy_allocation",
    "greedy_utility",
    "optimal_offline_utility",
    "greedy_optimality_gap",
    "constant_arrivals",
    "poisson_arrivals",
    "bursty_arrivals",
]
