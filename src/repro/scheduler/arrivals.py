"""Arrival processes for open-loop serving experiments.

The paper's proof-of-concept feeds images "in a randomly shuffled order" at
a fixed concurrency; a serving system also needs open-loop arrivals.  These
generators produce arrival timestamps consumable by
:class:`~repro.scheduler.simulator.PoolSimulator` (``arrival_times=``):

- :func:`poisson_arrivals` — memoryless traffic at a given rate;
- :func:`bursty_arrivals` — a two-state modulated process (quiet/burst),
  the classic stress test for deadline scheduling;
- :func:`constant_arrivals` — deterministic pacing.
"""

from __future__ import annotations

from typing import List

import numpy as np


def constant_arrivals(n: int, interval: float, start: float = 0.0) -> List[float]:
    """Evenly paced arrivals: one task every ``interval`` seconds."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if interval <= 0:
        raise ValueError("interval must be positive")
    return [start + i * interval for i in range(n)]


def poisson_arrivals(
    n: int, rate: float, seed: int = 0, start: float = 0.0
) -> List[float]:
    """``n`` arrivals from a Poisson process with ``rate`` tasks/second."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if rate <= 0:
        raise ValueError("rate must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate, size=n)
    return list(start + np.cumsum(gaps))


def bursty_arrivals(
    n: int,
    quiet_rate: float,
    burst_rate: float,
    mean_quiet_s: float = 10.0,
    mean_burst_s: float = 3.0,
    seed: int = 0,
    start: float = 0.0,
) -> List[float]:
    """Markov-modulated Poisson arrivals alternating quiet and burst phases."""
    if n < 0:
        raise ValueError("n must be non-negative")
    if min(quiet_rate, burst_rate) <= 0:
        raise ValueError("rates must be positive")
    if min(mean_quiet_s, mean_burst_s) <= 0:
        raise ValueError("phase durations must be positive")
    rng = np.random.default_rng(seed)
    arrivals: List[float] = []
    t = start
    in_burst = False
    phase_end = t + rng.exponential(mean_quiet_s)
    while len(arrivals) < n:
        rate = burst_rate if in_burst else quiet_rate
        t += rng.exponential(1.0 / rate)
        while t >= phase_end:
            in_burst = not in_burst
            phase_end += rng.exponential(
                mean_burst_s if in_burst else mean_quiet_s
            )
        arrivals.append(t)
    return arrivals
