"""Eugene: Deep Intelligence as a Service — full reproduction (ICDCS 2019).

Subpackages (see DESIGN.md for the system inventory):

- :mod:`repro.nn` — numpy deep-learning substrate (autograd, layers, staged ResNet)
- :mod:`repro.datasets` — synthetic image / sensor-time-series data
- :mod:`repro.calibration` — ECE, reliability diagrams, entropy calibration
- :mod:`repro.gp` — Gaussian-process regression + piecewise-linear approximation
- :mod:`repro.scheduler` — RTDeepIoT utility-maximizing scheduler + baselines
- :mod:`repro.profiling` — device cost model (Table I) + FastDeepIoT profiler
- :mod:`repro.compression` — edge/node pruning, model reduction + caching
- :mod:`repro.labeling` — SenseGAN-style semi-supervised labeling
- :mod:`repro.collaborative` — multi-camera collaborative inferencing (Table IV)
- :mod:`repro.service` — the Eugene service facade (train/label/reduce/profile/infer)
- :mod:`repro.telemetry` — metrics + tracing for the serving stack (off by default)
"""

__version__ = "1.0.0"

from . import (
    calibration,
    collaborative,
    compression,
    datasets,
    gp,
    labeling,
    nn,
    profiling,
    scheduler,
    service,
    telemetry,
)

__all__ = [
    "nn",
    "datasets",
    "calibration",
    "gp",
    "scheduler",
    "profiling",
    "compression",
    "labeling",
    "collaborative",
    "service",
    "telemetry",
    "__version__",
]
