"""Exact Gaussian-process regression with Cholesky factorization.

Used to learn the confidence-curve models pˆ(l') = GP_{l→l'}(p(l)) of
Section III-B.  Inputs are 1-D confidences in [0, 1] (though the
implementation accepts arbitrary-dimensional features), targets are the
confidence observed at a later stage.  Hyper-parameters can be selected by
marginal-likelihood grid search, which is robust for the 1-D, bounded inputs
this system uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy.linalg import cho_factor, cho_solve

from .kernels import Kernel, RBFKernel


def _as_2d(x: np.ndarray) -> np.ndarray:
    x = np.asarray(x, dtype=np.float64)
    if x.ndim == 1:
        x = x[:, None]
    if x.ndim != 2:
        raise ValueError("inputs must be (n,) or (n, d)")
    return x


class GPRegression:
    """Exact GP regression ``y = f(x) + eps,  f ~ GP(0, k),  eps ~ N(0, s^2)``.

    Predictions are Gaussian (mean, variance) — exactly the property the
    paper cites for choosing GPs: "Gaussian processes produce a Gaussian
    distribution as the output, from which we can easily compute the mean
    value and desired confidence intervals."
    """

    def __init__(self, kernel: Optional[Kernel] = None, noise: float = 1e-2) -> None:
        if noise <= 0:
            raise ValueError("observation noise must be positive")
        self.kernel = kernel or RBFKernel()
        self.noise = noise
        self._x_train: Optional[np.ndarray] = None
        self._y_mean = 0.0
        self._alpha: Optional[np.ndarray] = None
        self._cho = None

    @property
    def fitted(self) -> bool:
        return self._alpha is not None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GPRegression":
        x = _as_2d(x)
        y = np.asarray(y, dtype=np.float64).reshape(-1)
        if len(x) != len(y):
            raise ValueError("x and y must have the same length")
        if len(x) == 0:
            raise ValueError("cannot fit a GP on zero samples")
        self._x_train = x
        self._y_mean = float(y.mean())
        k = self.kernel(x, x) + self.noise * np.eye(len(x))
        self._cho = cho_factor(k, lower=True)
        self._alpha = cho_solve(self._cho, y - self._y_mean)
        return self

    def predict(
        self, x: np.ndarray, return_std: bool = False
    ) -> Tuple[np.ndarray, Optional[np.ndarray]]:
        """Posterior mean (and optionally standard deviation) at ``x``."""
        if not self.fitted:
            raise RuntimeError("call fit() before predict()")
        x = _as_2d(x)
        k_star = self.kernel(x, self._x_train)
        mean = k_star @ self._alpha + self._y_mean
        if not return_std:
            return mean, None
        v = cho_solve(self._cho, k_star.T)
        prior = np.diag(self.kernel(x, x))
        var = np.maximum(prior - np.einsum("ij,ji->i", k_star, v), 1e-12)
        return mean, np.sqrt(var)

    def confidence_interval(
        self, x: np.ndarray, z: float = 1.96
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(lower, upper) of the ``z``-sigma predictive interval."""
        mean, std = self.predict(x, return_std=True)
        assert std is not None
        return mean - z * std, mean + z * std

    def log_marginal_likelihood(self) -> float:
        """Log p(y | X) of the fitted model — used for hyper-parameter search."""
        if not self.fitted:
            raise RuntimeError("call fit() before log_marginal_likelihood()")
        lower = self._cho[0]
        n = len(self._x_train)
        y_centered_alpha = self._alpha
        # log|K| via the Cholesky diagonal.
        log_det = 2.0 * np.log(np.diag(lower)).sum()
        # y^T K^-1 y = (y - mean)^T alpha; reconstruct y - mean from alpha:
        k = self.kernel(self._x_train, self._x_train) + self.noise * np.eye(n)
        quad = float(y_centered_alpha @ (k @ y_centered_alpha))
        return -0.5 * (quad + log_det + n * np.log(2 * np.pi))

    @staticmethod
    def fit_with_grid_search(
        x: np.ndarray,
        y: np.ndarray,
        length_scales: Sequence[float] = (0.05, 0.1, 0.2, 0.4, 0.8),
        noises: Sequence[float] = (1e-3, 1e-2, 5e-2),
        kernel_cls=RBFKernel,
    ) -> "GPRegression":
        """Select (length_scale, noise) maximizing marginal likelihood."""
        best: Optional[Tuple[float, GPRegression]] = None
        for ls in length_scales:
            for noise in noises:
                model = GPRegression(kernel_cls(length_scale=ls), noise=noise)
                model.fit(x, y)
                lml = model.log_marginal_likelihood()
                if best is None or lml > best[0]:
                    best = (lml, model)
        assert best is not None
        return best[1]
