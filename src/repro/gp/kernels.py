"""Covariance kernels for Gaussian-process regression."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def _pairwise_sq_dists(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between row sets ``a`` (n,d) and ``b`` (m,d)."""
    a = np.atleast_2d(a)
    b = np.atleast_2d(b)
    diff = a[:, None, :] - b[None, :, :]
    return (diff**2).sum(axis=-1)


class Kernel:
    """Base covariance function."""

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError


@dataclass
class RBFKernel(Kernel):
    """Squared-exponential kernel: ``s^2 exp(-d^2 / (2 l^2))``."""

    length_scale: float = 0.2
    signal_variance: float = 1.0

    def __post_init__(self) -> None:
        if self.length_scale <= 0 or self.signal_variance <= 0:
            raise ValueError("kernel hyper-parameters must be positive")

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        sq = _pairwise_sq_dists(a, b)
        return self.signal_variance * np.exp(-0.5 * sq / self.length_scale**2)


@dataclass
class Matern52Kernel(Kernel):
    """Matern-5/2 kernel — rougher sample paths than RBF."""

    length_scale: float = 0.2
    signal_variance: float = 1.0

    def __post_init__(self) -> None:
        if self.length_scale <= 0 or self.signal_variance <= 0:
            raise ValueError("kernel hyper-parameters must be positive")

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        d = np.sqrt(np.maximum(_pairwise_sq_dists(a, b), 0.0))
        z = np.sqrt(5.0) * d / self.length_scale
        return self.signal_variance * (1.0 + z + z**2 / 3.0) * np.exp(-z)
