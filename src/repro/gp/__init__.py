"""Gaussian-process regression and its piecewise-linear runtime approximation.

Section III-B of the paper predicts confidence in results of *future* stages
from confidence observed at already-executed stages using Gaussian-process
regression models (GP1→2, GP1→3, GP2→3), then — because "Gaussian process is
notorious for its long inference time" — approximates each fitted GP by a
piecewise-linear function profiled on a grid over the bounded input domain
[0, 1].
"""

from .kernels import RBFKernel, Matern52Kernel, Kernel
from .regression import GPRegression
from .piecewise import PiecewiseLinear, approximate_gp

__all__ = [
    "Kernel",
    "RBFKernel",
    "Matern52Kernel",
    "GPRegression",
    "PiecewiseLinear",
    "approximate_gp",
]
