"""Piecewise-linear approximation of a fitted GP (Sec. III-B, runtime path).

The paper's two-step recipe, verbatim:

1. profile the Gaussian-process regression model with a set of input
   confidences ``{0, 1/M, ..., 1}``;
2. connect these profiling points with a piecewise-linear function.

The resulting :class:`PiecewiseLinear` evaluates in O(log M) per query with
tiny constants, which is what the scheduler calls on its hot path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from .regression import GPRegression


@dataclass(frozen=True)
class PiecewiseLinear:
    """Linear interpolation over fixed knots; clamps outside the domain."""

    knots_x: np.ndarray
    knots_y: np.ndarray

    def __post_init__(self) -> None:
        x = np.asarray(self.knots_x, dtype=np.float64)
        y = np.asarray(self.knots_y, dtype=np.float64)
        if x.ndim != 1 or x.shape != y.shape or len(x) < 2:
            raise ValueError("need matching 1-D knot arrays with >= 2 knots")
        # A NaN/inf knot makes np.interp return garbage silently on every
        # later scheduler query — reject it here, at construction.
        if not np.isfinite(x).all():
            raise ValueError("knots_x must be finite (no NaN/inf values)")
        if not np.isfinite(y).all():
            raise ValueError("knots_y must be finite (no NaN/inf values)")
        if not (np.diff(x) > 0).all():
            raise ValueError("knots_x must be strictly increasing")
        object.__setattr__(self, "knots_x", x)
        object.__setattr__(self, "knots_y", y)

    def __call__(self, x) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return np.interp(x, self.knots_x, self.knots_y)

    @property
    def num_segments(self) -> int:
        return len(self.knots_x) - 1


def approximate_gp(
    gp: GPRegression,
    num_points: int = 10,
    domain: Tuple[float, float] = (0.0, 1.0),
) -> PiecewiseLinear:
    """Profile ``gp`` at ``num_points + 1`` equispaced inputs and connect them.

    ``num_points`` is the M of the paper's grid {0, 1/M, ..., 1}.
    """
    if num_points < 1:
        raise ValueError("num_points must be >= 1")
    lo, hi = domain
    if not (np.isfinite(lo) and np.isfinite(hi)):
        raise ValueError("domain bounds must be finite")
    if hi <= lo:
        raise ValueError("empty domain")
    xs = np.linspace(lo, hi, num_points + 1)
    ys, _ = gp.predict(xs)
    if not np.all(np.isfinite(ys)):
        raise ValueError(
            "GP profiling produced non-finite values; the fitted GP is "
            "degenerate (bad hyperparameters or non-finite training data) "
            "and cannot be approximated"
        )
    return PiecewiseLinear(xs, ys)
