"""Command-line driver: regenerate any of the paper's tables/figures.

Usage::

    python -m repro.cli list
    python -m repro.cli table1
    python -m repro.cli table2 table3 fig2
    python -m repro.cli all

The first run of the model-backed experiments trains the benchmark model
(~4 minutes) and caches it under ``.bench_cache/``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict


def _table1() -> str:
    from .experiments.table1 import format_table1, run_table1

    return format_table1(run_table1())


def _fig2() -> str:
    from .experiments.fig2 import format_fig2, run_fig2

    return format_fig2(run_fig2())


def _table2() -> str:
    from .experiments.table2 import format_table2, run_table2

    return format_table2(run_table2())


def _table3() -> str:
    from .experiments.table3 import format_table3, run_table3

    return format_table3(run_table3())


def _fig4() -> str:
    from .experiments.fig4 import format_fig4, run_fig4

    return format_fig4(run_fig4())


def _table4() -> str:
    from .experiments.table4 import format_table4, run_table4

    return format_table4(run_table4())


def _resilience() -> str:
    from .experiments.ablations import run_resilience

    result = run_resilience()
    return "\n".join(f"{k:24} {v:.3f}" for k, v in result.items())


def _service_classes() -> str:
    from .experiments.extensions import run_service_classes

    result = run_service_classes()
    lines = []
    for name, row in result.items():
        lines.append(
            f"{name:12} accuracy={row['accuracy']:.3f} "
            f"interactive-served={row['interactive_service_rate']:.3f} "
            f"revenue={row['revenue']:.0f}"
        )
    return "\n".join(lines)


def _partitioning() -> str:
    from .experiments.extensions import run_partitioning

    rows = run_partitioning()
    lines = [f"{'kbps':>8} {'cut':>4} {'E[latency] ms':>14} {'P(offload)':>11}"]
    for r in rows:
        lines.append(
            f"{r['bandwidth_kbps']:>8.0f} {r['cut']:>4} "
            f"{r['expected_latency_ms']:>14.1f} {r['offload_probability']:>11.2f}"
        )
    return "\n".join(lines)


EXPERIMENTS: Dict[str, Callable[[], str]] = {
    "table1": _table1,
    "fig2": _fig2,
    "table2": _table2,
    "table3": _table3,
    "fig4": _fig4,
    "table4": _table4,
    "resilience": _resilience,
    "service-classes": _service_classes,
    "partitioning": _partitioning,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the Eugene paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment names (see 'list'), or 'all', or 'list'",
    )
    args = parser.parse_args(argv)

    if args.experiments == ["list"]:
        for name in EXPERIMENTS:
            print(name)
        return 0

    names = list(EXPERIMENTS) if "all" in args.experiments else args.experiments
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        parser.error(
            f"unknown experiment(s) {unknown}; choose from {list(EXPERIMENTS)}"
        )
    for name in names:
        print(f"\n{'=' * 70}\n{name}\n{'=' * 70}")
        print(EXPERIMENTS[name]())
    return 0


if __name__ == "__main__":
    sys.exit(main())
